"""Partitioned caching across servers (Sec. 4.2).

In distributed training every server processes a *different random shard each
epoch*, so its locally cached items are frequently not the ones it needs, and
cache misses fall through to (slow) local storage even though some other
server holds the item in DRAM.  CoorDL instead:

1. shards the dataset across servers in epoch 0 and populates each server's
   local MinIO cache only with its shard, and
2. maintains metadata mapping item id -> owning server so that a local miss is
   served from the *remote* server's cache over TCP (40 Gbps >> SATA SSD),
   falling back to local storage only when no server caches the item.

When the aggregate DRAM of the participating servers covers the dataset, no
server touches storage after the first epoch.

:class:`PartitionedCacheGroup` implements the shared metadata directory and
per-server MinIO caches; lookups return where the item was found so the epoch
simulator can charge the right device (DRAM / network / disk).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.minio import MinIOCache
from repro.datasets.dataset import SyntheticDataset
from repro.exceptions import ConfigurationError


class LookupSource(enum.Enum):
    """Where a partitioned-cache lookup was satisfied."""

    LOCAL_CACHE = "local_cache"
    REMOTE_CACHE = "remote_cache"
    STORAGE = "storage"


@dataclass
class PartitionedLookup:
    """Result of one lookup against the partitioned cache group."""

    source: LookupSource
    owner: Optional[int]
    size_bytes: float


class PartitionedCacheGroup:
    """MinIO caches of all servers in a distributed job, plus the directory.

    Args:
        dataset: Dataset being trained on.
        capacities_bytes: Per-server cache byte budgets (one entry per server).
        seed: Seed for the initial shard assignment.
    """

    def __init__(self, dataset: SyntheticDataset, capacities_bytes: Sequence[float],
                 seed: int = 0) -> None:
        if not capacities_bytes:
            raise ConfigurationError("need at least one server")
        self._dataset = dataset
        self._caches: List[MinIOCache] = [MinIOCache(c) for c in capacities_bytes]
        # Dense metadata directory: item id -> owning server, -1 when no
        # server caches the item.  An array (rather than a dict) keeps the
        # vectorised epoch path free of per-item Python work.
        self._owners = np.full(len(dataset), -1, dtype=np.int64)
        self._seed = seed
        self._shards = self._assign_shards()

    def _assign_shards(self) -> List[np.ndarray]:
        """Split the dataset evenly across servers (load-balanced, Sec. 5.5)."""
        rng = np.random.default_rng(self._seed)
        perm = rng.permutation(len(self._dataset))
        bounds = np.linspace(0, len(self._dataset), self.num_servers + 1).astype(int)
        return [perm[bounds[i]:bounds[i + 1]] for i in range(self.num_servers)]

    @property
    def num_servers(self) -> int:
        """Number of servers participating in the job."""
        return len(self._caches)

    @property
    def caches(self) -> List[MinIOCache]:
        """Per-server MinIO caches (indexable by server id)."""
        return self._caches

    def shard(self, server: int) -> np.ndarray:
        """Item ids assigned to a server for cache population."""
        return self._shards[server]

    def aggregate_capacity_bytes(self) -> float:
        """Total DRAM cache budget across all servers."""
        return sum(c.capacity_bytes for c in self._caches)

    def covers_dataset(self) -> bool:
        """True when the aggregate cache budget can hold the whole dataset."""
        return self.aggregate_capacity_bytes() >= self._dataset.total_bytes

    def populate_from_shards(self) -> None:
        """Epoch-0 population: each server caches (a prefix of) its own shard.

        Called by the distributed simulator after the first epoch;  in the
        live system this happens as a side effect of the first epoch's reads.
        """
        for server, shard in enumerate(self._shards):
            for item in shard:
                item = int(item)
                size = self._dataset.item_size(item)
                if self._caches[server].admit(item, size):
                    self._owners[item] = server
                else:
                    break  # MinIO is full; remaining shard items stay on disk

    def owner_of(self, item_id: int) -> Optional[int]:
        """Server whose cache holds the item, or None if uncached everywhere."""
        owner = int(self._owners[item_id])
        return None if owner < 0 else owner

    def lookup(self, server: int, item_id: int) -> PartitionedLookup:
        """Look up an item on behalf of ``server``.

        Order of preference mirrors CoorDL: local MinIO cache, then a remote
        server's cache (over TCP), then local storage.
        """
        if not 0 <= server < self.num_servers:
            raise ConfigurationError(f"server {server} out of range")
        size = self._dataset.item_size(item_id)
        if self._caches[server].lookup(item_id):
            return PartitionedLookup(LookupSource.LOCAL_CACHE, server, size)
        owner = self.owner_of(item_id)
        if owner is not None and owner != server:
            return PartitionedLookup(LookupSource.REMOTE_CACHE, owner, size)
        return PartitionedLookup(LookupSource.STORAGE, None, size)

    def admit_local(self, server: int, item_id: int) -> bool:
        """Let a server try to cache an item it just fetched from storage."""
        size = self._dataset.item_size(item_id)
        admitted = self._caches[server].admit(item_id, size)
        if admitted and self._owners[item_id] < 0:
            self._owners[item_id] = server
        return admitted

    def bulk_epoch_lookup(self, server: int, item_ids: np.ndarray,
                          sizes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """One server's whole epoch of distinct lookups, vectorised.

        Classifies every access of a single-pass epoch (pairwise-distinct
        ``item_ids``) into local-hit / remote-hit / storage-miss using the
        same preference order as :meth:`lookup`, then applies *exactly* the
        side effects the per-item ``lookup`` + ``admit_local`` sequence would
        have produced: the local MinIO cache's hit/miss counters, the greedy
        insert-while-space admissions over the storage misses in access
        order, and the directory updates for the admitted items.

        The classification is analytic because within a single-pass epoch no
        item is re-requested: MinIO never evicts, so local residency at epoch
        start decides every local hit, and a mid-epoch admission (which does
        mutate the directory) concerns an item that is not looked up again.

        Returns:
            ``(local, remote)`` boolean masks over the accesses; the storage
            misses are the remainder ``~(local | remote)``.
        """
        if not 0 <= server < self.num_servers:
            raise ConfigurationError(f"server {server} out of range")
        item_ids = np.asarray(item_ids, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.float64)
        cache = self._caches[server]
        local = cache.contains_array(item_ids)
        owners = self._owners[item_ids]
        remote = ~local & (owners >= 0) & (owners != server)
        storage = ~(local | remote)
        # Local-cache counters + greedy admission over the storage misses
        # (remote hits count as local misses but are never offered locally).
        cache.bulk_epoch_hits(item_ids, sizes, admit=storage)
        if storage.any():
            # Whatever became resident among the storage misses was admitted;
            # those items had no owner (else they would have been remote).
            admitted = storage & cache.contains_array(item_ids)
            self._owners[item_ids[admitted]] = server
        return local, remote

    def add_server(self, capacity_bytes: float) -> int:
        """Elastic scale-up: a new server joins the partition mid-training.

        The newcomer arrives with a cold cache and warms organically through
        the normal miss/admit path (:meth:`bulk_epoch_lookup` /
        :meth:`admit_local`); the epoch-0 shard assignment is *not* redrawn
        — shards only seed the initial population.  Returns the new server's
        index.
        """
        if capacity_bytes <= 0:
            raise ConfigurationError("new server needs a positive cache budget")
        self._caches.append(MinIOCache(capacity_bytes))
        self._shards.append(np.empty(0, dtype=np.int64))
        return len(self._caches) - 1

    def deactivate_server(self, server: int) -> float:
        """Elastic scale-down: a server leaves and its cached bytes are lost.

        Clears the departing server's cache and removes it from the
        directory (its items become owner-less, so survivors fall back to
        storage and re-warm them).  The server index stays valid — lookups
        on behalf of a departed server still work — but elasticity-aware
        callers stop routing epochs to it.  Returns the bytes dropped.
        """
        if not 0 <= server < self.num_servers:
            raise ConfigurationError(f"server {server} out of range")
        lost = self._caches[server].used_bytes
        self._caches[server].clear()
        self._owners[self._owners == server] = -1
        return lost

    def cached_fraction(self) -> float:
        """Fraction of dataset bytes currently cached somewhere in the group."""
        cached = sum(c.used_bytes for c in self._caches)
        return cached / self._dataset.total_bytes
