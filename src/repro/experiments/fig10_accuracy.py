"""Figure 10 — time-to-accuracy: ResNet50 / ImageNet-1K on 2 HDD servers.

Training ResNet50 to 75.9 % top-1 on sixteen 1080Tis across two HDD servers,
each able to cache ~50 % of ImageNet-1K, the paper measures ~2 days with DALI
and ~12 hours with CoorDL (4x) — entirely because partitioned caching removes
the per-epoch storage reads; the accuracy-vs-epoch curve itself is unchanged.
This experiment combines the simulated epoch times of both configurations
with the shared accuracy curve.
"""

from __future__ import annotations

from repro.cluster.configs import config_hdd_1080ti
from repro.compute.model_zoo import RESNET50
from repro.experiments.base import ExperimentResult, SWEEP_SCALE, scaled_dataset
from repro.sim.accuracy import resnet50_imagenet_curve, time_to_accuracy
from repro.sim.distributed import DistributedTraining
from repro.units import speedup, to_hours


def run(scale: float = SWEEP_SCALE, num_servers: int = 2,
        cache_fraction_per_server: float = 0.5, target_accuracy: float = 0.759,
        seed: int = 0) -> ExperimentResult:
    """Reproduce the time-to-accuracy comparison of Fig. 10."""
    dataset = scaled_dataset("imagenet-1k", scale, seed)
    servers = [
        config_hdd_1080ti(cache_bytes=dataset.total_bytes * cache_fraction_per_server)
        for _ in range(num_servers)
    ]
    training = DistributedTraining(RESNET50, dataset, servers, num_epochs=2)
    baseline = training.run_baseline(seed=seed)
    coordl = training.run_coordl(seed=seed)
    curve = resnet50_imagenet_curve()

    # Epoch times at full dataset size scale linearly with the dataset.
    dali_epoch_s = baseline.steady_epoch_time_s / scale
    coordl_epoch_s = coordl.steady_epoch_time_s / scale
    dali_tta = time_to_accuracy("dali", dali_epoch_s, curve, target_accuracy)
    coordl_tta = time_to_accuracy("coordl", coordl_epoch_s, curve, target_accuracy)

    result = ExperimentResult(
        experiment_id="fig10",
        title="Fig. 10 — ResNet50/ImageNet-1K time to 75.9% top-1 "
              "(16x1080Ti across 2 HDD servers)",
        columns=["loader", "epoch_time_hours", "epochs_to_target",
                 "time_to_accuracy_hours", "speedup"],
        notes=["paper: ~2 days with DALI vs ~12 hours with CoorDL (4x)",
               "accuracy-vs-epoch curve is identical for both loaders by design"],
    )
    for tta in (dali_tta, coordl_tta):
        result.add_row(
            loader=tta.loader_name,
            epoch_time_hours=to_hours(tta.epoch_time_s),
            epochs_to_target=tta.epochs_needed,
            time_to_accuracy_hours=to_hours(tta.time_to_accuracy_s),
            speedup=speedup(dali_tta.time_to_accuracy_s, tta.time_to_accuracy_s),
        )
    return result
