"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables or figures via the
experiment registry, prints the resulting table (so ``pytest benchmarks/
--benchmark-only -s`` reproduces the paper's numbers), asserts the
qualitative shape, and reports its wall-clock cost through pytest-benchmark.

The experiments are full simulations, so each one is run exactly once
(``pedantic(rounds=1, iterations=1)``) rather than letting pytest-benchmark
calibrate with many repetitions.
"""

from __future__ import annotations

from typing import Any, Callable

import pytest

from repro.experiments.base import ExperimentResult


def run_experiment_once(benchmark, run: Callable[..., ExperimentResult],
                        **kwargs: Any) -> ExperimentResult:
    """Run one experiment exactly once under pytest-benchmark and print it."""
    result = benchmark.pedantic(lambda: run(**kwargs), rounds=1, iterations=1)
    print()
    print(result.format_table())
    return result


@pytest.fixture
def run_once(benchmark):
    """Fixture-form of :func:`run_experiment_once`."""
    def _runner(run: Callable[..., ExperimentResult], **kwargs: Any) -> ExperimentResult:
        return run_experiment_once(benchmark, run, **kwargs)
    return _runner
