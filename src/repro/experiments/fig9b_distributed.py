"""Figure 9(b)/(c) — multi-server distributed training: partitioned caching.

Two servers training one data-parallel job can collectively cache the whole
dataset, but without coordination each server still reads the part of its
(ever-changing) shard that is not in *its own* cache from storage every
epoch.  CoorDL's partitioned cache serves those misses from the other
server's DRAM over 40 Gbps TCP instead, removing storage I/O entirely after
the first epoch.  On HDD servers that is worth up to 15x (AlexNet); on SSD
servers the miss penalty is smaller so gains are 1.3-2.9x.  The
(model x loader) grid runs as distributed sweep points through
:class:`~repro.sim.sweep.SweepRunner` (vectorised partitioned epochs).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.configs import config_hdd_1080ti, config_ssd_v100
from repro.compute.model_zoo import ALEXNET, AUDIO_M5, RESNET18, RESNET50, SHUFFLENET_V2, ModelSpec
from repro.experiments.base import ExperimentResult, SWEEP_SCALE
from repro.sim.sweep import SweepRunner
from repro.units import speedup
from repro.store import PersistentPool, StoreArg

DEFAULT_HDD_MODELS = (ALEXNET, RESNET18, RESNET50, SHUFFLENET_V2)
DEFAULT_SSD_MODELS = (SHUFFLENET_V2, AUDIO_M5, ALEXNET)


def run(scale: float = SWEEP_SCALE, num_servers: int = 2,
        cache_fraction_per_server: float = 0.65, server_name: str = "hdd-1080ti",
        models: Optional[Sequence[ModelSpec]] = None, num_epochs: int = 2,
        seed: int = 0, workers: Optional[int] = None,
        store: StoreArg = None,
        pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Reproduce the distributed-training speedups of Fig. 9(b)/(c)."""
    if server_name == "hdd-1080ti":
        factory = config_hdd_1080ti
        chosen = list(models) if models is not None else list(DEFAULT_HDD_MODELS)
    else:
        factory = config_ssd_v100
        chosen = list(models) if models is not None else list(DEFAULT_SSD_MODELS)
    runner = SweepRunner(factory, scale=scale, seed=seed)
    sweep = runner.run(SweepRunner.grid(
        models=chosen, loaders=["dist-baseline", "dist-coordl"],
        cache_fractions=[cache_fraction_per_server], num_servers=num_servers,
        num_epochs=num_epochs), workers=workers, store=store, pool=pool)
    result = ExperimentResult(
        experiment_id="fig9b",
        title=f"Fig. 9(b/c) — {num_servers}-server distributed training: CoorDL vs DALI "
              f"({factory().name})",
        columns=["model", "dataset", "dali_epoch_s", "coordl_epoch_s", "speedup",
                 "dali_disk_gb_per_server", "coordl_disk_gb_per_server",
                 "coordl_remote_gb"],
        notes=["paper: up to 15x on HDD servers (AlexNet/OpenImages), 1.3-2.9x on SSD",
               "disk GB reported at the scaled dataset size"],
    )
    for model in chosen:
        baseline_rec = sweep.one(model=model, loader="dist-baseline")
        coordl_rec = sweep.one(model=model, loader="dist-coordl")
        b_epoch = baseline_rec.dist_steady
        c_epoch = coordl_rec.dist_steady
        result.add_row(
            model=model.name,
            dataset=coordl_rec.dataset_name,
            dali_epoch_s=b_epoch.epoch_time_s,
            coordl_epoch_s=c_epoch.epoch_time_s,
            speedup=speedup(b_epoch.epoch_time_s, c_epoch.epoch_time_s),
            dali_disk_gb_per_server=b_epoch.total_disk_bytes / num_servers / 1e9,
            coordl_disk_gb_per_server=c_epoch.total_disk_bytes / num_servers / 1e9,
            coordl_remote_gb=c_epoch.total_remote_bytes / 1e9,
        )
    return result
