"""What-if analyses built on the DS-Analyzer predictor (Sec. 3.4, App. C.2).

These helpers answer the questions the paper motivates DS-Analyzer with:

* *How much DRAM cache does this model need to mask fetch stalls?*
  (:func:`optimal_cache_fraction`) — beyond that point more DRAM is wasted
  because training becomes CPU- or GPU-bound.
* *How many CPU cores per GPU mask the prep stall?*
  (:func:`cores_needed_per_gpu`).
* *What happens if GPUs get k times faster?* (:func:`with_faster_gpu`) —
  faster compute without a faster data pipeline only grows the stall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cluster.server import ServerConfig
from repro.compute.model_zoo import ModelSpec
from repro.datasets.dataset import SyntheticDataset
from repro.dsanalyzer.predictor import Bottleneck, DataStallPredictor, Prediction
from repro.dsanalyzer.profiler import DSAnalyzerProfiler, PipelineProfile
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class CacheSizeRecommendation:
    """Answer to "how much cache does this model need?"."""

    optimal_cache_fraction: float
    optimal_cache_bytes: float
    speed_at_optimum: float
    bottleneck_beyond_optimum: Bottleneck
    sweep: List[Prediction]


def sweep_cache_fractions(predictor: DataStallPredictor,
                          fractions: List[float]) -> List[Prediction]:
    """Predictions for a list of cache fractions (Fig. 16's x-axis)."""
    return [predictor.predict(f) for f in fractions]


def optimal_cache_fraction(predictor: DataStallPredictor, dataset: SyntheticDataset,
                           resolution: float = 0.05) -> CacheSizeRecommendation:
    """Smallest cache fraction at which training stops being IO-bound.

    Beyond this point additional DRAM does not improve training speed because
    the bottleneck has moved to prep or to the GPU (Appendix C.2's example:
    55 % of the dataset suffices for AlexNet on Config-SSD-V100).
    """
    if not 0 < resolution <= 0.5:
        raise ConfigurationError("resolution must be in (0, 0.5]")
    fractions = [round(resolution * i, 10) for i in range(int(1.0 / resolution) + 1)]
    if fractions[-1] < 1.0:
        fractions.append(1.0)
    sweep = sweep_cache_fractions(predictor, fractions)
    optimum = sweep[-1]
    for prediction in sweep:
        if prediction.bottleneck is not Bottleneck.FETCH:
            optimum = prediction
            break
    return CacheSizeRecommendation(
        optimal_cache_fraction=optimum.cache_fraction,
        optimal_cache_bytes=dataset.total_bytes * optimum.cache_fraction,
        speed_at_optimum=optimum.training_speed,
        bottleneck_beyond_optimum=optimum.bottleneck,
        sweep=sweep,
    )


def cores_needed_per_gpu(model: ModelSpec, dataset: SyntheticDataset,
                         server: ServerConfig, max_cores_per_gpu: int = 32,
                         gpu_prep: bool = False, library: str = "dali") -> int:
    """Fewest prep cores per GPU that eliminate the prep stall (Fig. 4).

    Returns ``max_cores_per_gpu`` when even that many cores cannot keep up
    (the paper's ResNet18/AlexNet case on V100s).
    """
    if max_cores_per_gpu <= 0:
        raise ConfigurationError("max cores per GPU must be positive")
    profiler = DSAnalyzerProfiler(model, dataset, server, gpu_prep=gpu_prep,
                                  library=library)
    gpu_rate_one = model.gpu_rate(server.gpu, gpu_prep_active=gpu_prep)
    for cores in range(1, max_cores_per_gpu + 1):
        prep_rate = profiler.measure_prep_rate(cores=min(cores, server.physical_cores),
                                               num_gpus=1)
        # Scale linearly for hypothetical core counts beyond the server's.
        if cores > server.physical_cores:
            prep_rate = prep_rate * cores / server.physical_cores
        if prep_rate >= gpu_rate_one:
            return cores
    return max_cores_per_gpu


def with_faster_gpu(profile: PipelineProfile, speedup: float) -> PipelineProfile:
    """Profile of the same pipeline with ``speedup``x faster GPUs.

    Only the ingestion rate G changes; fetch and prep rates are properties of
    the storage and CPUs.  Feeding the result to the predictor shows how data
    stalls worsen as GPUs get faster (the paper's forward-looking argument).
    """
    if speedup <= 0:
        raise ConfigurationError("GPU speedup must be positive")
    return PipelineProfile(
        gpu_rate=profile.gpu_rate * speedup,
        prep_rate=profile.prep_rate,
        storage_rate=profile.storage_rate,
        cache_rate=profile.cache_rate,
        mean_item_bytes=profile.mean_item_bytes,
        num_gpus=profile.num_gpus,
        cores=profile.cores,
    )
