"""Command-line interface.

Provides the operations a practitioner would reach for first, without writing
any Python:

* ``python -m repro list-experiments`` — every reproduced table/figure.
* ``python -m repro run-experiment fig9a --scale 0.01`` — regenerate one of
  them and print the table.
* ``python -m repro profile resnet18 openimages config-ssd-v100 --cache 0.65``
  — DS-Analyzer profile + bottleneck classification + cache recommendation.
* ``python -m repro report -o EXPERIMENTS.md`` — regenerate the full
  paper-vs-measured report.
* ``python -m repro store stats`` — inspect/manage the content-addressed
  sweep result store (also ``gc``, ``invalidate``).

``run-experiment`` and ``report`` accept ``--store DIR`` (memoise every
sweep point on disk; a warm re-run reduces to store reads) and
``--no-store``; with neither flag the ``REPRO_SWEEP_STORE`` environment
variable supplies the default store directory.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.cluster.configs import get_server_config
from repro.compute.model_zoo import get_model
from repro.datasets.catalog import get_dataset_spec
from repro.datasets.dataset import SyntheticDataset
from repro.dsanalyzer.predictor import DataStallPredictor
from repro.dsanalyzer.profiler import DSAnalyzerProfiler
from repro.dsanalyzer.report import format_recommendation, summarize
from repro.dsanalyzer.whatif import optimal_cache_fraction
from repro.exceptions import ConfigurationError
from repro.experiments import registry
from repro.experiments.base import SWEEP_SCALE
from repro.experiments.report_generator import generate
from repro.store import STORE_ENV_VAR, StoreArg, SweepStore, resolve_store


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Analyzing and Mitigating Data Stalls in "
                    "DNN Training' (DS-Analyzer + CoorDL).")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-experiments", help="list every reproduced table/figure")

    run = sub.add_parser("run-experiment", help="regenerate one table/figure")
    run.add_argument("experiment_id", help="id from list-experiments, e.g. fig9a")
    run.add_argument("--scale", type=float, default=SWEEP_SCALE,
                     help="dataset scale fraction (default 1/100)")
    run.add_argument("--workers", type=int, default=None,
                     help="worker processes for the experiment's sweep grid "
                          "(default: REPRO_SWEEP_WORKERS or serial; results "
                          "are identical for every value)")
    _add_store_flags(run)

    profile = sub.add_parser("profile", help="DS-Analyzer profile for a model")
    profile.add_argument("model", help="model name, e.g. resnet18")
    profile.add_argument("dataset", help="dataset name, e.g. openimages")
    profile.add_argument("server", help="server config, e.g. config-ssd-v100")
    profile.add_argument("--cache", type=float, default=0.35,
                         help="cached fraction of the dataset (default 0.35)")
    profile.add_argument("--scale", type=float, default=SWEEP_SCALE,
                         help="dataset scale fraction (default 1/100)")
    profile.add_argument("--gpu-prep", action="store_true",
                         help="profile with DALI GPU-assisted prep")

    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report.add_argument("-o", "--output", default="EXPERIMENTS.md")
    report.add_argument("--scale", type=float, default=SWEEP_SCALE)
    report.add_argument("--workers", type=int, default=None,
                        help="worker processes for the sweep-backed experiments")
    _add_store_flags(report)

    store = sub.add_parser(
        "store", help="manage the content-addressed sweep result store")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    stats = store_sub.add_parser("stats", help="entry count and byte totals")
    gc = store_sub.add_parser("gc", help="prune oldest entries to a budget")
    gc.add_argument("--max-entries", type=int, default=None,
                    help="keep at most this many entries")
    gc.add_argument("--max-bytes", type=int, default=None,
                    help="keep at most this many bytes of entries")
    invalidate = store_sub.add_parser(
        "invalidate", help="drop entries (all, or by key prefix) to force "
                           "re-simulation, e.g. after simulator changes")
    invalidate.add_argument("--prefix", default="",
                            help="only drop keys starting with this hex prefix")
    for command in (stats, gc, invalidate):
        command.add_argument("--store", dest="store_dir", default=None,
                             help=f"store directory (default: ${STORE_ENV_VAR})")
    return parser


def _add_store_flags(parser: argparse.ArgumentParser) -> None:
    """``--store DIR`` / ``--no-store`` on the sweep-running commands."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--store", dest="store_dir", default=None,
                       help="content-addressed result store directory: "
                            "already-simulated sweep points are rehydrated "
                            "byte-identically instead of recomputed "
                            f"(default: ${STORE_ENV_VAR} when set)")
    group.add_argument("--no-store", action="store_true",
                       help=f"disable the result store even when "
                            f"${STORE_ENV_VAR} is set")


def _store_arg(args: argparse.Namespace) -> StoreArg:
    """Normalise the parsed store flags to a ``store=`` argument."""
    if getattr(args, "no_store", False):
        return False
    return args.store_dir  # None falls through to the env-var default


def _cmd_list_experiments() -> int:
    for experiment_id in registry.experiment_ids():
        print(experiment_id)
    return 0


def _cmd_run_experiment(experiment_id: str, scale: float,
                        workers: Optional[int], store: StoreArg) -> int:
    kwargs = {} if experiment_id == "fig8" else {"scale": scale}
    if workers is not None:
        if not registry.accepts_kwarg(experiment_id, "workers"):
            print(f"{experiment_id} has no sweep grid to parallelise; "
                  "ignoring --workers", file=sys.stderr)
        else:
            kwargs["workers"] = workers
    if store is not None:
        if not registry.accepts_kwarg(experiment_id, "store"):
            print(f"{experiment_id} has no sweep grid to memoise; "
                  "ignoring --store/--no-store", file=sys.stderr)
        else:
            kwargs["store"] = store
    result = registry.run_experiment(experiment_id, **kwargs)
    print(result.format_table())
    return 0


def _cmd_profile(model_name: str, dataset_name: str, server_name: str,
                 cache_fraction: float, scale: float, gpu_prep: bool) -> int:
    model = get_model(model_name)
    dataset = SyntheticDataset(get_dataset_spec(dataset_name), scale=scale)
    server = get_server_config(server_name)
    profiler = DSAnalyzerProfiler(model, dataset, server, gpu_prep=gpu_prep)
    predictor = DataStallPredictor(profiler.profile())
    print(summarize(predictor, cache_fraction))
    print()
    print(format_recommendation(optimal_cache_fraction(predictor, dataset)))
    return 0


def _cmd_report(output: str, scale: float, workers: Optional[int],
                store: StoreArg) -> int:
    generate(output, scale, workers=workers, store=store)
    print(f"wrote {output}")
    return 0


def _open_store(store_dir: Optional[str]) -> SweepStore:
    """Open the store named by ``--store`` or the environment; else fail."""
    store = resolve_store(store_dir)  # None falls back to $REPRO_SWEEP_STORE
    if store is None:
        raise ConfigurationError(
            f"no store directory: pass --store DIR or set ${STORE_ENV_VAR}")
    return store


def _cmd_store(args: argparse.Namespace) -> int:
    store = _open_store(args.store_dir)
    if args.store_command == "stats":
        stats = store.stats()
        print(f"store {stats.directory}: {stats.entries} entries, "
              f"{stats.total_bytes:,} bytes")
    elif args.store_command == "gc":
        removed = store.gc(max_entries=args.max_entries,
                           max_bytes=args.max_bytes)
        stats = store.stats()
        print(f"gc removed {removed} entries; {stats.entries} entries, "
              f"{stats.total_bytes:,} bytes remain")
    else:  # invalidate (argparse enforces the choices)
        removed = store.invalidate(prefix=args.prefix)
        what = f"prefix {args.prefix!r}" if args.prefix else "all entries"
        print(f"invalidated {removed} entries ({what})")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list-experiments":
        return _cmd_list_experiments()
    if args.command == "run-experiment":
        return _cmd_run_experiment(args.experiment_id, args.scale, args.workers,
                                   _store_arg(args))
    if args.command == "profile":
        return _cmd_profile(args.model, args.dataset, args.server,
                            args.cache, args.scale, args.gpu_prep)
    if args.command == "report":
        return _cmd_report(args.output, args.scale, args.workers,
                           _store_arg(args))
    if args.command == "store":
        return _cmd_store(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
