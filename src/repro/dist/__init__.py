"""Multi-host sweep fabric: distribute one `SweepRunner` grid across machines.

``repro.dist`` turns the store + pool + golden harness into a small
cluster compute fabric, stdlib-only:

* :class:`DistWorker` — the agent process behind ``repro dist worker
  --listen HOST:PORT``.  Speaks the length-prefixed JSON frame protocol
  of :mod:`repro.dist.protocol`, rebuilds simulation substrates from the
  wire runner spec through the same per-worker dataset/sampler caches
  :class:`~repro.store.PersistentPool` workers use, executes point
  chunks (serially, or through an agent-local pool when started with
  ``--workers N``), and streams byte-exact ``SweepRecord`` snapshots
  back as they finish.
* :class:`DistExecutor` — the driver-side scheduler.  A drop-in for the
  ``pool=`` argument of :meth:`~repro.sim.sweep.SweepRunner.run` (and of
  the serve daemon): partitions store *misses* into chunks, assigns them
  across connected hosts, work-steals outstanding chunks from slow or
  stalled hosts, survives host death by reassigning chunks under a
  bounded budget, and reassembles results in input order.
* :class:`LocalWorkerFleet` — test/CI helper that spawns localhost agent
  subprocesses and can SIGKILL one mid-sweep to exercise the
  ``host-death`` fault kind.

The scale-out contract is the repo-wide determinism contract, extended:
because per-point seeding is scheduling-independent and the store is
write-once, a grid's results are **byte-identical at any topology** —
hosts=1/2 × workers=0/1/2 replay the committed golden grids exactly
(``make dist-check``), duplicate steals collapse to one delivery, and
the merged multi-writer store trace still passes
:func:`~repro.store.verify_store_trace`.
"""

from repro.dist.executor import (
    DEFAULT_MAX_REASSIGNS,
    DEFAULT_STEAL_DELAY_S,
    DistExecutor,
)
from repro.dist.protocol import (
    DIST_PROTOCOL_VERSION,
    HOSTS_ENV_VAR,
    MAX_FRAME_BYTES,
    parse_hosts,
    recv_frame,
    resolve_hosts,
    send_frame,
    spec_from_wire,
    spec_to_wire,
)
from repro.dist.worker import (
    LISTENING_PREFIX,
    DistWorker,
    LocalWorkerFleet,
)

__all__ = [
    "DEFAULT_MAX_REASSIGNS",
    "DEFAULT_STEAL_DELAY_S",
    "DIST_PROTOCOL_VERSION",
    "DistExecutor",
    "DistWorker",
    "HOSTS_ENV_VAR",
    "LISTENING_PREFIX",
    "LocalWorkerFleet",
    "MAX_FRAME_BYTES",
    "parse_hosts",
    "recv_frame",
    "resolve_hosts",
    "send_frame",
    "spec_from_wire",
    "spec_to_wire",
]
