"""I/O accounting.

Every read performed against a :class:`~repro.storage.filestore.FileStore`
is recorded here: bytes and requests by source (storage, cache, remote), plus
an optional time-series of (virtual time, cumulative disk bytes) samples used
to reproduce the disk-I/O-over-time plots (Fig. 11).

The timeline is materialised lazily: the vectorised fetch path records whole
epochs as numpy array chunks, and the per-sample ``(time, bytes)`` tuples are
only built when :attr:`IOStats.timeline` is actually read (the Fig. 11
experiment; most sweeps never look).

Recording is single-threaded (it happens inside one simulation), but
*reading* is not: concurrent store writers snapshot the same finished
record from several threads (``repro.store``'s write-once puts race by
design).  Samples and pending chunks therefore live in one tuple attribute
that materialisation replaces atomically — concurrent readers either
re-merge to the identical list or see the final state, never a partially
materialised or double-extended timeline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


class IOStats:
    """Counters for one loader / one epoch / one server (caller's choice).

    Attributes:
        disk_bytes / disk_requests: Reads served by the storage device.
        cache_bytes / cache_requests: Reads served from the local DRAM cache.
        remote_bytes / remote_requests: Reads served from a remote server.
        timeline: ``(virtual time, cumulative disk bytes)`` samples, one per
            disk read recorded with a timestamp (lazily materialised).
    """

    def __init__(self, disk_bytes: float = 0.0, disk_requests: int = 0,
                 cache_bytes: float = 0.0, cache_requests: int = 0,
                 remote_bytes: float = 0.0, remote_requests: int = 0) -> None:
        self.disk_bytes = disk_bytes
        self.disk_requests = disk_requests
        self.cache_bytes = cache_bytes
        self.cache_requests = cache_requests
        self.remote_bytes = remote_bytes
        self.remote_requests = remote_requests
        # (materialised samples, pending array chunks) — always read and
        # replaced as one tuple so concurrent timeline reads are coherent.
        self._timeline_state: Tuple[List[Tuple[float, float]],
                                    List[Tuple[np.ndarray, np.ndarray]]] = (
            [], [])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IOStats(disk_bytes={self.disk_bytes}, "
                f"disk_requests={self.disk_requests}, "
                f"cache_requests={self.cache_requests}, "
                f"remote_requests={self.remote_requests})")

    @property
    def timeline(self) -> List[Tuple[float, float]]:
        """Per-read ``(time, cumulative disk bytes)`` samples, materialised.

        Safe under concurrent readers: the merge builds a fresh list from
        one coherent ``(samples, chunks)`` snapshot and publishes it in a
        single attribute assignment.  Racing readers repeat the identical
        merge; none ever extends a list another reader already returned.
        """
        samples, chunks = self._timeline_state
        if chunks:
            merged = list(samples)
            for times, cumulative in chunks:
                merged.extend(zip(times.tolist(), cumulative.tolist()))
            self._timeline_state = (merged, [])
            return merged
        return samples

    @timeline.setter
    def timeline(self, samples: Sequence[Tuple[float, float]]) -> None:
        self._timeline_state = (list(samples), [])

    def record_disk(self, nbytes: float, at_time: float | None = None) -> None:
        """Account one read served by the storage device."""
        self.disk_bytes += nbytes
        self.disk_requests += 1
        if at_time is not None:
            # Materialises pending chunks first so samples stay in order
            # (recording is single-threaded; see module docstring).
            self.timeline.append((at_time, self.disk_bytes))

    def record_disk_bulk(self, sizes: Sequence[float],
                         at_times: Optional[Sequence[float]] = None) -> None:
        """Account many storage reads at once (vectorised fetch path).

        Equivalent to calling :meth:`record_disk` once per entry of ``sizes``
        (zipped with ``at_times`` when given), including the per-read
        cumulative-byte samples of :attr:`timeline` — but the samples stay as
        array chunks until the timeline is read.
        """
        sizes = np.asarray(sizes, dtype=np.float64)
        if at_times is not None:
            cumulative = self.disk_bytes + np.cumsum(sizes)
            samples, chunks = self._timeline_state
            self._timeline_state = (
                samples,
                chunks + [(np.asarray(at_times, dtype=np.float64),
                           cumulative)])
        self.disk_bytes += float(sizes.sum())
        self.disk_requests += int(sizes.size)

    def record_cache(self, nbytes: float) -> None:
        """Account one read served from the local DRAM cache."""
        self.cache_bytes += nbytes
        self.cache_requests += 1

    def record_cache_bulk(self, total_bytes: float, requests: int) -> None:
        """Account many local-cache reads at once (vectorised fetch path)."""
        self.cache_bytes += float(total_bytes)
        self.cache_requests += int(requests)

    def record_remote(self, nbytes: float) -> None:
        """Account one read served from a remote server's cache."""
        self.remote_bytes += nbytes
        self.remote_requests += 1

    def record_remote_bulk(self, total_bytes: float, requests: int) -> None:
        """Account many remote-cache reads at once (vectorised fetch path)."""
        self.remote_bytes += float(total_bytes)
        self.remote_requests += int(requests)

    @property
    def total_requests(self) -> int:
        """All item reads regardless of source."""
        return self.disk_requests + self.cache_requests + self.remote_requests

    @property
    def total_bytes(self) -> float:
        """All bytes read regardless of source."""
        return self.disk_bytes + self.cache_bytes + self.remote_bytes

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of requests served from local cache."""
        if self.total_requests == 0:
            return 0.0
        return self.cache_requests / self.total_requests

    @property
    def miss_ratio(self) -> float:
        """Fraction of requests that had to leave the local cache."""
        return 1.0 - self.cache_hit_ratio

    def copy(self) -> "IOStats":
        """Snapshot of the counters (timeline chunks shared, not re-built)."""
        snapshot = IOStats(
            disk_bytes=self.disk_bytes,
            disk_requests=self.disk_requests,
            cache_bytes=self.cache_bytes,
            cache_requests=self.cache_requests,
            remote_bytes=self.remote_bytes,
            remote_requests=self.remote_requests,
        )
        samples, chunks = self._timeline_state
        snapshot._timeline_state = (list(samples), list(chunks))
        return snapshot

    def merged_with(self, other: "IOStats") -> "IOStats":
        """Return the element-wise sum of two counters (timelines concatenated)."""
        merged = IOStats(
            disk_bytes=self.disk_bytes + other.disk_bytes,
            disk_requests=self.disk_requests + other.disk_requests,
            cache_bytes=self.cache_bytes + other.cache_bytes,
            cache_requests=self.cache_requests + other.cache_requests,
            remote_bytes=self.remote_bytes + other.remote_bytes,
            remote_requests=self.remote_requests + other.remote_requests,
        )
        merged.timeline = sorted(self.timeline + other.timeline)
        return merged

    def reset(self) -> None:
        """Zero all counters (e.g. between warm-up and measured epochs)."""
        self.disk_bytes = 0.0
        self.disk_requests = 0
        self.cache_bytes = 0.0
        self.cache_requests = 0
        self.remote_bytes = 0.0
        self.remote_requests = 0
        self._timeline_state = ([], [])
