"""Pluggable storage backends for the content-addressed sweep store.

:class:`~repro.store.SweepStore` is split storage-engine style into a
*frontend* (counters, tracing, rehydration and the point guard — policy
that must not drift between backends) and a :class:`StoreBackend` that
owns the bytes.  Two backends implement the contract:

* :class:`JsonDirBackend` — one JSON file per entry at
  ``<dir>/<key[:2]>/<key>.json``, byte-for-byte compatible with every
  store directory written before backends existed.  Ideal for small
  stores, ``diff``-able by hand, and the format the golden corruption
  tests pin.
* :class:`SqliteBackend` — one WAL-mode SQLite database holding an
  *index* (key, point label, runner-spec digest, schema version,
  created-at timestamp, payload size, codec) next to *packed payloads*
  (the record snapshot as canonical JSON, zstd-compressed when the
  optional ``zstandard`` module is importable, zlib otherwise).  The
  index/payload split is the classic storage-engine move: ``stats`` /
  ``gc`` / ``invalidate`` become SQL queries instead of directory scans,
  the write-once check is a single ``INSERT .. ON CONFLICT DO NOTHING``,
  and a hit never parses the JSON wrapper — schema and key come from the
  index, only the record snapshot itself is decoded.

Pragma discipline (per the SQLite idioms in SNIPPETS.md):
``journal_mode=WAL`` (readers never block behind writers — the serve
daemon's concurrent reader threads are real, not serialised),
``synchronous=NORMAL`` (safe with WAL; no per-commit fsync),
``busy_timeout=30000`` (writers queue instead of erroring), timestamps
as ISO-8601 UTC text.  Connections are per-thread (``sqlite3`` objects
are not thread-safe; thread-local connections under WAL is what makes
the concurrency contract hold).

Both backends speak the same exchange types: ``get`` returns the record
snapshot dict *plus* the exact stored bytes (file bytes / packed blob) so
the frontend's operation trace digests what was physically read, and
``put`` returns the stored bytes (or ``None`` for a write-once-redundant
put) so put/get digests of one entry always agree —
:func:`~repro.store.verify_store_trace` depends on exactly that.
Unusable entries raise :class:`EntryInvalid` carrying the bytes that
were read; the frontend deletes, counts and re-simulates.
"""

from __future__ import annotations

import abc
import json
import os
import pathlib
import sqlite3
import threading
import zlib
from datetime import datetime, timezone
from typing import Any, ClassVar, Dict, List, Optional, Tuple, Union

try:  # optional: packed payloads use zstd when the module is available
    import zstandard  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - depends on the environment
    zstandard = None

#: Version of the on-disk entry format.  It participates in every content
#: address (see :func:`repro.store.store_key`), so bumping it orphans
#: (never corrupts) all previous entries — a stale-schema entry can
#: simply never be looked up again.
STORE_SCHEMA_VERSION = 1


class EntryInvalid(Exception):
    """An entry exists but cannot be served (truncated, garbage, stale).

    ``payload`` carries whatever bytes were physically read, so the
    frontend's operation trace can record a digest of what the failed
    read actually saw (corrupted reads must appear as ``invalid`` — never
    ``hit`` — events for the trace contract to mean anything).
    """

    def __init__(self, message: str, payload: Optional[bytes] = None) -> None:
        super().__init__(message)
        self.payload = payload


class StoreBackend(abc.ABC):
    """Storage contract behind :class:`~repro.store.SweepStore`.

    Backends store *record snapshots* (the fully-invertible
    ``SweepRecord.snapshot(include_timeline=True)`` dict) under hex
    content addresses, enforce write-once puts, and answer the management
    queries (``entries`` / ``stats`` / ``gc`` / ``invalidate``) from
    whatever index they keep.  Session counters, tracing, rehydration and
    point validation live in the frontend and are identical across
    backends.
    """

    #: Short backend name (``"json"`` / ``"sqlite"``) surfaced in
    #: :class:`~repro.store.StoreStats`, ``/v1/stats`` and the CLI.
    kind: ClassVar[str] = "abstract"

    @property
    @abc.abstractmethod
    def path(self) -> pathlib.Path:
        """Filesystem root of the backend (directory or database file)."""

    @abc.abstractmethod
    def entry_path(self, key: str) -> pathlib.Path:
        """The file holding ``key``'s bytes (the db file for SQLite)."""

    @abc.abstractmethod
    def get(self, key: str) -> Optional[Tuple[Dict[str, Any], bytes]]:
        """``(record snapshot, stored bytes)`` or ``None`` on a clean miss.

        Raises:
            EntryInvalid: The entry exists but is unusable (unparsable,
                truncated, mis-keyed or wrong-schema); carries the bytes
                that were read.
        """

    @abc.abstractmethod
    def put(self, key: str, snapshot: Dict[str, Any], *, label: str = "",
            runner_digest: str = "") -> Optional[bytes]:
        """Store ``snapshot`` under ``key`` unless it already exists.

        Returns the exact stored bytes, or ``None`` when the entry was
        already present (a write-once *redundant* put).  ``label`` and
        ``runner_digest`` are index metadata (ignored by backends without
        an index).
        """

    @abc.abstractmethod
    def delete(self, key: str) -> None:
        """Best-effort removal of one entry (idempotent, never raises)."""

    @abc.abstractmethod
    def entries(self) -> List[str]:
        """Every stored key, sorted."""

    @abc.abstractmethod
    def stats(self) -> Tuple[int, int, int]:
        """``(entries, payload_bytes, disk_bytes)`` in one pass.

        ``payload_bytes`` is the stored entry bytes; ``disk_bytes`` the
        physical footprint (equal for the JSON backend; db + WAL + shm
        for SQLite).
        """

    @abc.abstractmethod
    def gc(self, max_entries: Optional[int],
           max_bytes: Optional[int]) -> int:
        """Prune oldest-first until within the budgets; return removals."""

    @abc.abstractmethod
    def invalidate(self, prefix: str) -> int:
        """Remove every key starting with ``prefix``; return removals."""

    def close(self) -> None:
        """Release backend resources (connections); idempotent."""


class JsonDirBackend(StoreBackend):
    """Directory-of-JSON backend: the store's original on-disk format.

    One file per entry at ``<dir>/<key[:2]>/<key>.json`` (the two-hex
    shard keeps directories small), each carrying the wrapper
    ``{"schema", "key", "record"}`` as canonical JSON — byte-for-byte
    what :class:`~repro.store.SweepStore` wrote before backends existed,
    so every pre-existing store directory keeps serving.  Writes are
    atomic (uniquely-named temp file + :func:`os.replace`), the
    write-once check is file existence, and the management queries scan
    the directory once per call with :func:`os.scandir` (one traversal
    collecting name, size and mtime together — not a glob plus a
    ``stat`` per file per field).
    """

    kind = "json"

    def __init__(self, directory: Union[str, os.PathLike]) -> None:
        self._directory = pathlib.Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._tmp_serial = 0

    @property
    def path(self) -> pathlib.Path:
        return self._directory

    def entry_path(self, key: str) -> pathlib.Path:
        return self._directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Tuple[Dict[str, Any], bytes]]:
        try:
            with open(self.entry_path(key), "rb") as handle:
                payload = handle.read()
        except FileNotFoundError:
            return None
        try:
            entry = json.loads(payload.decode("utf-8"))
            if entry["schema"] != STORE_SCHEMA_VERSION or entry["key"] != key:
                raise ValueError("store entry key/schema mismatch")
            snapshot = entry["record"]
            if not isinstance(snapshot, dict):
                raise ValueError("store entry record is not an object")
        except Exception as exc:
            raise EntryInvalid(str(exc), payload) from exc
        return snapshot, payload

    def put(self, key: str, snapshot: Dict[str, Any], *, label: str = "",
            runner_digest: str = "") -> Optional[bytes]:
        # label / runner_digest are index metadata; this layout's only
        # index is the filesystem, so they are intentionally unused.
        path = self.entry_path(key)
        if path.exists():
            return None
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": STORE_SCHEMA_VERSION,
            "key": key,
            "record": snapshot,
        }
        payload = json.dumps(entry, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        with self._lock:
            serial = self._tmp_serial
            self._tmp_serial += 1
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}"
                             f"-{threading.get_ident()}-{serial}")
        try:
            with open(tmp, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass
        return payload

    def delete(self, key: str) -> None:
        try:
            self.entry_path(key).unlink()
        except OSError:
            pass

    def _scan(self) -> List[Tuple[float, int, pathlib.Path]]:
        """One directory traversal: (mtime, size, path) per entry file."""
        found: List[Tuple[float, int, pathlib.Path]] = []
        try:
            shards = [d for d in os.scandir(self._directory)
                      if d.is_dir() and len(d.name) == 2]
        except OSError:
            return found
        for shard in shards:
            try:
                candidates = list(os.scandir(shard.path))
            except OSError:  # raced with gc/invalidate
                continue
            for item in candidates:
                if not item.name.endswith(".json"):
                    continue
                try:
                    meta = item.stat()
                except OSError:
                    continue
                found.append((meta.st_mtime, meta.st_size,
                              pathlib.Path(item.path)))
        return found

    def entries(self) -> List[str]:
        return sorted(path.stem for _, _, path in self._scan())

    def stats(self) -> Tuple[int, int, int]:
        scan = self._scan()
        total = sum(size for _, size, _ in scan)
        return len(scan), total, total

    def gc(self, max_entries: Optional[int],
           max_bytes: Optional[int]) -> int:
        scan = sorted(self._scan())  # oldest first (mtime, size, path)
        entries = len(scan)
        total = sum(size for _, size, _ in scan)
        removed = 0
        for _, size, path in scan:
            over_entries = max_entries is not None and entries > max_entries
            over_bytes = max_bytes is not None and total > max_bytes
            if not (over_entries or over_bytes):
                break
            path.unlink(missing_ok=True)
            entries -= 1
            total -= size
            removed += 1
        return removed

    def invalidate(self, prefix: str) -> int:
        removed = 0
        for _, _, path in self._scan():
            if path.stem.startswith(prefix):
                path.unlink(missing_ok=True)
                removed += 1
        return removed


def _pack(data: bytes) -> Tuple[str, bytes]:
    """Compress one payload; returns (codec name, packed bytes)."""
    if zstandard is not None:
        return "zstd", zstandard.ZstdCompressor().compress(data)
    return "zlib", zlib.compress(data, 6)


def _unpack(codec: str, blob: bytes) -> bytes:
    """Invert :func:`_pack` by recorded codec name."""
    if codec == "zlib":
        return zlib.decompress(blob)
    if codec == "zstd":
        if zstandard is None:
            raise ValueError("entry packed with zstd but the zstandard "
                             "module is not available")
        return zstandard.ZstdDecompressor().decompress(blob)
    raise ValueError(f"unknown payload codec {codec!r}")


class SqliteBackend(StoreBackend):
    """Single-file WAL-mode SQLite backend: SQL index, packed payloads.

    The ``entries`` table is the index — key (primary key), point label,
    runner-spec digest, schema version, ISO-8601 UTC created-at, payload
    size and codec — and the payload column holds the record snapshot as
    compressed canonical JSON.  Management queries never touch payloads;
    a hit validates schema/key from the index (no wrapper parse) and
    decodes only the snapshot itself; the write-once contract is one
    atomic ``INSERT .. ON CONFLICT(key) DO NOTHING`` (strictly stronger
    than the JSON backend's existence check — racing writers cannot both
    store).  ``rowid`` order is insertion order, which is what ``gc``
    prunes oldest-first by.
    """

    kind = "sqlite"

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS entries (
        key            TEXT PRIMARY KEY,
        label          TEXT NOT NULL DEFAULT '',
        runner_digest  TEXT NOT NULL DEFAULT '',
        schema_version INTEGER NOT NULL,
        created_at     TEXT NOT NULL,
        payload_size   INTEGER NOT NULL,
        codec          TEXT NOT NULL,
        payload        BLOB NOT NULL
    )
    """

    def __init__(self, database: Union[str, os.PathLike]) -> None:
        self._db_path = pathlib.Path(database)
        if self._db_path.parent != pathlib.Path(""):
            self._db_path.parent.mkdir(parents=True, exist_ok=True)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._connections: List[sqlite3.Connection] = []
        self._generation = 0
        self._connect()  # create the schema eagerly, fail fast on bad paths

    @property
    def path(self) -> pathlib.Path:
        return self._db_path

    def entry_path(self, key: str) -> pathlib.Path:
        return self._db_path

    def _connect(self) -> sqlite3.Connection:
        state = getattr(self._local, "state", None)
        if state is not None and state[0] == self._generation:
            return state[1]
        # Autocommit (isolation_level=None): every statement is its own
        # transaction, so the write-once INSERT and the management DELETEs
        # are each atomic without explicit BEGIN/COMMIT bookkeeping.
        con = sqlite3.connect(str(self._db_path), timeout=30.0,
                              isolation_level=None)
        con.execute("PRAGMA journal_mode=WAL")
        con.execute("PRAGMA synchronous=NORMAL")
        con.execute("PRAGMA busy_timeout=30000")
        con.execute(self._SCHEMA)
        with self._lock:
            generation = self._generation
            self._connections.append(con)
        self._local.state = (generation, con)
        return con

    def get(self, key: str) -> Optional[Tuple[Dict[str, Any], bytes]]:
        row = self._connect().execute(
            "SELECT schema_version, codec, payload FROM entries "
            "WHERE key = ?", (key,)).fetchone()
        if row is None:
            return None
        schema_version, codec, blob = row
        blob = bytes(blob)
        if schema_version != STORE_SCHEMA_VERSION:
            raise EntryInvalid("store entry schema mismatch", blob)
        try:
            snapshot = json.loads(_unpack(codec, blob).decode("utf-8"))
            if not isinstance(snapshot, dict):
                raise ValueError("store entry record is not an object")
        except Exception as exc:
            raise EntryInvalid(str(exc), blob) from exc
        return snapshot, blob

    def put(self, key: str, snapshot: Dict[str, Any], *, label: str = "",
            runner_digest: str = "") -> Optional[bytes]:
        data = json.dumps(snapshot, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        codec, blob = _pack(data)
        created = datetime.now(timezone.utc).isoformat(timespec="seconds")
        cursor = self._connect().execute(
            "INSERT INTO entries (key, label, runner_digest, schema_version,"
            " created_at, payload_size, codec, payload)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?)"
            " ON CONFLICT(key) DO NOTHING",
            (key, label, runner_digest, STORE_SCHEMA_VERSION, created,
             len(blob), codec, blob))
        return blob if cursor.rowcount else None

    def delete(self, key: str) -> None:
        try:
            self._connect().execute("DELETE FROM entries WHERE key = ?",
                                    (key,))
        except sqlite3.Error:
            pass

    def entries(self) -> List[str]:
        rows = self._connect().execute(
            "SELECT key FROM entries ORDER BY key").fetchall()
        return [key for (key,) in rows]

    def stats(self) -> Tuple[int, int, int]:
        count, total = self._connect().execute(
            "SELECT COUNT(*), COALESCE(SUM(payload_size), 0)"
            " FROM entries").fetchone()
        disk = 0
        for suffix in ("", "-wal", "-shm"):
            try:
                disk += os.path.getsize(f"{self._db_path}{suffix}")
            except OSError:
                pass
        return count, total, disk

    def gc(self, max_entries: Optional[int],
           max_bytes: Optional[int]) -> int:
        if max_entries is None and max_bytes is None:
            return 0
        # Keep the maximal newest suffix (rowid = insertion order) whose
        # count and running byte total stay within both budgets — exactly
        # the JSON backend's oldest-first greedy, as one SQL statement.
        cursor = self._connect().execute(
            "DELETE FROM entries WHERE rowid NOT IN ("
            " SELECT rowid FROM ("
            "  SELECT rowid,"
            "         ROW_NUMBER() OVER w AS newest_rank,"
            "         SUM(payload_size) OVER w AS newest_bytes"
            "  FROM entries"
            "  WINDOW w AS (ORDER BY rowid DESC"
            "               ROWS UNBOUNDED PRECEDING))"
            " WHERE (:max_entries IS NULL OR newest_rank <= :max_entries)"
            "   AND (:max_bytes IS NULL OR newest_bytes <= :max_bytes))",
            {"max_entries": max_entries, "max_bytes": max_bytes})
        return cursor.rowcount

    def invalidate(self, prefix: str) -> int:
        cursor = self._connect().execute(
            "DELETE FROM entries WHERE substr(key, 1, length(:p)) = :p",
            {"p": prefix})
        return cursor.rowcount

    def close(self) -> None:
        with self._lock:
            connections, self._connections = self._connections, []
            self._generation += 1  # stale thread-locals reconnect lazily
        for con in connections:
            try:
                con.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass


#: URI scheme selecting :class:`SqliteBackend` in :func:`open_backend`
#: (and therefore in ``resolve_store`` / ``REPRO_SWEEP_STORE`` / every
#: ``--store`` flag): ``sqlite:///path/to/store.db``.
SQLITE_URI_PREFIX = "sqlite://"


def open_backend(location: Union[str, os.PathLike]) -> StoreBackend:
    """Open the backend a store location names.

    ``sqlite://PATH`` opens (creating if missing) a :class:`SqliteBackend`
    database at ``PATH``; any other value is a :class:`JsonDirBackend`
    directory.  Pass the URI as a string — ``pathlib`` normalisation
    would collapse the double slash.
    """
    text = os.fspath(location)
    if isinstance(text, str) and text.startswith(SQLITE_URI_PREFIX):
        return SqliteBackend(text[len(SQLITE_URI_PREFIX):])
    return JsonDirBackend(location)
