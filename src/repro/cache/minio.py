"""The MinIO cache (Sec. 4.1) — the paper's DNN-aware caching policy.

Key observation: DNN training accesses every item exactly once per epoch in a
random order, so *which* items are cached is irrelevant — all that matters is
that cached items are not evicted before they are used.  MinIO therefore never
replaces anything: items are admitted while there is space, and once the cache
is full all further requests for uncached items go to storage.  Every epoch
after the first then gets exactly ``len(cache)`` hits, the theoretical minimum
amount of disk I/O for the given DRAM budget.

The policy needs no recency or frequency bookkeeping, which is the point the
paper makes about its simplicity.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.cache.base import Cache


class MinIOCache(Cache):
    """Insert-while-space, never-evict cache specialised for DNN training."""

    def __init__(self, capacity_bytes: float) -> None:
        super().__init__(capacity_bytes)
        self._entries: Dict[int, float] = {}
        self._used = 0.0

    @property
    def used_bytes(self) -> float:
        return self._used

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._entries

    def cached_items(self) -> Iterable[int]:
        return list(self._entries.keys())

    def lookup(self, item_id: int) -> bool:
        size = self._entries.get(item_id)
        if size is None:
            self._stats.record_miss()
            return False
        self._stats.record_hit(size)
        return True

    def admit(self, item_id: int, size_bytes: float) -> bool:
        if item_id in self._entries:
            return True
        if self._used + size_bytes > self._capacity:
            # No replacement, ever: the request simply defaults to storage
            # and the cache contents survive to serve the next epoch.
            self._stats.rejected += 1
            return False
        self._entries[item_id] = size_bytes
        self._used += size_bytes
        self._stats.insertions += 1
        return True

    @property
    def is_full(self) -> bool:
        """True when no further item of typical size can be admitted."""
        return self.free_bytes <= 0.0

    def item_size(self, item_id: int) -> float:
        """Size of a cached item (0.0 when not cached)."""
        return self._entries.get(item_id, 0.0)

    def clear(self) -> None:
        """Drop everything — only used when a training *job* ends."""
        self._entries.clear()
        self._used = 0.0
