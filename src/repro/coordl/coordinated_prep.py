"""Coordinated prep: sharing one fetch+prep sweep across concurrent HP jobs.

Sec. 4.3: every HP-search job trains on the same dataset, so instead of each
job independently fetching and pre-processing the whole dataset every epoch
(k-fold redundant work), CoorDL

1. assigns each job a random shard of the dataset at the start of the epoch,
2. has each job fetch + prep only its shard, producing minibatches into the
   shared :class:`~repro.coordl.staging.StagingArea`, and
3. lets every job consume every staged minibatch exactly once per epoch.

The invariant — each job processes the entire dataset exactly once per epoch,
with fresh random augmentations — is preserved because the union of the
shards is one full permutation of the dataset and batches never outlive the
epoch.

:class:`CoordinatedPrepPlan` builds and validates the shard/batch assignment;
:class:`CoordinatedEpochRunner` executes an epoch of produce/consume against
the staging area (used directly by tests and by the HP-search simulator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.coordl.failure import FailureDetector, RecoveryAction, TimeoutReport
from repro.coordl.staging import StagingArea
from repro.datasets.dataset import SyntheticDataset
from repro.datasets.sampler import verify_epoch_invariant
from repro.exceptions import ConfigurationError, StagingTimeoutError
from repro.prep.pipeline import PrepPipeline


@dataclass(frozen=True)
class BatchAssignment:
    """One minibatch of the coordinated epoch: who preps it, which items."""

    batch_id: int
    producer_job: int
    item_ids: np.ndarray


class CoordinatedPrepPlan:
    """Shard/batch assignment for one epoch of coordinated prep.

    Args:
        dataset: Dataset all jobs train on.
        num_jobs: Concurrent HP-search jobs on the server.
        batch_size: Minibatch size (identical across jobs, as in HP search).
        epoch: Epoch index (drives the permutation).
        seed: Base seed shared by the jobs.
    """

    def __init__(self, dataset: SyntheticDataset, num_jobs: int, batch_size: int,
                 epoch: int = 0, seed: int = 0) -> None:
        if num_jobs <= 0:
            raise ConfigurationError("need at least one job")
        if batch_size <= 0:
            raise ConfigurationError("batch size must be positive")
        self._dataset = dataset
        self._num_jobs = num_jobs
        self._batch_size = batch_size
        self._epoch = epoch
        self._seed = seed
        self._assignments = self._build()

    def _build(self) -> List[BatchAssignment]:
        rng = np.random.default_rng((self._seed, self._epoch, 0xC00D))
        permutation = rng.permutation(len(self._dataset)).astype(np.int64)
        assignments: List[BatchAssignment] = []
        for batch_id, start in enumerate(range(0, len(permutation), self._batch_size)):
            items = permutation[start:start + self._batch_size]
            # Round-robin production across jobs keeps the prep load balanced,
            # matching CoorDL's equal-shard assignment.
            producer = batch_id % self._num_jobs
            assignments.append(BatchAssignment(batch_id, producer, items))
        return assignments

    @property
    def num_jobs(self) -> int:
        """Number of jobs sharing the epoch."""
        return self._num_jobs

    @property
    def batch_size(self) -> int:
        """Minibatch size."""
        return self._batch_size

    @property
    def epoch(self) -> int:
        """Epoch index this plan covers."""
        return self._epoch

    @property
    def assignments(self) -> List[BatchAssignment]:
        """All batch assignments in production order."""
        return list(self._assignments)

    def batches_for_producer(self, job: int) -> List[BatchAssignment]:
        """Batches a given job is responsible for prepping."""
        return [a for a in self._assignments if a.producer_job == job]

    def producer_of(self, batch_id: int) -> int:
        """Which job preps a given batch (used by the failure detector)."""
        return self._assignments[batch_id].producer_job

    def total_batches(self) -> int:
        """Number of minibatches in the epoch."""
        return len(self._assignments)

    def covers_dataset_exactly_once(self) -> bool:
        """Validate the exactly-once-per-epoch invariant of the plan."""
        all_items = np.concatenate([a.item_ids for a in self._assignments])
        return verify_epoch_invariant(all_items, len(self._dataset))

    def unique_item_fetches(self) -> int:
        """Items fetched+prepped across ALL jobs in this epoch.

        Equals ``len(dataset)`` — versus ``num_jobs * len(dataset)`` for
        uncoordinated loaders — which is the source of coordinated prep's
        savings.
        """
        return int(sum(len(a.item_ids) for a in self._assignments))


class CoordinatedEpochRunner:
    """Execute one coordinated epoch: produce into staging, consume per job.

    This is the functional (non-timing) half of coordinated prep: it moves
    batches through the staging area, enforces the exactly-once invariant,
    tracks memory, and exercises the failure detector when producers die.
    The HP-search simulator layers device timing on top.
    """

    def __init__(self, plan: CoordinatedPrepPlan, prep: PrepPipeline,
                 dataset: SyntheticDataset,
                 staging: StagingArea | None = None,
                 failure_detector: FailureDetector | None = None) -> None:
        self._plan = plan
        self._prep = prep
        self._dataset = dataset
        self._staging = staging or StagingArea(plan.num_jobs)
        self._detector = failure_detector
        self._consumed_by_job: Dict[int, List[int]] = {
            j: [] for j in range(plan.num_jobs)}

    @property
    def staging(self) -> StagingArea:
        """The staging area used for the epoch."""
        return self._staging

    @property
    def plan(self) -> CoordinatedPrepPlan:
        """The epoch's shard/batch assignment."""
        return self._plan

    def produce_batch(self, assignment: BatchAssignment, now: float = 0.0) -> None:
        """Prep one assigned batch and stage it."""
        prepared = sum(self._prep.prepared_bytes(self._dataset.item_size(int(i)))
                       for i in assignment.item_ids)
        self._staging.stage(
            batch_id=assignment.batch_id,
            epoch=self._plan.epoch,
            producer_job=assignment.producer_job,
            item_ids=assignment.item_ids,
            prepared_bytes=prepared,
            now=now,
        )

    def consume_batch(self, job: int, batch_id: int, now: float = 0.0,
                      waited_s: float = 0.0) -> bool:
        """Consume a staged batch on behalf of a job.

        Returns True on success.  When the batch is missing and the wait has
        exceeded the timeout, the failure detector (if configured) is
        consulted; a ``RETRY``/``RESPAWN`` outcome returns False so the caller
        can retry after recovery.
        """
        try:
            self._staging.consume(job, batch_id, now=now)
        except StagingTimeoutError:
            if self._detector is None or waited_s < self._detector.timeout_s:
                raise
            action = self._detector.report_timeout(TimeoutReport(
                reporting_job=job,
                missing_batch_id=batch_id,
                suspected_producer=self._plan.producer_of(batch_id),
                reported_at=now,
            ), batch_is_now_staged=self._staging.is_staged(batch_id))
            return action == RecoveryAction.NONE
        self._consumed_by_job[job].append(batch_id)
        return True

    def run_epoch_in_lockstep(self) -> Dict[int, List[int]]:
        """Run the whole epoch with all jobs progressing batch-by-batch.

        Production order is the plan order; each batch is produced by its
        owner and then consumed by every job.  Returns the per-job list of
        consumed batch ids (all identical and covering the epoch).
        """
        for assignment in self._plan.assignments:
            self.produce_batch(assignment)
            for job in range(self._plan.num_jobs):
                self.consume_batch(job, assignment.batch_id)
        return {j: list(v) for j, v in self._consumed_by_job.items()}

    def job_epoch_is_complete(self, job: int) -> bool:
        """Whether a job has consumed every batch of the epoch."""
        return len(self._consumed_by_job[job]) == self._plan.total_batches()
