"""Data-loader abstraction shared by the baselines and CoorDL.

A loader owns the *policy* side of the data pipeline for one training job on
one server: which order items are visited in (sampler), which cache the items
pass through, which prep pipeline and worker pool process them, and which
storage device serves misses.  The simulation engine
(:mod:`repro.sim.engine`) asks the loader for per-batch fetch/prep durations
and drives the pipelined timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cache.base import Cache
from repro.datasets.dataset import SyntheticDataset
from repro.datasets.sampler import BatchSampler
from repro.prep.pipeline import PrepPipeline
from repro.prep.workers import WorkerPool
from repro.storage.device import StorageDevice, dram
from repro.storage.filestore import FileStore
from repro.storage.iostats import IOStats


@dataclass
class BatchFetchResult:
    """Outcome of fetching one minibatch."""

    duration_s: float
    hits: int
    misses: int
    disk_bytes: float
    cache_bytes: float
    remote_bytes: float = 0.0


class DataLoader:
    """Base loader: cache-mediated fetch + CPU/GPU prep over a file store.

    Args:
        dataset: Dataset being trained on.
        store: File store (dataset + storage device) serving cache misses.
        cache: Cache the fetch path goes through.
        batch_sampler: Per-epoch batch order.
        prep: Pre-processing pipeline (cost model).
        workers: CPU worker pool (and GPU offload setting) used for prep.
        num_gpus: GPUs consuming this loader's output (used only to size GPU
            prep offload capacity).
        dram_device: Device model used to charge cache hits.
        sequential_storage: Whether misses are charged at sequential read
            bandwidth (DALI-seq / record files) instead of random-read.
    """

    name = "base"

    def __init__(self, dataset: SyntheticDataset, store: FileStore, cache: Cache,
                 batch_sampler: BatchSampler, prep: PrepPipeline, workers: WorkerPool,
                 num_gpus: int = 1, dram_device: Optional[StorageDevice] = None,
                 sequential_storage: bool = False) -> None:
        self._dataset = dataset
        self._store = store
        self._cache = cache
        self._batch_sampler = batch_sampler
        self._prep = prep
        self._workers = workers
        self._num_gpus = num_gpus
        self._dram = dram_device or dram()
        self._sequential_storage = sequential_storage
        self._io = IOStats()

    # -- accessors ---------------------------------------------------------

    @property
    def dataset(self) -> SyntheticDataset:
        """Dataset being loaded."""
        return self._dataset

    @property
    def cache(self) -> Cache:
        """Cache the fetch path goes through."""
        return self._cache

    @property
    def store(self) -> FileStore:
        """Backing file store."""
        return self._store

    @property
    def batch_sampler(self) -> BatchSampler:
        """Per-epoch batch order."""
        return self._batch_sampler

    @property
    def prep(self) -> PrepPipeline:
        """Pre-processing cost model."""
        return self._prep

    @property
    def workers(self) -> WorkerPool:
        """CPU worker pool used for prep."""
        return self._workers

    @property
    def num_gpus(self) -> int:
        """GPUs consuming this loader's output."""
        return self._num_gpus

    @property
    def io(self) -> IOStats:
        """Cumulative I/O accounting for this loader."""
        return self._io

    def batch_size(self) -> int:
        """Per-iteration batch size."""
        return self._batch_sampler.batch_size

    def batches(self, epoch_index: int) -> List[np.ndarray]:
        """Minibatches (item-id arrays) for one epoch."""
        return self._batch_sampler.epoch(epoch_index)

    # -- fetch / prep ------------------------------------------------------

    def should_admit_on_miss(self, item_id: int) -> bool:
        """Whether a missed item is offered to the cache (policy hook)."""
        return True

    def fetch_batch(self, batch: np.ndarray, at_time: float = 0.0) -> BatchFetchResult:
        """Fetch one minibatch through the cache, charging device times.

        Mutates the cache (recency updates, admissions) and the I/O
        accounting; returns the wall-clock duration of the fetch.
        """
        duration = 0.0
        hits = 0
        misses = 0
        disk_bytes = 0.0
        cache_bytes = 0.0
        for raw_id in batch:
            item_id = int(raw_id)
            size = self._dataset.item_size(item_id)
            if self._cache.lookup(item_id):
                hits += 1
                cache_bytes += size
                duration += self._dram.read_time(size)
                self._io.record_cache(size)
            else:
                misses += 1
                disk_bytes += size
                duration += self._store.read_bytes(
                    size, at_time=at_time + duration,
                    sequential=self._sequential_storage)
                self._io.record_disk(size, at_time=at_time + duration)
                if self.should_admit_on_miss(item_id):
                    self._cache.admit(item_id, size)
        return BatchFetchResult(
            duration_s=duration,
            hits=hits,
            misses=misses,
            disk_bytes=disk_bytes,
            cache_bytes=cache_bytes,
        )

    def batch_time_arrays(self, epoch_index: int) -> Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Vectorised epoch fetch path, when the cache trajectory is analytic.

        Returns ``(fetch_s, cached_fetch_s, prep_s, batch_sizes)`` — one entry
        per minibatch — after applying exactly the side effects the per-batch
        :meth:`fetch_batch` loop would have applied (cache mutations and
        counters, loader and store I/O accounting including the disk
        timeline).  Warm page-cache epochs qualify too: epochs 2+ replay
        the segmented-LRU bulk kernel inside
        :meth:`repro.cache.page_cache.PageCache.bulk_epoch_hits`.  Returns
        ``None``, without side effects, when the epoch must be simulated
        item by item: a subclass customises the fetch policy, the epoch
        revisits an item, or the cache cannot apply the epoch in bulk (see
        :meth:`repro.cache.base.Cache.bulk_epoch_hits`).
        """
        cls = type(self)
        if (cls.fetch_batch is not DataLoader.fetch_batch
                or cls.should_admit_on_miss is not DataLoader.should_admit_on_miss
                or cls.cached_fetch_time is not DataLoader.cached_fetch_time
                or cls.prep_batch_time is not DataLoader.prep_batch_time):
            return None
        plan = self._single_pass_epoch(epoch_index)
        if plan is None:
            return None
        batches, order, sizes = plan
        hits = self._cache.bulk_epoch_hits(order, sizes)
        if hits is None:
            return None

        # Point of no return: the cache has applied its epoch mutations, so
        # everything below is unconditional — a fallback from here on would
        # double-apply counters and disk timelines (see the all-or-nothing
        # contract of Cache.bulk_epoch_hits).
        item_times = np.where(
            hits,
            self._dram.read_times_array(sizes),
            self._store.bulk_read_times(sizes,
                                        sequential=self._sequential_storage))
        clock = np.cumsum(item_times)
        misses = ~hits
        if misses.any():
            miss_sizes = sizes[misses]
            # The store sees each read at its start time, the loader's
            # timeline samples it at completion (as in the per-item path).
            self._store.record_bulk(miss_sizes,
                                    at_times=clock[misses] - item_times[misses])
            self._io.record_disk_bulk(miss_sizes, at_times=clock[misses])
        if hits.any():
            self._io.record_cache_bulk(float(sizes[hits].sum()), int(hits.sum()))
        return self._epoch_arrays(batches, item_times, sizes)

    def _single_pass_epoch(self, epoch_index: int) -> Optional[
            Tuple[List[np.ndarray], np.ndarray, np.ndarray]]:
        """``(batches, order, sizes)`` for a single-pass epoch, else ``None``.

        ``None`` (no side effects) when the epoch is empty or revisits an
        item — then the cache trajectory depends on step-by-step state and
        the caller must fall back to the per-item path.
        """
        batches = self.batches(epoch_index)
        if not batches:
            return None
        order = np.concatenate(batches)
        if order.size and int(np.bincount(order).max()) > 1:
            return None  # an item repeats: cache state matters step by step
        return batches, order, self._dataset.item_sizes(order)

    def _epoch_arrays(self, batches: List[np.ndarray], item_times: np.ndarray,
                      sizes: np.ndarray) -> Tuple[np.ndarray, np.ndarray,
                                                  np.ndarray, np.ndarray]:
        """Reduce per-item fetch times to the per-batch arrays the engine wants."""
        batch_sizes = np.fromiter((len(b) for b in batches), dtype=np.int64,
                                  count=len(batches))
        starts = np.concatenate(([0], np.cumsum(batch_sizes)[:-1]))
        fetch_s = np.add.reduceat(item_times, starts)
        batch_bytes = np.add.reduceat(sizes, starts)
        cached_fetch_s = self._dram.read_times_array(batch_bytes)
        prep_s = np.fromiter(
            (self._workers.prep_time_for_batch(
                self._prep, float(nbytes), int(n),
                num_gpus_for_offload=self._num_gpus)
             for nbytes, n in zip(batch_bytes, batch_sizes)),
            dtype=np.float64, count=len(batches))
        return fetch_s, cached_fetch_s, prep_s, batch_sizes

    def cached_fetch_time(self, batch: np.ndarray) -> float:
        """Fetch duration if every item of the batch were in DRAM.

        Used by the differential stall attribution (DS-Analyzer phase 2).
        """
        total_bytes = self._dataset.items_size(batch)
        return self._dram.read_time(total_bytes)

    def prep_batch_time(self, batch: np.ndarray) -> float:
        """Wall-clock seconds to pre-process one minibatch."""
        total_bytes = float(self._dataset.items_size(batch))
        return self._workers.prep_time_for_batch(
            self._prep, total_bytes, len(batch),
            num_gpus_for_offload=self._num_gpus)

    def prep_rate(self) -> float:
        """Steady-state prep throughput in samples/second."""
        return self._workers.prep_rate(
            self._prep, self._dataset.mean_item_bytes,
            num_gpus_for_offload=self._num_gpus)

    @property
    def uses_gpu_prep(self) -> bool:
        """Whether DALI-style GPU prep offload is active."""
        return self._workers.gpu_offload

    def reset_io(self) -> None:
        """Clear per-epoch I/O accounting."""
        self._io = IOStats()
