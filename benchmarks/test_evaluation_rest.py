"""Benchmarks for Figs. 10, 11, 16, 18 and Tables 5, 6, 7 of the evaluation."""

from __future__ import annotations

import pytest

from repro.experiments import registry
from repro.experiments.base import DEFAULT_SCALE, SWEEP_SCALE


def test_fig10_time_to_accuracy(run_once):
    """Fig. 10: ResNet50/ImageNet-1K reaches 75.9% ~4x sooner with CoorDL."""
    result = run_once(registry.get_experiment("fig10"), scale=SWEEP_SCALE)
    coordl = result.row_for("loader", "coordl")
    dali = result.row_for("loader", "dali")
    assert coordl["epochs_to_target"] == pytest.approx(dali["epochs_to_target"])
    assert 2.0 <= coordl["speedup"] <= 12.0
    assert coordl["time_to_accuracy_hours"] < dali["time_to_accuracy_hours"]


def test_fig11_disk_io_pattern(run_once):
    """Fig. 11: CoorDL reads less from disk and finishes the epoch earlier."""
    result = run_once(registry.get_experiment("fig11"), scale=DEFAULT_SCALE)
    final = result.rows[-1]
    assert final["coordl_disk_gb"] < final["dali_disk_gb"]
    dali_series = result.column("dali_disk_gb")
    assert dali_series == sorted(dali_series)  # cumulative I/O is monotone


def test_tab5_predictor_accuracy(run_once):
    """Table 5: DS-Analyzer's speed predictions track the simulated runs."""
    result = run_once(registry.get_experiment("tab5"), scale=DEFAULT_SCALE)
    assert all(row["error_pct"] <= 20.0 for row in result.rows)
    speeds = result.column("predicted_samples_per_s")
    assert speeds == sorted(speeds)  # more cache, more (predicted) speed


def test_fig16_optimal_cache_size(run_once):
    """Fig. 16: speed saturates once the job stops being IO-bound."""
    result = run_once(registry.get_experiment("fig16"), scale=SWEEP_SCALE)
    assert result.rows[0]["bottleneck"] == "io-bound"
    assert result.rows[-1]["bottleneck"] != "io-bound"
    speeds = result.column("predicted_speed")
    assert speeds[-1] >= speeds[0]


def test_tab6_cache_misses_and_disk_io(run_once):
    """Table 6: CoorDL reduces misses to the capacity minimum (35%)."""
    result = run_once(registry.get_experiment("tab6"), scale=DEFAULT_SCALE)
    misses = {row["loader"]: row["cache_miss_pct"] for row in result.rows}
    disk = {row["loader"]: row["disk_io_gb"] for row in result.rows}
    assert misses["CoorDL"] <= misses["DALI-shuffle"] <= misses["DALI-seq"]
    assert misses["CoorDL"] == pytest.approx(35.0, abs=5.0)
    assert disk["CoorDL"] < disk["DALI-shuffle"] < disk["DALI-seq"]


def test_tab7_hp_search_fully_cached(run_once):
    """Table 7: redundant prep alone costs 1.2-1.9x for light models."""
    result = run_once(registry.get_experiment("tab7"), scale=SWEEP_SCALE)
    speedups = {row["model"]: row["speedup"] for row in result.rows}
    assert speedups["shufflenetv2"] >= speedups["resnet50"]
    assert speedups["alexnet"] >= 1.5
    assert all(s >= 0.99 for s in speedups.values())


def test_fig18_partitioned_cache_scalability(run_once):
    """Fig. 18: CoorDL keeps scaling with more servers and does no disk I/O."""
    result = run_once(registry.get_experiment("fig18"), scale=SWEEP_SCALE)
    coordl_tp = result.column("coordl_throughput")
    assert coordl_tp == sorted(coordl_tp)
    for row in result.rows:
        assert row["coordl_disk_gb_per_server"] <= 1e-6
        assert row["speedup"] >= 2.0
