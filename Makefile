# Development entry points.  Everything runs against the in-tree sources
# (PYTHONPATH=src), so no editable install is required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-workers bench bench-smoke bench-parallel docs-check check

## Tier-1 test suite (must stay green).
test:
	$(PYTHON) -m pytest -x -q tests

## Tier-1 suite with every sweep fanned out over a 2-process worker pool
## (results are byte-identical by contract; this leg proves it end to end).
test-workers:
	REPRO_SWEEP_WORKERS=2 $(PYTHON) -m pytest -x -q tests

## Reproduce the paper's tables/figures and the sweep-speed benchmarks.
bench:
	$(PYTHON) -m pytest -q benchmarks -s

## Quick benchmark smoke: the vectorised-vs-reference sweep speed gates
## (Fig. 3, Fig. 9b, and the warm/thrashing segmented-LRU kernel gate) —
## fast enough to run on every push.  The heavier parallel-vs-serial gate
## lives in bench-parallel (and in full `make bench`).
bench-smoke:
	$(PYTHON) -m pytest -q -s -k "not parallel" \
	    benchmarks/test_sweep_speed.py \
	    benchmarks/test_distributed_sweep_speed.py

## Parallel-vs-serial sweep gate: a 16-point grid through workers=4 must be
## byte-identical to the serial run, and >=2x faster on a >=4-core machine.
bench-parallel:
	$(PYTHON) -m pytest -q -s -k "parallel" benchmarks/test_sweep_speed.py

## Verify every public __all__ symbol (repro, repro.sim, repro.coordl,
## repro.cache) is documented in docs/API.md.
docs-check:
	$(PYTHON) tools/docs_check.py

## Everything the CI gate runs.
check: test docs-check bench-smoke
