"""Epoch-level statistics produced by the simulation drivers.

The central quantity in the paper is the split of each epoch into GPU compute
time, *prep stall* time and *fetch stall* time (Sec. 2).  Stall attribution
follows DS-Analyzer's differential methodology (Sec. 3.2): compare the actual
epoch against the same epoch with all data served from DRAM (isolates fetch
stalls) and against pure GPU ingestion (isolates prep stalls).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.storage.iostats import IOStats
from repro.units import safe_div


@dataclass
class EpochStats:
    """Timing and I/O breakdown of one training epoch for one job/server.

    Attributes:
        epoch_time_s: Wall-clock duration of the epoch.
        gpu_time_s: Time the GPUs would need with a perfect data pipeline
            (DS-Analyzer phase 1).
        prep_limited_time_s: Epoch duration when every item is served from
            DRAM (DS-Analyzer phase 2); the excess over ``gpu_time_s`` is the
            prep stall.  The engine clamps this to the actual epoch duration
            (``min(prep_limited, epoch_time_s)`` in
            :meth:`repro.sim.engine.PipelineSimulator.run_epoch`): pipelining
            noise can make the all-DRAM re-run marginally *slower* than the
            real epoch, and an unclamped value would turn that noise into a
            negative fetch stall.  Invariant: ``gpu_time_s <=
            prep_limited_time_s <= epoch_time_s`` up to float round-off.
        samples: Samples processed this epoch.
        io: Byte/request accounting for the epoch.
        cache_hits / cache_misses: Item-level cache outcome counts.
    """

    epoch_time_s: float
    gpu_time_s: float
    prep_limited_time_s: float
    samples: int
    io: IOStats = field(default_factory=IOStats)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def prep_stall_s(self) -> float:
        """Unmasked time spent waiting on pre-processing."""
        return max(0.0, self.prep_limited_time_s - self.gpu_time_s)

    @property
    def fetch_stall_s(self) -> float:
        """Unmasked time spent waiting on I/O."""
        return max(0.0, self.epoch_time_s - self.prep_limited_time_s)

    @property
    def data_stall_s(self) -> float:
        """Total unmasked data-stall time (fetch + prep)."""
        return self.prep_stall_s + self.fetch_stall_s

    @property
    def prep_stall_fraction(self) -> float:
        """Prep stall as a fraction of the epoch."""
        return safe_div(self.prep_stall_s, self.epoch_time_s)

    @property
    def fetch_stall_fraction(self) -> float:
        """Fetch stall as a fraction of the epoch."""
        return safe_div(self.fetch_stall_s, self.epoch_time_s)

    @property
    def data_stall_fraction(self) -> float:
        """Total data stall as a fraction of the epoch."""
        return safe_div(self.data_stall_s, self.epoch_time_s)

    @property
    def throughput(self) -> float:
        """Training throughput in samples/second."""
        return safe_div(self.samples, self.epoch_time_s)

    @property
    def gpu_utilisation(self) -> float:
        """Fraction of the epoch the GPUs spend computing."""
        return safe_div(self.gpu_time_s, self.epoch_time_s)

    @property
    def cache_hit_ratio(self) -> float:
        """Item-level cache hit ratio for the epoch."""
        total = self.cache_hits + self.cache_misses
        return safe_div(self.cache_hits, total)

    @property
    def cache_miss_ratio(self) -> float:
        """Item-level cache miss ratio for the epoch."""
        total = self.cache_hits + self.cache_misses
        return safe_div(self.cache_misses, total)


@dataclass
class TrainingRunStats:
    """Statistics over a multi-epoch run (warm-up epoch reported separately).

    The paper's methodology (Sec. 3.1) runs three epochs and reports the
    average ignoring the first (cold-cache warm-up); :meth:`steady_state`
    implements that convention.
    """

    epochs: List[EpochStats] = field(default_factory=list)

    def add(self, stats: EpochStats) -> None:
        """Append one epoch's stats."""
        self.epochs.append(stats)

    @property
    def num_epochs(self) -> int:
        """Number of epochs recorded."""
        return len(self.epochs)

    def steady_state(self, skip_first: int = 1) -> List[EpochStats]:
        """Epochs after the warm-up epochs."""
        if len(self.epochs) <= skip_first:
            return list(self.epochs)
        return self.epochs[skip_first:]

    def mean_epoch_time(self, skip_first: int = 1) -> float:
        """Average epoch time over the steady-state epochs."""
        steady = self.steady_state(skip_first)
        if not steady:
            return 0.0
        return sum(e.epoch_time_s for e in steady) / len(steady)

    def mean_throughput(self, skip_first: int = 1) -> float:
        """Average throughput (samples/s) over the steady-state epochs."""
        steady = self.steady_state(skip_first)
        if not steady:
            return 0.0
        return sum(e.throughput for e in steady) / len(steady)

    def steady_epoch(self, skip_first: int = 1) -> EpochStats:
        """A representative steady-state epoch (the last one recorded)."""
        steady = self.steady_state(skip_first)
        return steady[-1] if steady else self.epochs[-1]

    def total_disk_bytes(self) -> float:
        """Disk bytes summed over every recorded epoch."""
        return sum(e.io.disk_bytes for e in self.epochs)

    def disk_timeline(self) -> List[Tuple[float, float]]:
        """Concatenated (time, cumulative disk bytes) samples across epochs.

        Each epoch's timeline is shifted by the end time of the previous
        epoch so the series is monotone in both coordinates (Fig. 11).
        """
        series: List[Tuple[float, float]] = []
        t_offset = 0.0
        bytes_offset = 0.0
        for epoch in self.epochs:
            for t, b in epoch.io.timeline:
                series.append((t_offset + t, bytes_offset + b))
            t_offset += epoch.epoch_time_s
            bytes_offset += epoch.io.disk_bytes
        return series
