"""Content-addressed, on-disk store of sweep results.

Every figure/table in the reproduction is a :class:`~repro.sim.sweep.SweepRunner`
grid, and every grid point is a pure function of its configuration: the
runner spec, the point spec and the result-affecting environment flags
(:meth:`~repro.sim.sweep.SweepRunner.point_spec` renders exactly that
identity).  :class:`SweepStore` memoises those functions on disk — the
serve-many-queries discipline of DS-Analyzer-style what-if tooling — so a
repeated ``report`` run, a re-run of one changed experiment, or a what-if
query over an already-simulated grid reduces to file reads.

Layout: one JSON file per record at ``<dir>/<key[:2]>/<key>.json`` (the
two-hex-character shard keeps directories small for large stores).  Each
entry carries the store schema version, its own key and the record's
fully-invertible snapshot
(:meth:`~repro.sim.sweep.SweepRecord.snapshot` with embedded timelines).
Entries are written atomically (a uniquely-named temp file +
:func:`os.replace`), so a crashed writer can leave a stray temp file but
never a torn entry; any unreadable, mis-keyed, wrong-schema or
wrong-point entry is treated as a miss, deleted, and repaired by the
re-simulation — corruption can cost time, never correctness.

The store is **concurrency-safe** — the contract the serve layer
(:mod:`repro.serve`) builds on:

* entries are *write-once*: a key's content is a pure function of its
  spec, so the first completed writer wins and later writers of the same
  key detect the existing entry and skip (counted as ``redundant_puts``).
  Two racing writers that both miss the existence check still converge —
  each performs an atomic replace of identical bytes;
* temp files are unique per (process, thread, attempt), so concurrent
  writers in one process can never interleave onto a shared temp file;
* session counters are guarded by a lock, and an optional **operation
  trace** (``SweepStore(directory, trace=True)``) records every get/put
  with a digest of the entry bytes it saw — :func:`verify_store_trace`
  replays the trace and checks the write-once read/write consistency
  contract over it (in the spirit of PRAM-consistency trace checking),
  which is how the concurrency tests prove that readers can never observe
  torn or cross-served bytes.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pathlib
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.sim.sweep import SweepPoint, SweepRecord, SweepRunner

#: Environment variable supplying the default store directory of
#: :meth:`repro.sim.sweep.SweepRunner.run` (and therefore of every
#: sweep-backed experiment and the CLI) when no explicit ``store`` is
#: passed.  Unset or empty means "no store".
STORE_ENV_VAR = "REPRO_SWEEP_STORE"

#: Version of the on-disk entry format.  It participates in every content
#: address, so bumping it orphans (never corrupts) all previous entries —
#: a stale-schema entry can simply never be looked up again.
STORE_SCHEMA_VERSION = 1


def store_key(spec: Dict[str, Any]) -> str:
    """Stable BLAKE2 content address of one canonical point spec.

    ``spec`` is :meth:`~repro.sim.sweep.SweepRunner.point_spec` output (or
    anything JSON-stable); the digest covers the spec *and*
    :data:`STORE_SCHEMA_VERSION`, rendered as canonical JSON (sorted keys,
    no whitespace) so dict ordering can never move the address.
    """
    payload = json.dumps({"schema": STORE_SCHEMA_VERSION, "spec": spec},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


@dataclass(frozen=True)
class StoreTraceEvent:
    """One recorded store operation (``SweepStore(..., trace=True)``).

    Attributes:
        seq: Global order the event was recorded in (per store instance).
        op: ``"get"`` or ``"put"``.
        key: Content address the operation targeted.
        outcome: ``"hit"`` / ``"miss"`` / ``"invalid"`` for gets;
            ``"stored"`` / ``"redundant"`` for puts.
        digest: BLAKE2 digest of the entry bytes the operation read or
            wrote (``None`` when nothing was read/written — a plain miss
            or a skipped redundant put).
        thread: ``threading.get_ident()`` of the operating thread.
    """

    seq: int
    op: str
    key: str
    outcome: str
    digest: Optional[str]
    thread: int


def verify_store_trace(events: List[StoreTraceEvent]) -> List[str]:
    """Check a recorded read/write trace against the write-once contract.

    The store's consistency claim reduces to two trace properties (the
    read/write-trace checking discipline of Wei et al.'s PRAM-consistency
    verifier, specialised to write-once registers):

    * **write-once**: every ``stored`` put of one key wrote the same bytes
      (same digest) — concurrent writers may race, but only to identical
      content;
    * **reads serve writes**: every ``hit`` returned bytes that some put
      of that key wrote (or, for keys never written in the trace, the same
      bytes as every other hit of that key — a pre-populated entry).

    Returns a list of human-readable violations; an empty list means the
    trace is consistent.  Torn reads, cross-served keys and lost updates
    all surface as digest mismatches here.
    """
    violations: List[str] = []
    written: Dict[str, Dict[str, int]] = {}
    preexisting: Dict[str, str] = {}
    for event in sorted(events, key=lambda e: e.seq):
        if event.op == "put" and event.outcome == "stored":
            digests = written.setdefault(event.key, {})
            digests.setdefault(event.digest or "", event.seq)
            if len(digests) > 1:
                violations.append(
                    f"write-once violated for {event.key}: puts wrote "
                    f"{len(digests)} distinct contents (seqs {sorted(digests.values())})")
        elif event.op == "get" and event.outcome == "hit":
            digests = written.get(event.key)
            if digests is not None:
                if (event.digest or "") not in digests:
                    violations.append(
                        f"hit at seq {event.seq} for {event.key} returned bytes "
                        f"no put of that key wrote")
            else:
                seen = preexisting.setdefault(event.key, event.digest or "")
                if seen != (event.digest or ""):
                    violations.append(
                        f"hits of never-written key {event.key} disagree "
                        f"(seq {event.seq})")
    return violations


@dataclass
class StoreStats:
    """On-disk footprint plus this-process session counters of one store.

    ``entries``/``total_bytes`` come from a directory scan at call time;
    the session counters count what *this* :class:`SweepStore` instance
    served since construction (the CI store leg asserts a warm run is
    all hits through them).
    """

    directory: str
    entries: int
    total_bytes: int
    hits: int
    misses: int
    puts: int
    invalid: int
    redundant_puts: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON dumps in the CI store leg)."""
        return {
            "directory": self.directory,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "invalid": self.invalid,
            "redundant_puts": self.redundant_puts,
        }


class SweepStore:
    """Content-addressed sweep-record store rooted at one directory.

    Args:
        directory: Store root; created (with parents) if missing.
        trace: Record every get/put as a :class:`StoreTraceEvent` in
            :attr:`trace_events` (with a digest of the bytes involved),
            for :func:`verify_store_trace`-style consistency checking.
            Off by default — tracing holds every event in memory.

    Counters ``hits`` / ``misses`` / ``puts`` / ``invalid`` /
    ``redundant_puts`` accumulate per instance (lock-guarded, so one
    store may be shared across threads — the serve daemon does exactly
    that); ``invalid`` counts entries that existed but could not be
    served (unparsable, truncated, mis-keyed, schema or point mismatch) —
    every invalid get is also a miss; ``redundant_puts`` counts writes
    skipped because a concurrent (or earlier) writer already stored the
    key — write-once semantics.
    """

    def __init__(self, directory: Union[str, os.PathLike],
                 trace: bool = False) -> None:
        self._directory = pathlib.Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._tmp_counter = itertools.count()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.invalid = 0
        self.redundant_puts = 0
        self.trace_events: Optional[List[StoreTraceEvent]] = ([] if trace
                                                              else None)

    def _note(self, op: str, key: str, outcome: str,
              payload: Optional[bytes], **counters: int) -> None:
        """Bump session counters and (when tracing) append one event."""
        with self._lock:
            for name, delta in counters.items():
                setattr(self, name, getattr(self, name) + delta)
            if self.trace_events is not None:
                digest = (hashlib.blake2b(payload, digest_size=16).hexdigest()
                          if payload is not None else None)
                self.trace_events.append(StoreTraceEvent(
                    seq=len(self.trace_events), op=op, key=key,
                    outcome=outcome, digest=digest,
                    thread=threading.get_ident()))

    @property
    def directory(self) -> pathlib.Path:
        """Root directory of the store."""
        return self._directory

    def key_for(self, runner: SweepRunner, point: SweepPoint) -> str:
        """Content address of one point under one runner configuration."""
        return store_key(runner.point_spec(point))

    def entry_path(self, key: str) -> pathlib.Path:
        """On-disk path of one entry (whether or not it exists)."""
        return self._directory / key[:2] / f"{key}.json"

    # -- lookup / insert -----------------------------------------------------

    def get(self, key: str,
            point: Optional[SweepPoint] = None) -> Optional[SweepRecord]:
        """Rehydrated record for ``key``, or ``None`` on any kind of miss.

        A present-but-unusable entry (garbage bytes, truncated JSON, wrong
        embedded key/schema, or — when ``point`` is given — a rehydrated
        record whose point spec does not match the query) counts as
        ``invalid``, is deleted (best-effort) and is reported as a miss;
        the caller re-simulates and :meth:`put` repairs the entry.  The
        deletion matters under write-once puts: it is what re-opens the
        key for the repairing writer.
        """
        path = self.entry_path(key)
        payload: Optional[bytes] = None
        try:
            with open(path, "rb") as handle:
                payload = handle.read()
            entry = json.loads(payload.decode("utf-8"))
            if entry["schema"] != STORE_SCHEMA_VERSION or entry["key"] != key:
                raise ConfigurationError("store entry key/schema mismatch")
            record = SweepRecord.from_snapshot(entry["record"])
            if point is not None and record.point != point:
                raise ConfigurationError("store entry point mismatch")
        except FileNotFoundError:
            self._note("get", key, "miss", None, misses=1)
            return None
        except Exception:
            # Treat every malformed entry as a (counted) miss, never an
            # error: the store is a cache, and re-simulation repairs it.
            # Deleting the bad entry here (racing readers may both try;
            # unlink is idempotent) lets the repairing put() through the
            # write-once existence check.
            try:
                path.unlink()
            except OSError:
                pass
            self._note("get", key, "invalid", payload, invalid=1, misses=1)
            return None
        self._note("get", key, "hit", payload, hits=1)
        return record

    def put(self, key: str, record: SweepRecord) -> pathlib.Path:
        """Persist one record under ``key``; returns its entry path.

        Write-once: if the entry already exists it is left untouched (the
        content of a key is a pure function of its spec, so the first
        completed writer's bytes are every writer's bytes) and the call
        counts as ``redundant``.  Writers that race past the existence
        check each write their own uniquely-named temp file and atomically
        :func:`os.replace` it in — identical bytes either way, and never
        a torn entry.
        """
        path = self.entry_path(key)
        if path.exists():
            self._note("put", key, "redundant", None, redundant_puts=1)
            return path
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": STORE_SCHEMA_VERSION,
            "key": key,
            "record": record.snapshot(include_timeline=True),
        }
        payload = json.dumps(entry, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        with self._lock:
            serial = next(self._tmp_counter)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}"
                             f"-{threading.get_ident()}-{serial}")
        try:
            with open(tmp, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass
        self._note("put", key, "stored", payload, puts=1)
        return path

    # -- management ----------------------------------------------------------

    def _entries(self) -> List[pathlib.Path]:
        """Every entry file in the store (stray temp files excluded)."""
        return sorted(self._directory.glob("??/*.json"))

    def stats(self) -> StoreStats:
        """Scan the directory and combine with the session counters."""
        entries = self._entries()
        total = 0
        for path in entries:
            try:
                total += path.stat().st_size
            except OSError:  # raced with gc/invalidate from another thread
                pass
        return StoreStats(
            directory=str(self._directory),
            entries=len(entries),
            total_bytes=total,
            hits=self.hits,
            misses=self.misses,
            puts=self.puts,
            invalid=self.invalid,
            redundant_puts=self.redundant_puts,
        )

    def gc(self, max_entries: Optional[int] = None,
           max_bytes: Optional[int] = None) -> int:
        """Prune oldest-first (by mtime) until within the given budgets.

        Either budget may be ``None`` (unbounded); with both ``None`` this
        is a no-op.  Returns the number of entries removed.
        """
        if max_entries is not None and max_entries < 0:
            raise ConfigurationError("max_entries must be >= 0")
        if max_bytes is not None and max_bytes < 0:
            raise ConfigurationError("max_bytes must be >= 0")
        stats: List[Tuple[float, int, pathlib.Path]] = []
        for path in self._entries():
            meta = path.stat()
            stats.append((meta.st_mtime, meta.st_size, path))
        stats.sort()  # oldest first
        entries = len(stats)
        total = sum(size for _, size, _ in stats)
        removed = 0
        for _, size, path in stats:
            over_entries = max_entries is not None and entries > max_entries
            over_bytes = max_bytes is not None and total > max_bytes
            if not (over_entries or over_bytes):
                break
            path.unlink(missing_ok=True)
            entries -= 1
            total -= size
            removed += 1
        return removed

    def invalidate(self, prefix: str = "") -> int:
        """Remove every entry whose key starts with ``prefix`` (default: all).

        Returns the number of entries removed.  Invalidation is how a user
        forces re-simulation after changing something the key does not
        cover (the simulator's own code, most importantly).
        """
        removed = 0
        for path in self._entries():
            if path.stem.startswith(prefix):
                path.unlink(missing_ok=True)
                removed += 1
        return removed


#: What :func:`resolve_store` accepts (and, transitively, the ``store=``
#: argument of every sweep-backed ``run``): an open store, a directory
#: path, ``None`` for the environment default, ``False`` to disable.
StoreArg = Union["SweepStore", str, os.PathLike, None, bool]


def resolve_store(store: StoreArg) -> Optional[SweepStore]:
    """Normalise a user-facing ``store=`` argument to an open store.

    * :class:`SweepStore` — returned as-is;
    * a path — opened (created if missing);
    * ``None`` — the :data:`STORE_ENV_VAR` environment default (no store
      when unset/empty);
    * ``False`` — explicitly no store, even when the variable is set.
    """
    if isinstance(store, SweepStore):
        return store
    if store is None:
        env = os.environ.get(STORE_ENV_VAR, "").strip()
        return SweepStore(env) if env else None
    if store is False:
        return None
    if isinstance(store, (str, os.PathLike)):
        return SweepStore(store)
    raise ConfigurationError(
        f"store must be a SweepStore, a path, None or False, "
        f"not {type(store).__name__}")
