"""Scenario-level tests for :mod:`repro.sim.failures` and the failure
sweep-point kinds.

Three properties from the determinism contract are pinned with hypothesis:

* **crash-schedule permutation invariance** — any ordering of the same
  ``(epoch, job)`` pairs yields a bit-identical scenario (and the same
  sweep point / store key);
* **detector-state-machine legality** — over random report sequences the
  driver never reassigns to a dead or crashed job, never revives a dead
  one, and appends exactly one event per confirmed failure;
* **elastic ≡ static when the schedule is empty** — an empty membership
  schedule (and a no-op schedule entry) reproduce the static-membership
  epochs bit for bit, cross-checked against the independent straggler
  path with uniform factors.

Plus direct coverage of the four kinds through :class:`SweepRunner`:
serial ≡ workers=N byte-identity and snapshot round-trips.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compute.model_zoo import RESNET18
from repro.coordl.failure import (
    FailureDetector,
    JobState,
    RecoveryAction,
    TimeoutReport,
)
from repro.exceptions import ConfigurationError
from repro.sim.failures import FailureScenario
from repro.sim.sweep import SweepPoint, SweepRunner

SCALE = 1.0 / 400.0


def _epoch_tuples(result):
    """Bit-exact comparable form of a scenario result's epochs."""
    return [(e.epoch_time_s, e.disk_bytes, e.remote_bytes, e.rewarm_bytes,
             e.stall_s, e.cache_miss_ratio, e.active) for e in result.epochs]


def _event_tuples(result):
    return [(e.kind, e.failed_job, e.detected_at, e.reassigned_to,
             e.missing_batch_id) for e in result.events]


@pytest.fixture(scope="module")
def scenario():
    from repro.cluster.configs import config_ssd_v100
    runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
    dataset = runner.dataset("openimages")
    server = config_ssd_v100()
    return FailureScenario(RESNET18, dataset, server, seed=17)


@pytest.fixture(scope="module")
def spec_runner():
    from repro.cluster.configs import config_ssd_v100
    return SweepRunner(config_ssd_v100, scale=SCALE, seed=0)


# -- property 1: crash-schedule permutation invariance ----------------------

class TestCrashPermutationInvariance:
    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_any_schedule_ordering_is_bit_identical(self, scenario, data):
        schedule = data.draw(st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 3)),
            min_size=1, max_size=3, unique_by=lambda pair: pair[1]))
        permuted = data.draw(st.permutations(schedule))
        baseline = scenario.run_crash(4, schedule, num_epochs=3)
        shuffled = scenario.run_crash(4, permuted, num_epochs=3)
        assert _epoch_tuples(baseline) == _epoch_tuples(shuffled)
        assert _event_tuples(baseline) == _event_tuples(shuffled)

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_permuted_schedules_are_the_same_sweep_point(self, spec_runner,
                                                         data):
        schedule = data.draw(st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 5)),
            min_size=1, max_size=4, unique_by=lambda pair: pair[1]))
        permuted = data.draw(st.permutations(schedule))
        make = lambda sched: SweepPoint(
            model=RESNET18, loader="coordl-crash", dataset="openimages",
            cache_fraction=0.5, num_epochs=4, num_jobs=6,
            crash_schedule=tuple(sched))
        assert make(schedule) == make(permuted)
        assert (spec_runner.point_spec(make(schedule))
                == spec_runner.point_spec(make(permuted)))


# -- property 2: detector state-machine legality ----------------------------

class TestDetectorLegality:
    @given(seed=st.integers(0, 2**16),
           ops=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 2)),
                        min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_random_report_sequences_keep_the_invariants(self, seed, ops):
        """ops: (job, action) with action 0=healthy report, 1=crash+report,
        2=stale report.  At every step: a RESPAWN's replacement is alive and
        not the victim, dead jobs stay dead, one event per confirmed crash."""
        crashed: set = set()
        detector = FailureDetector(6, 1.0, seed=seed,
                                   liveness_probe=lambda j: j not in crashed)
        confirmed = 0
        for step, (job, op) in enumerate(ops):
            if len(crashed) >= 5 and op == 1:
                op = 0  # keep at least one survivor
            if op == 1:
                crashed.add(job)
            was_dead = detector.state(job) is JobState.DEAD
            report = TimeoutReport(reporting_job=0, missing_batch_id=step,
                                   suspected_producer=job,
                                   reported_at=float(step))
            if job in crashed and op != 2:
                action = detector.report_timeout(report)
                assert action is RecoveryAction.RESPAWN
                if not was_dead:
                    confirmed += 1
                event = detector.events[-1]
                assert event.failed_job == job
                assert event.reassigned_to != job
                assert event.reassigned_to in detector.alive_jobs()
                assert detector.state(job) is JobState.DEAD
            elif op == 2:
                assert detector.report_timeout(
                    report, batch_is_now_staged=True) is RecoveryAction.NONE
            else:
                action = detector.report_timeout(report)
                assert action is RecoveryAction.RETRY
                assert detector.state(job) is JobState.RUNNING
            # Dead jobs never come back.
            assert crashed == {j for j in range(6)
                               if detector.state(j) is JobState.DEAD}
        assert len(detector.reports) == len(ops)
        # Exactly one event per job transition to DEAD via a report (repeat
        # reports about an already-dead producer re-emit a reassignment, so
        # the trace can only grow).
        assert len(detector.events) >= confirmed


# -- property 3: elastic ≡ static under an empty schedule -------------------

class TestElasticStaticEquivalence:
    @given(num_servers=st.integers(2, 4), num_epochs=st.integers(1, 4))
    @settings(max_examples=8, deadline=None)
    def test_empty_schedule_is_the_static_run(self, scenario, num_servers,
                                              num_epochs):
        static = scenario.run_static(num_servers, num_epochs)
        elastic = scenario.run_elastic(num_servers, (), num_epochs)
        assert _epoch_tuples(static) == _epoch_tuples(elastic)
        assert static.events == [] and elastic.events == []
        # Cross-check against the *independent* straggler epoch path with
        # uniform factors — two code paths, one bit-exact answer.
        uniform = scenario.run_straggler(num_servers, (), num_epochs)
        assert _epoch_tuples(static) == _epoch_tuples(uniform)

    def test_noop_membership_entry_changes_nothing(self, scenario):
        static = scenario.run_static(3, 3)
        noop = scenario.run_elastic(3, ((1, 3),), 3)
        assert _epoch_tuples(static) == _epoch_tuples(noop)
        assert noop.events == []


# -- the four kinds through the sweep runner --------------------------------

def _failure_points():
    return [
        SweepPoint(model=RESNET18, loader="coordl-crash", dataset="openimages",
                   cache_fraction=0.65, num_epochs=3, num_jobs=4,
                   crash_schedule=((1, 1),)),
        SweepPoint(model=RESNET18, loader="coordl-elastic",
                   dataset="openimages", cache_fraction=0.5, num_epochs=3,
                   num_servers=2, membership_schedule=((1, 3),)),
        SweepPoint(model=RESNET18, loader="coordl-straggler",
                   dataset="openimages", cache_fraction=0.5, num_epochs=2,
                   num_servers=2, straggler_factors=(3.0,)),
        SweepPoint(model=RESNET18, loader="hp-multitenant",
                   dataset="openimages", cache_fraction=0.65, num_epochs=2,
                   num_jobs=2, tenants=3),
    ]


class TestFailureSweepPoints:
    def test_serial_equals_parallel_byte_identical(self):
        from repro.cluster.configs import config_ssd_v100
        points = _failure_points()
        serial = SweepRunner(config_ssd_v100, scale=SCALE, seed=0).run(points)
        for workers in (1, 4):
            fanned = SweepRunner(config_ssd_v100, scale=SCALE, seed=0).run(
                points, workers=workers)
            assert serial.snapshot() == fanned.snapshot()

    def test_snapshot_round_trips_with_trace(self):
        from repro.cluster.configs import config_ssd_v100
        from repro.sim.sweep import SweepRecord
        result = SweepRunner(config_ssd_v100, scale=SCALE, seed=0).run(
            _failure_points())
        for record in result.records:
            snap = record.snapshot(include_timeline=True)
            again = SweepRecord.from_snapshot(snap)
            assert again.snapshot(include_timeline=True) == snap
            assert again.failure is not None
        crash = result.one(loader="coordl-crash")
        assert [e.kind for e in crash.failure.events] == ["crash"]
        elastic = result.one(loader="coordl-elastic")
        assert [e.kind for e in elastic.failure.events] == ["join"]

    def test_wire_lists_normalise_back_to_tuples(self):
        """A JSON round-trip turns the schedule tuples into lists; the
        point's __post_init__ must normalise them back so wire points and
        native points are the same point (same store key)."""
        native = _failure_points()[0]
        wire = SweepPoint(model=RESNET18, loader="coordl-crash",
                          dataset="openimages", cache_fraction=0.65,
                          num_epochs=3, num_jobs=4,
                          crash_schedule=[[1, 1]])  # type: ignore[arg-type]
        assert wire == native
        from repro.cluster.configs import config_ssd_v100
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        assert runner.point_spec(wire) == runner.point_spec(native)

    def test_validation_rejects_malformed_failure_points(self):
        common = dict(model=RESNET18, dataset="openimages",
                      cache_fraction=0.5, num_epochs=3)
        with pytest.raises(ConfigurationError):
            SweepPoint(loader="coordl-crash", num_jobs=2,
                       crash_schedule=((0, 5),), **common)  # job out of range
        with pytest.raises(ConfigurationError):
            SweepPoint(loader="coordl-crash", num_jobs=2,
                       crash_schedule=((0, 0), (1, 1)), **common)  # no survivor
        with pytest.raises(ConfigurationError):
            SweepPoint(loader="coordl-elastic", num_servers=2,
                       membership_schedule=((0, 3),), **common)  # epoch 0
        with pytest.raises(ConfigurationError):
            SweepPoint(loader="coordl-straggler", num_servers=2,
                       straggler_factors=(1.0, 2.0, 3.0), **common)  # too many
        with pytest.raises(ConfigurationError):
            SweepPoint(loader="hp-multitenant", num_jobs=2, tenants=0,
                       **common)
        with pytest.raises(ConfigurationError):
            SweepPoint(loader="coordl", crash_schedule=((1, 0),),
                       **common)  # failure-only field on a training kind
