"""Figure 11 — disk-I/O pattern over an epoch: DALI vs CoorDL (ResNet18).

With the page cache, DALI sees a burst of hits at the start of every epoch
(the most-recently-written pages are still resident) and then degenerates to
continuous storage reads; MinIO's hits are spread uniformly across the epoch
because membership in the cache is static, so the I/O timeline is a straight,
shallower line and the epoch ends earlier.  This experiment reproduces the
cumulative disk-bytes timeline of a steady-state epoch for both loaders.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import RESNET18
from repro.experiments.base import DEFAULT_SCALE, ExperimentResult, scaled_dataset
from repro.sim.single_server import SingleServerTraining


def _bucketed_timeline(timeline: List[Tuple[float, float]], epoch_time: float,
                       buckets: int) -> List[float]:
    """Cumulative disk bytes sampled at evenly spaced fractions of the epoch."""
    samples = []
    for b in range(1, buckets + 1):
        t_limit = epoch_time * b / buckets
        value = 0.0
        for t, cumulative in timeline:
            if t <= t_limit:
                value = cumulative
            else:
                break
        samples.append(value)
    return samples


def run(scale: float = DEFAULT_SCALE, cache_fraction: float = 0.65,
        dataset_name: str = "openimages", buckets: int = 10,
        seed: int = 0) -> ExperimentResult:
    """Reproduce the cumulative disk-I/O timeline of Fig. 11."""
    dataset = scaled_dataset(dataset_name, scale, seed)
    server = config_ssd_v100(cache_bytes=dataset.total_bytes * cache_fraction)
    training = SingleServerTraining(RESNET18, dataset, server, num_epochs=2)
    dali = training.run("dali-shuffle", seed=seed).run.steady_epoch()
    coordl = training.run("coordl", seed=seed).run.steady_epoch()

    horizon = max(dali.epoch_time_s, coordl.epoch_time_s)
    dali_series = _bucketed_timeline(dali.io.timeline, horizon, buckets)
    coordl_series = _bucketed_timeline(coordl.io.timeline, horizon, buckets)

    result = ExperimentResult(
        experiment_id="fig11",
        title="Fig. 11 — cumulative disk I/O over an epoch: DALI vs CoorDL "
              "(ResNet18/OpenImages)",
        columns=["epoch_fraction", "dali_disk_gb", "coordl_disk_gb"],
        notes=[f"DALI epoch {dali.epoch_time_s:.1f}s vs CoorDL {coordl.epoch_time_s:.1f}s "
               "(scaled dataset)",
               "paper: DALI hits early then goes disk-bound; CoorDL's I/O is uniform "
               "and the epoch ends earlier"],
    )
    for b in range(buckets):
        result.add_row(
            epoch_fraction=(b + 1) / buckets,
            dali_disk_gb=dali_series[b] / 1e9,
            coordl_disk_gb=coordl_series[b] / 1e9,
        )
    return result
