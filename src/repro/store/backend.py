"""Pluggable storage backends for the content-addressed sweep store.

:class:`~repro.store.SweepStore` is split storage-engine style into a
*frontend* (counters, tracing, rehydration and the point guard — policy
that must not drift between backends) and a :class:`StoreBackend` that
owns the bytes.  Two backends implement the contract:

* :class:`JsonDirBackend` — one JSON file per entry at
  ``<dir>/<key[:2]>/<key>.json``, byte-for-byte compatible with every
  store directory written before backends existed.  Ideal for small
  stores, ``diff``-able by hand, and the format the golden corruption
  tests pin.
* :class:`SqliteBackend` — one WAL-mode SQLite database holding an
  *index* (key, point label, runner-spec digest, schema version,
  created-at timestamp, payload size, codec) next to *packed payloads*
  (the record snapshot as canonical JSON, zstd-compressed when a module
  provides it — stdlib ``compression.zstd`` on Python 3.14+, else the
  ``zstandard`` package — zlib otherwise; ``REPRO_STORE_CODEC`` forces a
  choice, validated loudly at construction).  Reads go by each entry's
  recorded codec column, so old zlib entries keep serving whatever new
  puts use, and ``repro store migrate`` round-trips record bytes
  identically between codecs.  The index/payload split is the classic
  storage-engine move: ``stats`` / ``gc`` / ``invalidate`` become SQL
  queries instead of directory scans (``gc`` also checkpoints the WAL
  and ``VACUUM``\\ s so the file really shrinks), the write-once check is
  a single ``INSERT .. ON CONFLICT DO NOTHING``, and a hit never parses
  the JSON wrapper — schema and key come from the index, only the record
  snapshot itself is decoded.  The ``runner_digest`` index answers
  by-runner analytics (:meth:`~StoreBackend.stats_by_runner`) without
  touching payloads.

Pragma discipline (per the SQLite idioms in SNIPPETS.md):
``journal_mode=WAL`` (readers never block behind writers — the serve
daemon's concurrent reader threads are real, not serialised),
``synchronous=NORMAL`` (safe with WAL; no per-commit fsync),
``busy_timeout=30000`` (writers queue instead of erroring), timestamps
as ISO-8601 UTC text.  Connections are per-thread (``sqlite3`` objects
are not thread-safe; thread-local connections under WAL is what makes
the concurrency contract hold).

Both backends speak the same exchange types: ``get`` returns the record
snapshot dict *plus* the exact stored bytes (file bytes / packed blob) so
the frontend's operation trace digests what was physically read, and
``put`` returns the stored bytes (or ``None`` for a write-once-redundant
put) so put/get digests of one entry always agree —
:func:`~repro.store.verify_store_trace` depends on exactly that.
Unusable entries raise :class:`EntryInvalid` carrying the bytes that
were read; the frontend deletes, counts and re-simulates.
"""

from __future__ import annotations

import abc
import json
import os
import pathlib
import sqlite3
import threading
import zlib
from datetime import datetime, timezone
from typing import Any, Callable, ClassVar, Dict, List, NamedTuple, Optional, \
    Tuple, Union

from repro.exceptions import ConfigurationError

try:  # optional: packed payloads use zstd when a module provides it
    import zstandard  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - depends on the environment
    zstandard = None

#: Version of the on-disk entry format.  It participates in every content
#: address (see :func:`repro.store.store_key`), so bumping it orphans
#: (never corrupts) all previous entries — a stale-schema entry can
#: simply never be looked up again.
STORE_SCHEMA_VERSION = 1

#: Environment variable forcing the SQLite backend's payload codec
#: (``zlib`` or ``zstd``).  Unset means "the best available": zstd when a
#: module provides it, zlib otherwise.  Codecs only affect how *new*
#: entries are packed — reads always go by each entry's recorded codec
#: column, so stores mixing both codecs (e.g. after an interpreter
#: upgrade) keep serving every entry.
STORE_CODEC_ENV_VAR = "REPRO_STORE_CODEC"

#: Payload codecs the SQLite backend can write.
STORE_CODECS = ("zlib", "zstd")


def _zstd_functions() -> Optional[Tuple[Callable[[bytes], bytes],
                                        Callable[[bytes], bytes]]]:
    """``(compress, decompress)`` for zstd, or ``None`` when unavailable.

    Prefers the stdlib module (``compression.zstd``, Python 3.14+), falls
    back to the third-party ``zstandard`` package; both produce standard
    zstd frames, so entries written through either read back through the
    other.
    """
    try:  # pragma: no cover - stdlib module needs Python >= 3.14
        from compression import zstd  # type: ignore[import-not-found]

        return zstd.compress, zstd.decompress
    except ImportError:
        pass
    if zstandard is not None:
        return (lambda data: zstandard.ZstdCompressor().compress(data),
                lambda blob: zstandard.ZstdDecompressor().decompress(blob))
    return None


def default_codec() -> str:
    """The codec new SQLite entries get when none is forced."""
    return "zstd" if _zstd_functions() is not None else "zlib"


def resolve_codec(codec: Optional[str] = None) -> str:
    """Validate a codec choice (explicit arg, else the environment).

    Raises :class:`~repro.exceptions.ConfigurationError` for unknown
    codecs and for ``zstd`` when no module provides it — loudly at
    *backend construction* time, never from inside ``put`` where the
    store's degradation ladder would silently absorb it.
    """
    if codec is None:
        codec = os.environ.get(STORE_CODEC_ENV_VAR, "").strip() or None
    if codec is None:
        return default_codec()
    if codec not in STORE_CODECS:
        raise ConfigurationError(
            f"unknown store codec {codec!r}: pick one of {STORE_CODECS} "
            f"(${STORE_CODEC_ENV_VAR} or the codec= argument)")
    if codec == "zstd" and _zstd_functions() is None:
        raise ConfigurationError(
            "store codec 'zstd' requested but no module provides it "
            "(needs the stdlib compression.zstd, Python 3.14+, or the "
            "zstandard package); unset the override to fall back to zlib")
    return codec


class RunnerStats(NamedTuple):
    """One ``stats --by-runner`` row: a runner spec's share of the store."""

    runner_digest: str
    entries: int
    payload_bytes: int


class EntryInvalid(Exception):
    """An entry exists but cannot be served (truncated, garbage, stale).

    ``payload`` carries whatever bytes were physically read, so the
    frontend's operation trace can record a digest of what the failed
    read actually saw (corrupted reads must appear as ``invalid`` — never
    ``hit`` — events for the trace contract to mean anything).
    """

    def __init__(self, message: str, payload: Optional[bytes] = None) -> None:
        super().__init__(message)
        self.payload = payload


class StoreBackend(abc.ABC):
    """Storage contract behind :class:`~repro.store.SweepStore`.

    Backends store *record snapshots* (the fully-invertible
    ``SweepRecord.snapshot(include_timeline=True)`` dict) under hex
    content addresses, enforce write-once puts, and answer the management
    queries (``entries`` / ``stats`` / ``gc`` / ``invalidate``) from
    whatever index they keep.  Session counters, tracing, rehydration and
    point validation live in the frontend and are identical across
    backends.
    """

    #: Short backend name (``"json"`` / ``"sqlite"``) surfaced in
    #: :class:`~repro.store.StoreStats`, ``/v1/stats`` and the CLI.
    kind: ClassVar[str] = "abstract"

    @property
    @abc.abstractmethod
    def path(self) -> pathlib.Path:
        """Filesystem root of the backend (directory or database file)."""

    @abc.abstractmethod
    def entry_path(self, key: str) -> pathlib.Path:
        """The file holding ``key``'s bytes (the db file for SQLite)."""

    @abc.abstractmethod
    def get(self, key: str) -> Optional[Tuple[Dict[str, Any], bytes]]:
        """``(record snapshot, stored bytes)`` or ``None`` on a clean miss.

        Raises:
            EntryInvalid: The entry exists but is unusable (unparsable,
                truncated, mis-keyed or wrong-schema); carries the bytes
                that were read.
        """

    @abc.abstractmethod
    def put(self, key: str, snapshot: Dict[str, Any], *, label: str = "",
            runner_digest: str = "") -> Optional[bytes]:
        """Store ``snapshot`` under ``key`` unless it already exists.

        Returns the exact stored bytes, or ``None`` when the entry was
        already present (a write-once *redundant* put).  ``label`` and
        ``runner_digest`` are index metadata (ignored by backends without
        an index).
        """

    @abc.abstractmethod
    def delete(self, key: str) -> None:
        """Best-effort removal of one entry (idempotent, never raises)."""

    @abc.abstractmethod
    def entries(self) -> List[str]:
        """Every stored key, sorted."""

    @abc.abstractmethod
    def stats(self) -> Tuple[int, int, int]:
        """``(entries, payload_bytes, disk_bytes)`` in one pass.

        ``payload_bytes`` is the stored entry bytes; ``disk_bytes`` the
        physical footprint (equal for the JSON backend; db + WAL + shm
        for SQLite).
        """

    @abc.abstractmethod
    def gc(self, max_entries: Optional[int],
           max_bytes: Optional[int]) -> int:
        """Prune oldest-first until within the budgets; return removals."""

    @abc.abstractmethod
    def invalidate(self, prefix: str) -> int:
        """Remove every key starting with ``prefix``; return removals."""

    def stats_by_runner(self) -> List[RunnerStats]:
        """Entries/bytes grouped by runner-spec digest, biggest first.

        Only backends that keep a runner index can answer this; the base
        implementation refuses loudly instead of scanning payloads.
        """
        raise ConfigurationError(
            f"the {self.kind} backend keeps no runner index; use a "
            f"sqlite:// store for by-runner analytics")

    def close(self) -> None:
        """Release backend resources (connections); idempotent."""


class JsonDirBackend(StoreBackend):
    """Directory-of-JSON backend: the store's original on-disk format.

    One file per entry at ``<dir>/<key[:2]>/<key>.json`` (the two-hex
    shard keeps directories small), each carrying the wrapper
    ``{"schema", "key", "record"}`` as canonical JSON — byte-for-byte
    what :class:`~repro.store.SweepStore` wrote before backends existed,
    so every pre-existing store directory keeps serving.  Writes are
    atomic (uniquely-named temp file + :func:`os.replace`), the
    write-once check is file existence, and the management queries scan
    the directory once per call with :func:`os.scandir` (one traversal
    collecting name, size and mtime together — not a glob plus a
    ``stat`` per file per field).
    """

    kind = "json"

    def __init__(self, directory: Union[str, os.PathLike]) -> None:
        self._directory = pathlib.Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._tmp_serial = 0

    @property
    def path(self) -> pathlib.Path:
        return self._directory

    def entry_path(self, key: str) -> pathlib.Path:
        return self._directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Tuple[Dict[str, Any], bytes]]:
        try:
            with open(self.entry_path(key), "rb") as handle:
                payload = handle.read()
        except FileNotFoundError:
            return None
        try:
            entry = json.loads(payload.decode("utf-8"))
            if entry["schema"] != STORE_SCHEMA_VERSION or entry["key"] != key:
                raise ValueError("store entry key/schema mismatch")
            snapshot = entry["record"]
            if not isinstance(snapshot, dict):
                raise ValueError("store entry record is not an object")
        except Exception as exc:
            raise EntryInvalid(str(exc), payload) from exc
        return snapshot, payload

    def put(self, key: str, snapshot: Dict[str, Any], *, label: str = "",
            runner_digest: str = "") -> Optional[bytes]:
        # label / runner_digest are index metadata; this layout's only
        # index is the filesystem, so they are intentionally unused.
        path = self.entry_path(key)
        if path.exists():
            return None
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": STORE_SCHEMA_VERSION,
            "key": key,
            "record": snapshot,
        }
        payload = json.dumps(entry, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        with self._lock:
            serial = self._tmp_serial
            self._tmp_serial += 1
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}"
                             f"-{threading.get_ident()}-{serial}")
        try:
            with open(tmp, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass
        return payload

    def delete(self, key: str) -> None:
        try:
            self.entry_path(key).unlink()
        except OSError:
            pass

    def _scan(self) -> List[Tuple[float, int, pathlib.Path]]:
        """One directory traversal: (mtime, size, path) per entry file."""
        found: List[Tuple[float, int, pathlib.Path]] = []
        try:
            shards = [d for d in os.scandir(self._directory)
                      if d.is_dir() and len(d.name) == 2]
        except OSError:
            return found
        for shard in shards:
            try:
                candidates = list(os.scandir(shard.path))
            except OSError:  # raced with gc/invalidate
                continue
            for item in candidates:
                if not item.name.endswith(".json"):
                    continue
                try:
                    meta = item.stat()
                except OSError:
                    continue
                found.append((meta.st_mtime, meta.st_size,
                              pathlib.Path(item.path)))
        return found

    def entries(self) -> List[str]:
        return sorted(path.stem for _, _, path in self._scan())

    def stats(self) -> Tuple[int, int, int]:
        scan = self._scan()
        total = sum(size for _, size, _ in scan)
        return len(scan), total, total

    def gc(self, max_entries: Optional[int],
           max_bytes: Optional[int]) -> int:
        scan = sorted(self._scan())  # oldest first (mtime, size, path)
        entries = len(scan)
        total = sum(size for _, size, _ in scan)
        removed = 0
        for _, size, path in scan:
            over_entries = max_entries is not None and entries > max_entries
            over_bytes = max_bytes is not None and total > max_bytes
            if not (over_entries or over_bytes):
                break
            path.unlink(missing_ok=True)
            entries -= 1
            total -= size
            removed += 1
        return removed

    def invalidate(self, prefix: str) -> int:
        removed = 0
        for _, _, path in self._scan():
            if path.stem.startswith(prefix):
                path.unlink(missing_ok=True)
                removed += 1
        return removed


def _pack(data: bytes, codec: str) -> bytes:
    """Compress one payload with a codec :func:`resolve_codec` validated."""
    if codec == "zstd":
        functions = _zstd_functions()
        if functions is None:  # validated at construction; belt-and-braces
            raise ValueError("zstd codec configured but unavailable")
        return functions[0](data)
    return zlib.compress(data, 6)


def _unpack(codec: str, blob: bytes) -> bytes:
    """Invert :func:`_pack` by each entry's *recorded* codec name —
    old zlib entries stay readable whatever codec new puts use."""
    if codec == "zlib":
        return zlib.decompress(blob)
    if codec == "zstd":
        functions = _zstd_functions()
        if functions is None:
            raise ValueError("entry packed with zstd but no module "
                             "provides it (compression.zstd / zstandard)")
        return functions[1](blob)
    raise ValueError(f"unknown payload codec {codec!r}")


class SqliteBackend(StoreBackend):
    """Single-file WAL-mode SQLite backend: SQL index, packed payloads.

    The ``entries`` table is the index — key (primary key), point label,
    runner-spec digest, schema version, ISO-8601 UTC created-at, payload
    size and codec — and the payload column holds the record snapshot as
    compressed canonical JSON.  Management queries never touch payloads;
    a hit validates schema/key from the index (no wrapper parse) and
    decodes only the snapshot itself; the write-once contract is one
    atomic ``INSERT .. ON CONFLICT(key) DO NOTHING`` (strictly stronger
    than the JSON backend's existence check — racing writers cannot both
    store).  ``rowid`` order is insertion order, which is what ``gc``
    prunes oldest-first by.
    """

    kind = "sqlite"

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS entries (
        key            TEXT PRIMARY KEY,
        label          TEXT NOT NULL DEFAULT '',
        runner_digest  TEXT NOT NULL DEFAULT '',
        schema_version INTEGER NOT NULL,
        created_at     TEXT NOT NULL,
        payload_size   INTEGER NOT NULL,
        codec          TEXT NOT NULL,
        payload        BLOB NOT NULL
    )
    """

    def __init__(self, database: Union[str, os.PathLike],
                 codec: Optional[str] = None) -> None:
        self._db_path = pathlib.Path(database)
        if self._db_path.parent != pathlib.Path(""):
            self._db_path.parent.mkdir(parents=True, exist_ok=True)
        # Codec misconfiguration must surface here, not inside put() —
        # the frontend's degradation ladder treats put exceptions as
        # storage trouble and would silently flip the store read-only.
        self._codec = resolve_codec(codec)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._connections: List[sqlite3.Connection] = []
        self._generation = 0
        self._connect()  # create the schema eagerly, fail fast on bad paths

    @property
    def codec(self) -> str:
        """Codec new entries are packed with (reads follow each entry)."""
        return self._codec

    @property
    def path(self) -> pathlib.Path:
        return self._db_path

    def entry_path(self, key: str) -> pathlib.Path:
        return self._db_path

    def _connect(self) -> sqlite3.Connection:
        state = getattr(self._local, "state", None)
        if state is not None and state[0] == self._generation:
            return state[1]
        # Autocommit (isolation_level=None): every statement is its own
        # transaction, so the write-once INSERT and the management DELETEs
        # are each atomic without explicit BEGIN/COMMIT bookkeeping.
        con = sqlite3.connect(str(self._db_path), timeout=30.0,
                              isolation_level=None)
        con.execute("PRAGMA journal_mode=WAL")
        con.execute("PRAGMA synchronous=NORMAL")
        con.execute("PRAGMA busy_timeout=30000")
        con.execute(self._SCHEMA)
        # Backs the by-runner analytics: GROUP BY runner_digest is a pure
        # index scan, no payload is ever unpacked to answer it.
        con.execute("CREATE INDEX IF NOT EXISTS entries_runner_digest"
                    " ON entries(runner_digest)")
        with self._lock:
            generation = self._generation
            self._connections.append(con)
        self._local.state = (generation, con)
        return con

    def get(self, key: str) -> Optional[Tuple[Dict[str, Any], bytes]]:
        row = self._connect().execute(
            "SELECT schema_version, codec, payload FROM entries "
            "WHERE key = ?", (key,)).fetchone()
        if row is None:
            return None
        schema_version, codec, blob = row
        blob = bytes(blob)
        if schema_version != STORE_SCHEMA_VERSION:
            raise EntryInvalid("store entry schema mismatch", blob)
        try:
            snapshot = json.loads(_unpack(codec, blob).decode("utf-8"))
            if not isinstance(snapshot, dict):
                raise ValueError("store entry record is not an object")
        except Exception as exc:
            raise EntryInvalid(str(exc), blob) from exc
        return snapshot, blob

    def put(self, key: str, snapshot: Dict[str, Any], *, label: str = "",
            runner_digest: str = "") -> Optional[bytes]:
        data = json.dumps(snapshot, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        codec = self._codec
        blob = _pack(data, codec)
        created = datetime.now(timezone.utc).isoformat(timespec="seconds")
        cursor = self._connect().execute(
            "INSERT INTO entries (key, label, runner_digest, schema_version,"
            " created_at, payload_size, codec, payload)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?)"
            " ON CONFLICT(key) DO NOTHING",
            (key, label, runner_digest, STORE_SCHEMA_VERSION, created,
             len(blob), codec, blob))
        return blob if cursor.rowcount else None

    def delete(self, key: str) -> None:
        try:
            self._connect().execute("DELETE FROM entries WHERE key = ?",
                                    (key,))
        except sqlite3.Error:
            pass

    def entries(self) -> List[str]:
        rows = self._connect().execute(
            "SELECT key FROM entries ORDER BY key").fetchall()
        return [key for (key,) in rows]

    def stats(self) -> Tuple[int, int, int]:
        count, total = self._connect().execute(
            "SELECT COUNT(*), COALESCE(SUM(payload_size), 0)"
            " FROM entries").fetchone()
        disk = 0
        for suffix in ("", "-wal", "-shm"):
            try:
                disk += os.path.getsize(f"{self._db_path}{suffix}")
            except OSError:
                pass
        return count, total, disk

    def gc(self, max_entries: Optional[int],
           max_bytes: Optional[int]) -> int:
        if max_entries is None and max_bytes is None:
            return 0
        # Keep the maximal newest suffix (rowid = insertion order) whose
        # count and running byte total stay within both budgets — exactly
        # the JSON backend's oldest-first greedy, as one SQL statement.
        cursor = self._connect().execute(
            "DELETE FROM entries WHERE rowid NOT IN ("
            " SELECT rowid FROM ("
            "  SELECT rowid,"
            "         ROW_NUMBER() OVER w AS newest_rank,"
            "         SUM(payload_size) OVER w AS newest_bytes"
            "  FROM entries"
            "  WINDOW w AS (ORDER BY rowid DESC"
            "               ROWS UNBOUNDED PRECEDING))"
            " WHERE (:max_entries IS NULL OR newest_rank <= :max_entries)"
            "   AND (:max_bytes IS NULL OR newest_bytes <= :max_bytes))",
            {"max_entries": max_entries, "max_bytes": max_bytes})
        if cursor.rowcount:
            # DELETE alone only marks pages free; after a large prune the
            # database file and its WAL keep their size.  VACUUM rebuilds
            # a compact image — but in WAL mode that rebuild itself
            # commits through the WAL, so the checkpoint must come after:
            # fold the vacuumed image into the main file and truncate the
            # WAL to zero.  Only then does the on-disk footprint actually
            # drop to the surviving entries.
            con = self._connect()
            con.execute("VACUUM")
            con.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        return cursor.rowcount

    def invalidate(self, prefix: str) -> int:
        cursor = self._connect().execute(
            "DELETE FROM entries WHERE substr(key, 1, length(:p)) = :p",
            {"p": prefix})
        return cursor.rowcount

    def stats_by_runner(self) -> List[RunnerStats]:
        rows = self._connect().execute(
            "SELECT runner_digest, COUNT(*),"
            " COALESCE(SUM(payload_size), 0)"
            " FROM entries GROUP BY runner_digest"
            " ORDER BY 3 DESC, runner_digest").fetchall()
        return [RunnerStats(digest, entries, payload_bytes)
                for digest, entries, payload_bytes in rows]

    def close(self) -> None:
        with self._lock:
            connections, self._connections = self._connections, []
            self._generation += 1  # stale thread-locals reconnect lazily
        for con in connections:
            try:
                con.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass


#: URI scheme selecting :class:`SqliteBackend` in :func:`open_backend`
#: (and therefore in ``resolve_store`` / ``REPRO_SWEEP_STORE`` / every
#: ``--store`` flag): ``sqlite:///path/to/store.db``.
SQLITE_URI_PREFIX = "sqlite://"


def open_backend(location: Union[str, os.PathLike]) -> StoreBackend:
    """Open the backend a store location names.

    ``sqlite://PATH`` opens (creating if missing) a :class:`SqliteBackend`
    database at ``PATH``; any other value is a :class:`JsonDirBackend`
    directory.  Pass the URI as a string — ``pathlib`` normalisation
    would collapse the double slash.
    """
    text = os.fspath(location)
    if isinstance(text, str) and text.startswith(SQLITE_URI_PREFIX):
        return SqliteBackend(text[len(SQLITE_URI_PREFIX):])
    return JsonDirBackend(location)
