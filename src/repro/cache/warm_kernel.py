"""Exact bulk kernel for the warm/thrashing segmented-LRU page cache.

:meth:`repro.cache.page_cache.PageCache.lookup` / ``admit`` drive an
OrderedDict state machine one access at a time.  The cold single-pass epoch
and the no-eviction multi-pass stream have closed forms
(:meth:`~repro.cache.page_cache.PageCache.bulk_epoch_hits` /
``bulk_saturating_hits``), but the paper's headline baseline pathology —
segmented-LRU *thrashing* under single-pass random access (Sec. 3.3.1,
Figs. 3/9d) — lives exactly where neither applies: a warm cache smaller than
the working set, where every access can promote, demote or evict.

That trajectory is inherently sequential (each admission's eviction victims
depend on every earlier promotion), so no per-access-free closed form
exists.  What *is* removable is all the per-access Python the OrderedDict
walk pays: hashing, dict mutation, float page rounding, byte arithmetic and
stats-object updates.  This kernel replays the identical state machine as

* **vectorised prologue** — page rounding (exact ceiling division mirroring
  ``PageCache._rounded``), dense id mapping, initial-state gathering,
  stored-size prefills and the float-exactness guards, all as numpy array
  operations; then
* an **integer flat-array core** — both LRU lists are lazily-invalidated
  FIFO deques (append at the back, bound C ``popleft`` at the front), all
  byte accounting is whole-page integer arithmetic held as interned
  headroom counters, and each access costs a couple of deque writes
  instead of OrderedDict mutation; then
* **vectorised epilogue** — the hit mask, hit bytes, insertion/eviction
  counters and final list contents are recovered with set algebra over the
  miss positions, the stream's rounded sizes and the live queue tails.

Exactness rests on one invariant: every byte quantity the reference walk
ever holds is an integer multiple of ``page_bytes``, and every such multiple
that can occur is exactly representable as a float.  Under that invariant
(checked by the guards below; the kernel declines with ``None`` when it
cannot be proven) integer page counts and the reference's accumulated floats
are in exact bijection, so the hit mask, every stats counter including
``hit_bytes``, the eviction count, the byte totals and the *order* of both
lists — observable through future evictions and demotions — equal the
per-item walk bit for bit.  The walk itself stays in
:class:`~repro.cache.page_cache.PageCache` as the executable specification;
``tests/test_properties.py`` property-tests the equivalence.

The kernel is pure: it reads the cache's state and returns a
:class:`SegmentedLRUResult` without touching the cache, so callers get the
all-or-nothing side-effect contract of the other bulk paths for free.
"""

from __future__ import annotations

import math
import os
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Set this environment variable to ``0`` to disable the bulk warm kernel
#: (every caller then falls back to the per-item reference walk).  Read per
#: call, and inherited by spawned sweep workers, so the golden-regression
#: tests can pin kernel-on ≡ kernel-off byte-identity at any worker count.
WARM_KERNEL_ENV_VAR = "REPRO_WARM_KERNEL"


def warm_kernel_enabled() -> bool:
    """Whether the bulk warm kernel is enabled (default yes)."""
    return os.environ.get(WARM_KERNEL_ENV_VAR, "").strip() != "0"


def max_exact_page_multiple(page_bytes: float) -> int:
    """Largest ``B`` such that ``k * page_bytes`` is exact for all ``k <= B``.

    ``k * page_bytes`` is exactly representable iff ``k`` times the odd part
    of the page size's significand still fits in the 53-bit mantissa.  For
    the kernel's 4 KiB pages (odd part 1) that is ``2**53`` — far beyond any
    realisable cache — while degenerate page sizes yield small bounds and
    make the kernel decline instead of silently rounding.
    """
    if not math.isfinite(page_bytes) or page_bytes <= 0:
        return 0
    mantissa, _exp = math.frexp(page_bytes)
    significand = int(mantissa * (1 << 53))
    while significand % 2 == 0:
        significand //= 2
    return (1 << 53) // significand


def rounded_pages(sizes: np.ndarray, page_bytes: float,
                  max_pages: int) -> Optional[np.ndarray]:
    """Exact whole-page counts: ``ceil(size / page_bytes)``, at least one page.

    Mirrors ``PageCache._rounded`` in the real-number sense: the correct
    count ``p`` is the unique integer with ``(p - 1) * page < size <= p *
    page`` (clamped to one page).  The float quotient is only an estimate,
    so it is corrected against those exact product comparisons; ``None``
    when a count cannot be certified below ``max_pages`` (where products
    stop being exact).
    """
    pages = np.negative(np.floor_divide(-sizes, page_bytes))
    pages = np.where(np.isfinite(pages), pages, float(max_pages))
    np.clip(pages, 1.0, float(max_pages), out=pages)
    for _ in range(2):
        pages += sizes > pages * page_bytes
        pages -= (pages > 1.0) & (sizes <= (pages - 1.0) * page_bytes)
    if float(pages.max(initial=1.0)) >= max_pages:
        return None
    bad = (sizes > pages * page_bytes) | ((pages > 1.0)
                                          & (sizes <= (pages - 1.0) * page_bytes))
    if bad.any():
        return None
    return pages.astype(np.int64)


def pages_within(budget_bytes: float, page_bytes: float,
                 max_pages: int) -> Optional[int]:
    """Largest integer ``k`` with ``k * page_bytes <= budget_bytes``.

    This is the exact integer image of every float comparison the reference
    walk makes against ``budget_bytes`` (capacity or active-list limit),
    because all byte occupancies are exact page multiples.  ``None`` when
    the boundary cannot be certified below ``max_pages``.
    """
    if not math.isfinite(budget_bytes) or budget_bytes < 0:
        return None
    k = int(budget_bytes // page_bytes)
    k = max(0, min(k, max_pages))
    while k + 1 < max_pages and (k + 1) * page_bytes <= budget_bytes:
        k += 1
    while k > 0 and k * page_bytes > budget_bytes:
        k -= 1
    if k + 1 >= max_pages or (k + 1) * page_bytes <= budget_bytes:
        return None
    return k


def _exact_page_counts(stored: np.ndarray, page_bytes: float,
                       max_pages: int) -> Optional[np.ndarray]:
    """Integer page counts of resident stored sizes; ``None`` unless exact."""
    counts = stored / page_bytes
    rounded = np.rint(counts)
    if (counts != rounded).any():
        return None
    if rounded.size and (float(rounded.min()) < 1.0
                         or float(rounded.max()) >= max_pages):
        return None
    pages = rounded.astype(np.int64)
    if (pages.astype(np.float64) * page_bytes != stored).any():
        return None
    return pages


@dataclass
class SegmentedLRUResult:
    """Outcome of one bulk segmented-LRU replay (pure; caller commits).

    ``inactive`` / ``active`` are the final lists front-to-end as
    ``(item_ids, page_counts)`` arrays; byte values are ``pages *
    page_bytes`` (exact, per the kernel's representability guards).
    """

    hit_mask: np.ndarray
    hits: int
    misses: int
    insertions: int
    rejected: int
    pressure_evictions: int
    hit_pages: int
    inactive: Tuple[np.ndarray, np.ndarray]
    active: Tuple[np.ndarray, np.ndarray]


def simulate_segmented_lru(
        item_ids: Sequence[int], sizes: Sequence[float], *,
        capacity_bytes: float, page_bytes: float, active_limit_bytes: float,
        inactive: "OrderedDict[int, float]", active: "OrderedDict[int, float]",
        inactive_bytes: float, active_bytes: float,
        prior_hit_bytes: float = 0.0) -> Optional[SegmentedLRUResult]:
    """Replay a whole access stream through the segmented-LRU state machine.

    The stream may revisit items (interleaved multi-job epochs) and the
    cache may start in any warm state.  Returns ``None`` — never partially
    evaluated state — when any float-exactness guard fails; callers then
    walk item by item.
    """
    ids = np.asarray(item_ids, dtype=np.int64)
    size_arr = np.asarray(sizes, dtype=np.float64)
    if ids.shape != size_arr.shape or ids.ndim != 1:
        return None

    max_pages = max_exact_page_multiple(page_bytes)
    cap_pages = pages_within(capacity_bytes, page_bytes, max_pages)
    lim_pages = pages_within(active_limit_bytes, page_bytes, max_pages)
    if cap_pages is None or lim_pages is None:
        return None
    stream_pages = rounded_pages(size_arr, page_bytes, max_pages)
    if stream_pages is None:
        return None

    # Initial state: stored sizes must be exact page multiples whose totals
    # reproduce the cache's accumulated byte counters bit for bit.
    init_in_ids = np.fromiter(inactive.keys(), np.int64, count=len(inactive))
    init_in_sizes = np.fromiter(inactive.values(), np.float64, count=len(inactive))
    init_act_ids = np.fromiter(active.keys(), np.int64, count=len(active))
    init_act_sizes = np.fromiter(active.values(), np.float64, count=len(active))
    init_in_pages = _exact_page_counts(init_in_sizes, page_bytes, max_pages)
    init_act_pages = _exact_page_counts(init_act_sizes, page_bytes, max_pages)
    if init_in_pages is None or init_act_pages is None:
        return None
    in_total = int(init_in_pages.sum())
    act_total = int(init_act_pages.sum())
    if (float(in_total) * page_bytes != inactive_bytes
            or float(act_total) * page_bytes != active_bytes):
        return None
    # Every page total the replay can reach (occupancy, and the cumulative
    # hit bytes) must stay in the exactly-representable range.
    hit_pages_bound = int(stream_pages.sum()) + in_total + act_total
    prior_hit = prior_hit_bytes / page_bytes
    if prior_hit != math.floor(prior_hit) or not math.isfinite(prior_hit):
        return None
    if (cap_pages + int(stream_pages.max(initial=1)) >= max_pages
            or int(prior_hit) + hit_pages_bound >= max_pages):
        return None

    # Dense id space: the stream plus everything initially resident.  Real
    # epochs access dense ``0..num_items-1`` ids, so the common case maps
    # ids to themselves and skips the ``np.unique`` sort entirely.
    n = ids.size
    resident_ids = np.concatenate([init_in_ids, init_act_ids])
    lo = min(int(ids.min(initial=0)), int(resident_ids.min(initial=0)))
    hi = max(int(ids.max(initial=-1)), int(resident_ids.max(initial=-1)))
    if lo >= 0 and hi < n + resident_ids.size + 65536:
        universe = np.arange(hi + 1, dtype=np.int64)
        num_dense = hi + 1
        dense_stream = ids
        dense_in_arr = init_in_ids
        dense_act_arr = init_act_ids
    else:
        universe, dense = np.unique(np.concatenate([ids, resident_ids]),
                                    return_inverse=True)
        num_dense = universe.size
        dense_stream = dense[:n]
        dense_in_arr = dense[n:n + init_in_ids.size]
        dense_act_arr = dense[n + init_in_ids.size:]
    stream = dense_stream.tolist()
    dense_in = dense_in_arr.tolist()
    dense_act = dense_act_arr.tolist()

    # The lean loop below defers all hit/eviction accounting to vectorised
    # epilogue algebra.  That is exact when no stream item is over-capacity
    # (so every miss admits) and every item's rounded size is consistent —
    # one value across its stream accesses, matching its resident stored
    # size — so a hit's stored bytes can be read off the stream itself.
    # Real datasets always satisfy this; adversarial streams take the
    # general loop with in-loop accounting instead.
    rep = np.zeros(num_dense, dtype=np.int64)
    rep[dense_stream] = stream_pages
    consistent = bool((rep[dense_stream] == stream_pages).all())
    if consistent and resident_ids.size:
        appears = np.zeros(num_dense, dtype=bool)
        appears[dense_stream] = True
        res_dense = np.concatenate([dense_in_arr, dense_act_arr])
        res_pages = np.concatenate([init_in_pages, init_act_pages])
        consistent = bool((~appears[res_dense]
                           | (rep[res_dense] == res_pages)).all())
    lean = consistent and (n == 0
                           or int(stream_pages.max(initial=1)) <= cap_pages)

    # Recency is tracked with lazily-invalidated deques instead of linked
    # lists: every queue entry is an (item, stamp) pair split across two
    # parallel deques, and only the entry whose stamp is *the same object*
    # as ``stamp[item]`` is live — moving an item re-stamps it and appends
    # a fresh entry, leaving the old one behind as garbage that
    # eviction/demotion sweeps pop and skip.  Each access therefore costs
    # a few deque appends, never a structural splice.  Stamps are unique
    # per (item, transition): seeds are negative, stream transitions use
    # the access index, and one access re-stamps an item at most once — so
    # object identity and value equality agree, letting the final sweep
    # separate live from stale entries vectorised.  ``deque`` beats the
    # previous lazily-consumed list-iterator scheme by ~1.5x on the pop
    # side: ``popleft`` is a bound C method with no StopIteration /
    # clear-and-rebuild bookkeeping, and consumed garbage is freed as it
    # is popped instead of accumulating behind an iterator.
    loc = [0] * num_dense          # 0 absent, 1 inactive, 2 active
    stamp: List[int] = [-1] * num_dense
    # Lean streams have one rounded size per item, so stored sizes can be
    # prefilled in bulk and admissions never write them; the general loop
    # records the admitted size per miss instead.
    pages_of = rep.tolist() if lean else [0] * num_dense
    seeds = (-np.arange(1, num_dense + 1)).tolist()
    # The queues are pre-seeded with the initially-resident members in one
    # bulk copy each instead of per-member appends.
    iq = deque(dense_in)
    iqs = deque(seeds[d] for d in dense_in)
    aq = deque(dense_act)
    aqs = deque(seeds[d] for d in dense_act)
    for members, member_pages, tag in (
            (dense_in, init_in_pages.tolist(), 1),
            (dense_act, init_act_pages.tolist(), 2)):
        for d, p in zip(members, member_pages):
            loc[d] = tag
            stamp[d] = seeds[d]
            pages_of[d] = p

    pg = None if lean else stream_pages.tolist()
    miss_at: List[int] = []
    miss_append = miss_at.append
    iq_append = iq.append
    iqs_append = iqs.append
    aq_append = aq.append
    aqs_append = aqs.append
    # Bound pop methods, hoisted once: the eviction/demotion sweeps call
    # these more than anything else in a thrashing replay.
    iq_pop = iq.popleft
    iqs_pop = iqs.popleft
    aq_pop = aq.popleft
    aqs_pop = aqs.popleft
    hit_pages = 0
    insertions = 0
    rejected = 0
    evictions = 0
    used = in_total + act_total
    act = act_total

    # Both hot loops pop queue entries and let the (rare) exhaustion
    # exception signal a truly empty queue — Python 3.11 try blocks are
    # free unless they raise, while an explicit bound check would cost a
    # len() call per popped entry.  A popped entry whose stamp is no
    # longer the item's current stamp *object* is stale garbage from a
    # later move and is skipped; a live victim's entry is consumed by the
    # pop itself, so eviction needs no re-stamping.
    if lean:
        # Lean variant: every miss admits, stored sizes equal the stream's
        # own rounded sizes (prefilled into ``pages_of`` vectorised), and
        # hit bytes / insertions / evictions are recovered from the miss
        # positions and the final occupancy afterwards — so the loop body
        # touches nothing but the recency state itself.  Occupancy is
        # tracked as *headroom* (``room``/``aroom``), which stays a small
        # interned int in the thrashing steady state.
        room = cap_pages - used      # pages before the next eviction
        aroom = lim_pages - act      # pages before the next demotion
        for t, d in enumerate(stream):
            w = loc[d]
            if not w:
                # Miss: evict from the inactive front, then the active.
                miss_append(t)
                p = pages_of[d]
                try:
                    while p > room:
                        g = iq_pop()
                        s = iqs_pop()
                        if stamp[g] is not s:
                            continue
                        room += pages_of[g]
                        loc[g] = 0
                except IndexError:
                    while p > room:
                        try:
                            g = aq_pop()
                            s = aqs_pop()
                        except IndexError:
                            break
                        if stamp[g] is not s:
                            continue
                        aroom += pages_of[g]
                        room += pages_of[g]
                        loc[g] = 0
                loc[d] = 1
                stamp[d] = t
                iq_append(d)
                iqs_append(t)
                room -= p
            elif w == 2:
                # Active hit: re-stamp to the active MRU end.
                stamp[d] = t
                aq_append(d)
                aqs_append(t)
            else:
                # Inactive hit: promote, then demote while over target.
                loc[d] = 2
                stamp[d] = t
                aq_append(d)
                aqs_append(t)
                aroom -= pages_of[d]
                try:
                    while aroom < 0:
                        g = aq_pop()
                        s = aqs_pop()
                        if stamp[g] is not s:
                            continue
                        loc[g] = 1
                        stamp[g] = t
                        iq_append(g)
                        iqs_append(t)
                        aroom += pages_of[g]
                except IndexError:
                    pass  # active queue empty (unreachable while pages remain)
    else:
        # General variant: mixed/oversized or inconsistent stream sizes —
        # identical state machine, with per-access accounting.
        for t, d in enumerate(stream):
            w = loc[d]
            if not w:
                miss_append(t)
                p = pg[t]
                if p > cap_pages:
                    rejected += 1
                    continue
                try:
                    while used + p > cap_pages:
                        g = iq_pop()
                        s = iqs_pop()
                        if stamp[g] is not s:
                            continue
                        used -= pages_of[g]
                        loc[g] = 0
                        evictions += 1
                except IndexError:
                    while used + p > cap_pages:
                        try:
                            g = aq_pop()
                            s = aqs_pop()
                        except IndexError:
                            break
                        if stamp[g] is not s:
                            continue
                        act -= pages_of[g]
                        used -= pages_of[g]
                        loc[g] = 0
                        evictions += 1
                loc[d] = 1
                stamp[d] = t
                pages_of[d] = p
                iq_append(d)
                iqs_append(t)
                used += p
                insertions += 1
            elif w == 2:
                hit_pages += pages_of[d]
                stamp[d] = t
                aq_append(d)
                aqs_append(t)
            else:
                hit_pages += pages_of[d]
                loc[d] = 2
                stamp[d] = t
                aq_append(d)
                aqs_append(t)
                act += pages_of[d]
                try:
                    while act > lim_pages:
                        g = aq_pop()
                        s = aqs_pop()
                        if stamp[g] is not s:
                            continue
                        loc[g] = 1
                        stamp[g] = t
                        iq_append(g)
                        iqs_append(t)
                        act -= pages_of[g]
                except IndexError:
                    pass  # active queue empty (unreachable while act > 0)
    # Whatever the queues still hold after the replay is the tail the
    # final live sweep filters (consumed garbage was freed by the pops).
    tail_in, tail_ins = list(iq), list(iqs)
    tail_act, tail_acts = list(aq), list(aqs)

    hit_mask = np.ones(n, dtype=bool)
    if miss_at:
        hit_mask[np.asarray(miss_at, dtype=np.int64)] = False

    stamp_arr = np.fromiter(stamp, np.int64, count=num_dense)
    pages_arr = np.fromiter(pages_of, np.int64, count=num_dense)

    def _collect(entries: List[int],
                 entry_stamps: List[int]) -> Tuple[np.ndarray, np.ndarray]:
        members = np.fromiter(entries, np.int64, count=len(entries))
        stamps = np.fromiter(entry_stamps, np.int64, count=len(entry_stamps))
        live = members[stamp_arr[members] == stamps]
        return universe[live], pages_arr[live]

    final_inactive = _collect(tail_in, tail_ins)
    final_active = _collect(tail_act, tail_acts)
    if lean:
        # Epilogue algebra for the lean loop: every miss was admitted, hit
        # bytes are the stream's own (consistent) rounded sizes, and the
        # eviction count is the occupancy balance of the replay.
        insertions = len(miss_at)
        hit_pages = int(stream_pages[hit_mask].sum())
        evictions = (insertions + init_in_ids.size + init_act_ids.size
                     - final_inactive[0].size - final_active[0].size)

    return SegmentedLRUResult(
        hit_mask=hit_mask,
        hits=n - len(miss_at),
        misses=len(miss_at),
        insertions=insertions,
        rejected=rejected,
        pressure_evictions=evictions,
        hit_pages=hit_pages,
        inactive=final_inactive,
        active=final_active,
    )
