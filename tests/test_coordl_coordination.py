"""Unit tests for coordinated prep plans, the epoch runner and failure handling."""

import numpy as np
import pytest

from repro.coordl.coordinated_prep import CoordinatedEpochRunner, CoordinatedPrepPlan
from repro.coordl.failure import (
    FailureDetector,
    JobState,
    RecoveryAction,
    TimeoutReport,
)
from repro.coordl.loader import CoorDL
from repro.coordl.staging import StagingArea
from repro.exceptions import ConfigurationError, JobFailedError
from repro.prep.pipeline import PrepPipeline


@pytest.fixture
def plan(tiny_dataset):
    return CoordinatedPrepPlan(tiny_dataset, num_jobs=4, batch_size=16, epoch=0, seed=0)


@pytest.fixture
def prep():
    return PrepPipeline.for_task("image_classification")


class TestCoordinatedPrepPlan:
    def test_plan_covers_dataset_exactly_once(self, plan, tiny_dataset):
        assert plan.covers_dataset_exactly_once()
        assert plan.unique_item_fetches() == len(tiny_dataset)

    def test_production_is_balanced_round_robin(self, plan):
        counts = [len(plan.batches_for_producer(j)) for j in range(plan.num_jobs)]
        assert max(counts) - min(counts) <= 1

    def test_producer_lookup_matches_assignments(self, plan):
        for assignment in plan.assignments:
            assert plan.producer_of(assignment.batch_id) == assignment.producer_job

    def test_different_epochs_use_different_permutations(self, tiny_dataset):
        p0 = CoordinatedPrepPlan(tiny_dataset, 4, 16, epoch=0, seed=0)
        p1 = CoordinatedPrepPlan(tiny_dataset, 4, 16, epoch=1, seed=0)
        order0 = np.concatenate([a.item_ids for a in p0.assignments])
        order1 = np.concatenate([a.item_ids for a in p1.assignments])
        assert not np.array_equal(order0, order1)

    def test_validation(self, tiny_dataset):
        with pytest.raises(ConfigurationError):
            CoordinatedPrepPlan(tiny_dataset, 0, 16)
        with pytest.raises(ConfigurationError):
            CoordinatedPrepPlan(tiny_dataset, 2, 0)


class TestCoordinatedEpochRunner:
    def test_lockstep_epoch_gives_every_job_every_batch(self, plan, prep, tiny_dataset):
        runner = CoordinatedEpochRunner(plan, prep, tiny_dataset)
        consumed = runner.run_epoch_in_lockstep()
        for job in range(plan.num_jobs):
            assert len(consumed[job]) == plan.total_batches()
            assert runner.job_epoch_is_complete(job)
        # Once everyone consumed everything the staging area is empty again.
        assert runner.staging.staged_batches == 0

    def test_each_batch_prepped_exactly_once(self, plan, prep, tiny_dataset):
        runner = CoordinatedEpochRunner(plan, prep, tiny_dataset)
        runner.run_epoch_in_lockstep()
        assert runner.staging.produced == plan.total_batches()

    def test_staging_memory_stays_small_in_lockstep(self, plan, prep, tiny_dataset):
        """Sec. 5.5: the staging area holds only in-flight batches, not the dataset."""
        runner = CoordinatedEpochRunner(plan, prep, tiny_dataset)
        runner.run_epoch_in_lockstep()
        prepared_dataset_bytes = sum(
            prep.prepared_bytes(tiny_dataset.item_size(i)) for i in range(len(tiny_dataset)))
        assert runner.staging.peak_bytes < 0.1 * prepared_dataset_bytes

    def test_missing_batch_without_detector_raises(self, plan, prep, tiny_dataset):
        runner = CoordinatedEpochRunner(plan, prep, tiny_dataset)
        from repro.exceptions import StagingTimeoutError
        with pytest.raises(StagingTimeoutError):
            runner.consume_batch(0, 0)

    def test_missing_batch_with_detector_triggers_recovery(self, plan, prep, tiny_dataset):
        detector = FailureDetector(plan.num_jobs, iteration_time_s=0.1,
                                   liveness_probe=lambda job: job != 1)
        runner = CoordinatedEpochRunner(plan, prep, tiny_dataset,
                                        failure_detector=detector)
        victim_batch = plan.batches_for_producer(1)[0].batch_id
        ok = runner.consume_batch(0, victim_batch, waited_s=10.0)
        assert not ok
        assert detector.state(1) is JobState.DEAD
        assert detector.events and detector.events[0].failed_job == 1


class TestFailureDetector:
    def test_timeout_is_ten_iterations_by_default(self):
        detector = FailureDetector(4, iteration_time_s=0.5)
        assert detector.timeout_s == pytest.approx(5.0)

    def test_alive_producer_triggers_retry(self):
        detector = FailureDetector(4, 1.0)
        action = detector.report_timeout(TimeoutReport(0, 7, suspected_producer=2,
                                                       reported_at=1.0))
        assert action is RecoveryAction.RETRY
        assert detector.state(2) is JobState.RUNNING

    def test_stale_report_is_ignored(self):
        detector = FailureDetector(4, 1.0)
        action = detector.report_timeout(
            TimeoutReport(0, 7, 2, 1.0), batch_is_now_staged=True)
        assert action is RecoveryAction.NONE

    def test_dead_producer_triggers_respawn_on_lowest_survivor(self):
        detector = FailureDetector(4, 1.0, liveness_probe=lambda job: job != 2)
        action = detector.report_timeout(TimeoutReport(3, 7, 2, 1.0))
        assert action is RecoveryAction.RESPAWN
        assert detector.state(2) is JobState.DEAD
        assert detector.events[0].reassigned_to == 0
        assert detector.alive_jobs() == {0, 1, 3}

    def test_no_survivor_raises(self):
        detector = FailureDetector(1, 1.0, liveness_probe=lambda job: False)
        with pytest.raises(JobFailedError):
            detector.report_timeout(TimeoutReport(0, 0, 0, 0.0))

    def test_mark_dead_externally(self):
        detector = FailureDetector(2, 1.0)
        detector.mark_dead(1)
        assert detector.alive_jobs() == {0}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FailureDetector(0, 1.0)
        with pytest.raises(ConfigurationError):
            FailureDetector(2, 0.0)


class TestCoorDLFacade:
    def test_hp_search_session_wiring(self, tiny_dataset, ssd_server):
        session = CoorDL.for_hp_search(tiny_dataset, ssd_server, num_jobs=4,
                                       batch_size=16)
        assert session.plan.covers_dataset_exactly_once()
        assert session.staging.num_jobs == 4
        assert session.detector.timeout_s == pytest.approx(10.0)
        later = session.plan_for_epoch(3)
        assert later.epoch == 3

    def test_single_server_returns_minio_loader(self, tiny_dataset, ssd_server):
        loader = CoorDL.for_single_server(tiny_dataset, ssd_server, batch_size=32)
        from repro.cache.minio import MinIOCache
        assert isinstance(loader.cache, MinIOCache)

    def test_distributed_requires_two_servers(self, tiny_dataset, ssd_server):
        with pytest.raises(ConfigurationError):
            CoorDL.for_distributed(tiny_dataset, [ssd_server], 64)

    def test_hp_search_requires_jobs(self, tiny_dataset, ssd_server):
        with pytest.raises(ConfigurationError):
            CoorDL.for_hp_search(tiny_dataset, ssd_server, num_jobs=0, batch_size=16)
