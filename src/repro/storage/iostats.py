"""I/O accounting.

Every read performed against a :class:`~repro.storage.filestore.FileStore`
is recorded here: bytes and requests by source (storage, cache, remote), plus
an optional time-series of (virtual time, cumulative disk bytes) samples used
to reproduce the disk-I/O-over-time plots (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class IOStats:
    """Counters for one loader / one epoch / one server (caller's choice)."""

    disk_bytes: float = 0.0
    disk_requests: int = 0
    cache_bytes: float = 0.0
    cache_requests: int = 0
    remote_bytes: float = 0.0
    remote_requests: int = 0
    timeline: List[Tuple[float, float]] = field(default_factory=list)

    def record_disk(self, nbytes: float, at_time: float | None = None) -> None:
        """Account one read served by the storage device."""
        self.disk_bytes += nbytes
        self.disk_requests += 1
        if at_time is not None:
            self.timeline.append((at_time, self.disk_bytes))

    def record_cache(self, nbytes: float) -> None:
        """Account one read served from the local DRAM cache."""
        self.cache_bytes += nbytes
        self.cache_requests += 1

    def record_remote(self, nbytes: float) -> None:
        """Account one read served from a remote server's cache."""
        self.remote_bytes += nbytes
        self.remote_requests += 1

    @property
    def total_requests(self) -> int:
        """All item reads regardless of source."""
        return self.disk_requests + self.cache_requests + self.remote_requests

    @property
    def total_bytes(self) -> float:
        """All bytes read regardless of source."""
        return self.disk_bytes + self.cache_bytes + self.remote_bytes

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of requests served from local cache."""
        if self.total_requests == 0:
            return 0.0
        return self.cache_requests / self.total_requests

    @property
    def miss_ratio(self) -> float:
        """Fraction of requests that had to leave the local cache."""
        return 1.0 - self.cache_hit_ratio

    def merged_with(self, other: "IOStats") -> "IOStats":
        """Return the element-wise sum of two counters (timelines concatenated)."""
        merged = IOStats(
            disk_bytes=self.disk_bytes + other.disk_bytes,
            disk_requests=self.disk_requests + other.disk_requests,
            cache_bytes=self.cache_bytes + other.cache_bytes,
            cache_requests=self.cache_requests + other.cache_requests,
            remote_bytes=self.remote_bytes + other.remote_bytes,
            remote_requests=self.remote_requests + other.remote_requests,
        )
        merged.timeline = sorted(self.timeline + other.timeline)
        return merged

    def reset(self) -> None:
        """Zero all counters (e.g. between warm-up and measured epochs)."""
        self.disk_bytes = 0.0
        self.disk_requests = 0
        self.cache_bytes = 0.0
        self.cache_requests = 0
        self.remote_bytes = 0.0
        self.remote_requests = 0
        self.timeline.clear()
