"""Unit tests for the cross-job staging area (coordinated prep, Sec. 4.3)."""

import pytest

from repro.coordl.staging import StagingArea
from repro.exceptions import ConfigurationError, StagingTimeoutError


class TestStagingArea:
    def test_stage_and_consume_lifecycle(self):
        staging = StagingArea(num_jobs=3)
        staging.stage(0, epoch=0, producer_job=0, item_ids=[1, 2, 3], prepared_bytes=300.0)
        assert staging.is_staged(0)
        assert staging.current_bytes == 300.0
        for job in range(3):
            staging.consume(job, 0)
        # Evicted once every job has used it exactly once.
        assert not staging.is_staged(0)
        assert staging.current_bytes == 0.0
        assert staging.evicted == 1
        assert staging.consumptions == 3

    def test_batch_retained_until_all_jobs_consume(self):
        staging = StagingArea(num_jobs=2)
        staging.stage(5, 0, 0, [1], 10.0)
        staging.consume(0, 5)
        assert staging.is_staged(5)
        staging.consume(1, 5)
        assert not staging.is_staged(5)

    def test_double_consumption_by_same_job_rejected(self):
        """A job must use each minibatch exactly once per epoch."""
        staging = StagingArea(num_jobs=2)
        staging.stage(1, 0, 0, [1], 10.0)
        staging.consume(0, 1)
        with pytest.raises(ConfigurationError):
            staging.consume(0, 1)

    def test_missing_batch_raises_timeout_signal(self):
        staging = StagingArea(num_jobs=2)
        with pytest.raises(StagingTimeoutError):
            staging.consume(0, 99)

    def test_duplicate_batch_id_rejected(self):
        staging = StagingArea(num_jobs=2)
        staging.stage(1, 0, 0, [1], 10.0)
        with pytest.raises(ConfigurationError):
            staging.stage(1, 0, 1, [2], 10.0)

    def test_peak_bytes_tracks_high_water_mark(self):
        staging = StagingArea(num_jobs=1)
        staging.stage(1, 0, 0, [1], 100.0)
        staging.stage(2, 0, 0, [2], 50.0)
        staging.consume(0, 1)
        staging.consume(0, 2)
        assert staging.peak_bytes == 150.0
        assert staging.current_bytes == 0.0

    def test_pending_for_job(self):
        staging = StagingArea(num_jobs=2)
        staging.stage(1, 0, 0, [1], 1.0)
        staging.stage(2, 0, 1, [2], 1.0)
        staging.consume(0, 1)
        assert staging.pending_for_job(0) == [2]
        assert sorted(staging.pending_for_job(1)) == [1, 2]

    def test_drop_epoch_clears_leftovers(self):
        staging = StagingArea(num_jobs=2)
        staging.stage(1, epoch=0, producer_job=0, item_ids=[1], prepared_bytes=1.0)
        staging.stage(2, epoch=1, producer_job=0, item_ids=[2], prepared_bytes=1.0)
        dropped = staging.drop_epoch(0)
        assert dropped == 1
        assert not staging.is_staged(1)
        assert staging.is_staged(2)

    def test_remove_job_relaxes_consumption_requirement(self):
        staging = StagingArea(num_jobs=3)
        staging.stage(1, 0, 0, [1], 1.0)
        staging.consume(0, 1)
        staging.consume(1, 1)
        assert staging.is_staged(1)       # still waiting for job 2
        staging.remove_job(2)
        assert not staging.is_staged(1)   # requirement now satisfied

    def test_remove_last_job_rejected(self):
        staging = StagingArea(num_jobs=1)
        with pytest.raises(ConfigurationError):
            staging.remove_job(0)

    def test_timeout_threshold(self):
        staging = StagingArea(num_jobs=2, batch_timeout_s=5.0)
        assert not staging.wait_time_exceeded(4.9)
        assert staging.wait_time_exceeded(5.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StagingArea(num_jobs=0)
        with pytest.raises(ConfigurationError):
            StagingArea(num_jobs=1, batch_timeout_s=0)
