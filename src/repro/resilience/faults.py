"""Deterministic fault injection: plans, schedules, and the injector.

A :class:`FaultPlan` is a declarative, JSON-serialisable description of the
faults one test run should experience: parent-side worker kills (by received
result count), transient/permanent store errors (by backend-call count), and
serve-batch stalls (by batch count).  A :class:`FaultInjector` is the
stateful runtime for one plan — thread-safe counters decide *exactly* which
call fires which fault, so a plan plus a workload is a reproducible chaos
schedule with no randomness at injection time (the plan's ``seed`` exists so
*generators* of plans — hypothesis, CI sweeps — can be seeded; the injector
itself is a pure counter machine).

Activation is opt-in and zero-cost when off:

* **kwargs** — ``SweepStore(..., fault_injector=...)``,
  ``PersistentPool(..., fault_injector=...)`` and
  ``ServeDaemon(..., fault_injector=...)`` take an injector directly
  (how the chaos tests wire one injector through a whole stack);
* **environment** — ``REPRO_FAULT_PLAN`` holds either inline JSON or a path
  to a JSON file; :func:`active_injector` parses it once per process and
  hands every fault site the same shared injector (how ``make chaos-check``
  runs the ordinary gates under a committed plan without touching their
  code).  When the variable is unset, every fault site sees ``None`` and
  the hot path costs one attribute test.

Faults are injected *parent-side only*: the injector never crosses a
process boundary (worker kills are delivered by the parent via SIGKILL), so
plans behave identically at any worker count — at ``workers<=1`` there are
no pool workers and kill entries simply never fire, which is exactly the
byte-identity-across-worker-counts contract the chaos suite pins.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import (
    ConfigurationError,
    PermanentFaultError,
    TransientFaultError,
)

#: Environment variable holding a fault plan (inline JSON or a file path).
FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: Store operations a :class:`StoreFault` may target ("any" matches both).
STORE_FAULT_OPS = ("get", "put", "any")

#: Fault kinds: transient errors are retried, permanent ones degrade.
STORE_FAULT_KINDS = ("transient", "permanent")


@dataclass(frozen=True)
class StoreFault:
    """One injected store error: the ``at``-th matching backend call fails.

    Args:
        op: Which store operation to target (``get``/``put``/``any``).
        at: 1-based call count (per-op, per-injector) at which to fire.
        kind: ``transient`` raises :class:`TransientFaultError` (the retry
            policy should absorb it); ``permanent`` raises
            :class:`PermanentFaultError` (the degradation ladder engages).
        times: How many consecutive matching calls fail starting at ``at``
            (a transient fault with ``times`` >= the retry budget behaves
            permanently — useful for exercising retry exhaustion).
    """

    op: str = "any"
    at: int = 1
    kind: str = "transient"
    times: int = 1

    def __post_init__(self) -> None:
        if self.op not in STORE_FAULT_OPS:
            raise ConfigurationError(
                f"store fault op must be one of {STORE_FAULT_OPS}, "
                f"got {self.op!r}")
        if self.kind not in STORE_FAULT_KINDS:
            raise ConfigurationError(
                f"store fault kind must be one of {STORE_FAULT_KINDS}, "
                f"got {self.kind!r}")
        if self.at < 1:
            raise ConfigurationError("store fault 'at' is a 1-based call "
                                     "count and must be >= 1")
        if self.times < 1:
            raise ConfigurationError("store fault 'times' must be >= 1")

    def covers(self, op: str, call_count: int) -> bool:
        """True when this fault fires for the ``call_count``-th ``op`` call."""
        if self.op != "any" and self.op != op:
            return False
        return self.at <= call_count < self.at + self.times


@dataclass(frozen=True)
class ServeStall:
    """Stall the ``at``-th dispatched serve batch for ``stall_s`` seconds."""

    at: int = 1
    stall_s: float = 0.05

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ConfigurationError("serve stall 'at' must be >= 1")
        if self.stall_s < 0:
            raise ConfigurationError("serve stall seconds must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, reproducible chaos schedule.

    Args:
        seed: Seed recorded with the plan so generated plans are
            reproducible; injection itself is counter-driven and uses no
            randomness.
        worker_kills: Received-result counts at which the *parent* SIGKILLs
            one live pool worker.  The schedule restarts for every
            ``run_points`` call, so "kill a worker after 2 results" applies
            to every grid a plan covers; each entry fires at most once per
            run, which keeps kills bounded without cross-process state.
        store_faults: :class:`StoreFault` entries, matched against per-op
            call counters that span the injector's lifetime.
        serve_stalls: :class:`ServeStall` entries, matched against the
            batcher's dispatched-batch counter.
        host_kills: Delivered-record counts at which the *driver* of a
            distributed sweep (:class:`repro.dist.DistExecutor`) delivers
            one ``host-death`` fault through its ``kill_hook`` — SIGKILLing
            a worker agent process mid-chunk.  Like ``worker_kills`` the
            schedule restarts per ``run_points`` call and each entry fires
            at most once per run; without a hook (no fleet to kill) the
            entries are inert, so plans behave identically when no fabric
            is in play.
    """

    seed: int = 0
    worker_kills: Tuple[int, ...] = ()
    store_faults: Tuple[StoreFault, ...] = ()
    serve_stalls: Tuple[ServeStall, ...] = ()
    host_kills: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for count in self.worker_kills:
            if count < 1:
                raise ConfigurationError(
                    "worker kill thresholds are 1-based received-result "
                    "counts and must be >= 1")
        for count in self.host_kills:
            if count < 1:
                raise ConfigurationError(
                    "host kill thresholds are 1-based delivered-record "
                    "counts and must be >= 1")

    def to_dict(self) -> dict:
        """Plain-dict form, invertible via :meth:`from_dict`."""
        return {
            "seed": self.seed,
            "worker_kills": list(self.worker_kills),
            "store_faults": [
                {"op": f.op, "at": f.at, "kind": f.kind, "times": f.times}
                for f in self.store_faults
            ],
            "serve_stalls": [
                {"at": s.at, "stall_s": s.stall_s} for s in self.serve_stalls
            ],
            "host_kills": list(self.host_kills),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Build a plan from :meth:`to_dict` output (e.g. a JSON plan file)."""
        if not isinstance(payload, dict):
            raise ConfigurationError("a fault plan must be a JSON object")
        unknown = set(payload) - {"seed", "worker_kills", "store_faults",
                                  "serve_stalls", "host_kills"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan fields: {sorted(unknown)}")
        return cls(
            seed=int(payload.get("seed", 0)),
            worker_kills=tuple(int(c) for c in payload.get("worker_kills",
                                                           ())),
            store_faults=tuple(StoreFault(**f)
                               for f in payload.get("store_faults", ())),
            serve_stalls=tuple(ServeStall(**s)
                               for s in payload.get("serve_stalls", ())),
            host_kills=tuple(int(c) for c in payload.get("host_kills", ())),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from a JSON string."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"fault plan is not valid JSON: {exc}") \
                from exc
        return cls.from_dict(payload)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """Read ``REPRO_FAULT_PLAN`` (inline JSON or a file path), if set."""
        raw = os.environ.get(FAULT_PLAN_ENV_VAR, "").strip()
        if not raw:
            return None
        if raw.startswith("{"):
            return cls.from_json(raw)
        try:
            text = open(raw, "r", encoding="utf-8").read()
        except OSError as exc:
            raise ConfigurationError(
                f"{FAULT_PLAN_ENV_VAR} names an unreadable plan file "
                f"{raw!r}: {exc}") from exc
        return cls.from_json(text)


class KillSchedule:
    """Per-run view of a plan's worker-kill thresholds.

    :meth:`due` is called by the supervised executor after every received
    result; a threshold fires once when the received count reaches it, then
    is retired — so a run sees at most ``len(worker_kills)`` kills no
    matter how many times lost chunks are re-run.
    """

    def __init__(self, thresholds: Tuple[int, ...]) -> None:
        self._pending = sorted(thresholds)

    def due(self, results_seen: int) -> bool:
        """True (once per threshold) when ``results_seen`` crosses one."""
        if self._pending and results_seen >= self._pending[0]:
            self._pending.pop(0)
            return True
        return False


@dataclass
class FaultCounters:
    """What an injector has actually delivered (surfaced in health/stats)."""

    store_faults: int = 0
    transient_store_faults: int = 0
    permanent_store_faults: int = 0
    worker_kills: int = 0
    batch_stalls: int = 0
    host_kills: int = 0

    def to_dict(self) -> dict:
        return {
            "store_faults": self.store_faults,
            "transient_store_faults": self.transient_store_faults,
            "permanent_store_faults": self.permanent_store_faults,
            "worker_kills": self.worker_kills,
            "batch_stalls": self.batch_stalls,
            "host_kills": self.host_kills,
        }


class FaultInjector:
    """Thread-safe runtime for one :class:`FaultPlan`.

    One injector is meant to be shared by every fault site in a stack (the
    store's backend calls, the pool's supervisor, the batcher's dispatch
    loop); its counters are therefore global to the injector, matching how
    a plan describes one workload's fault schedule.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._op_calls: Dict[str, int] = {"get": 0, "put": 0}
        self._batches = 0
        self.counters = FaultCounters()

    def store_fault(self, op: str) -> None:
        """Raise the planned fault for this ``op`` call, if any.

        Called by the store *inside* its retry wrapper, before the backend
        op runs — so a transient fault consumes one retry attempt and a
        ``times`` >= the retry budget exhausts it.
        """
        if op not in self._op_calls:
            raise ConfigurationError(f"unknown store fault op {op!r}")
        with self._lock:
            self._op_calls[op] += 1
            count = self._op_calls[op]
            fault = next((f for f in self.plan.store_faults
                          if f.covers(op, count)), None)
            if fault is None:
                return
            self.counters.store_faults += 1
            if fault.kind == "transient":
                self.counters.transient_store_faults += 1
            else:
                self.counters.permanent_store_faults += 1
        if fault.kind == "transient":
            raise TransientFaultError(
                f"injected transient store fault ({op} call #{count})")
        raise PermanentFaultError(
            f"injected permanent store fault ({op} call #{count})")

    def run_kills(self) -> KillSchedule:
        """A fresh per-run kill schedule (see :class:`KillSchedule`)."""
        return KillSchedule(self.plan.worker_kills)

    def note_kill(self) -> None:
        """Record one delivered worker kill."""
        with self._lock:
            self.counters.worker_kills += 1

    def host_kill_schedule(self) -> KillSchedule:
        """A fresh per-run ``host-death`` schedule (``plan.host_kills``)."""
        return KillSchedule(self.plan.host_kills)

    def note_host_kill(self) -> None:
        """Record one delivered host kill (a SIGKILLed worker agent)."""
        with self._lock:
            self.counters.host_kills += 1

    def batch_stall(self) -> float:
        """Seconds to stall the current serve batch (0.0 when none)."""
        with self._lock:
            self._batches += 1
            count = self._batches
            stall = next((s for s in self.plan.serve_stalls if s.at == count),
                         None)
            if stall is None:
                return 0.0
            self.counters.batch_stalls += 1
        return stall.stall_s

    def snapshot(self) -> dict:
        """Counter snapshot for health payloads and BENCH artifacts."""
        with self._lock:
            return self.counters.to_dict()


# -- process-wide activation --------------------------------------------------

_ENV_LOCK = threading.Lock()
_ENV_RESOLVED = False
_ENV_INJECTOR: Optional[FaultInjector] = None
_INSTALLED: Optional[FaultInjector] = None


def install_plan(plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
    """Install a process-wide injector (tests); ``None`` clears it.

    An installed injector takes precedence over ``REPRO_FAULT_PLAN``.
    Returns the injector so the caller can read its counters afterwards.
    """
    global _INSTALLED
    with _ENV_LOCK:
        _INSTALLED = FaultInjector(plan) if plan is not None else None
        return _INSTALLED


def clear_installed() -> None:
    """Remove any installed injector and forget the cached env plan."""
    global _INSTALLED, _ENV_RESOLVED, _ENV_INJECTOR
    with _ENV_LOCK:
        _INSTALLED = None
        _ENV_RESOLVED = False
        _ENV_INJECTOR = None


def active_injector() -> Optional[FaultInjector]:
    """The process-wide injector, or ``None`` when fault injection is off.

    Resolution order: an injector installed via :func:`install_plan`, then
    a plan parsed (once per process) from ``REPRO_FAULT_PLAN``.  With
    neither, this is a lock-free ``None`` after the first call.
    """
    global _ENV_RESOLVED, _ENV_INJECTOR
    if _INSTALLED is not None:
        return _INSTALLED
    if _ENV_RESOLVED:
        return _ENV_INJECTOR
    with _ENV_LOCK:
        if not _ENV_RESOLVED:
            plan = FaultPlan.from_env()
            _ENV_INJECTOR = FaultInjector(plan) if plan is not None else None
            _ENV_RESOLVED = True
    return _ENV_INJECTOR
