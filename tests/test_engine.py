"""Unit tests for the pipelined epoch simulation engine."""

import pytest

from repro.compute.gpu import V100
from repro.compute.model_zoo import RESNET18, RESNET50
from repro.exceptions import ConfigurationError, SimulationError
from repro.pipeline.dali import DALILoader
from repro.sim.engine import PipelineSimulator, pipeline_makespan


class TestPipelineMakespan:
    def test_single_batch_is_sum_of_stages(self):
        assert pipeline_makespan([[1.0], [2.0], [3.0]]) == pytest.approx(6.0)

    def test_bottleneck_stage_dominates_long_epochs(self):
        n = 100
        fetch = [0.1] * n
        prep = [1.0] * n       # bottleneck
        gpu = [0.2] * n
        makespan = pipeline_makespan([fetch, prep, gpu])
        assert makespan == pytest.approx(n * 1.0, rel=0.05)

    def test_pipelining_beats_serial_execution(self):
        n = 50
        stages = [[0.5] * n, [0.5] * n, [0.5] * n]
        serial = 3 * 0.5 * n
        assert pipeline_makespan(stages) < serial * 0.5

    def test_queue_depth_limits_how_far_fetch_runs_ahead(self):
        # Fast fetch, slow GPU: with depth 1 the fetch stage is throttled, so
        # the makespan cannot be shorter than with a large queue.
        n = 20
        stages = [[0.1] * n, [0.1] * n, [1.0] * n]
        deep = pipeline_makespan(stages, queue_depth=16)
        shallow = pipeline_makespan(stages, queue_depth=1)
        assert shallow >= deep

    def test_empty_epoch(self):
        assert pipeline_makespan([[], [], []]) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            pipeline_makespan([[1.0]], queue_depth=0)
        with pytest.raises(ConfigurationError):
            pipeline_makespan([])
        with pytest.raises(SimulationError):
            pipeline_makespan([[1.0], [1.0, 2.0]])


class TestPipelineSimulator:
    def _loader(self, dataset, server, cache_fraction=0.5, batch_size=32):
        server = server.with_cache_bytes(dataset.total_bytes * cache_fraction)
        return DALILoader.build(dataset, server, batch_size, mode="shuffle")

    def test_epoch_stats_are_consistent(self, tiny_dataset, ssd_server):
        loader = self._loader(tiny_dataset, ssd_server)
        sim = PipelineSimulator(RESNET18, V100)
        stats = sim.run_epoch(loader, 0)
        assert stats.samples == len(tiny_dataset)
        assert stats.epoch_time_s >= stats.prep_limited_time_s >= 0
        assert stats.epoch_time_s >= stats.gpu_time_s
        assert stats.prep_stall_s + stats.fetch_stall_s == pytest.approx(
            stats.data_stall_s)
        assert 0.0 <= stats.data_stall_fraction <= 1.0
        assert stats.cache_hits + stats.cache_misses == len(tiny_dataset)

    def test_warm_cache_makes_later_epochs_faster(self, tiny_dataset, hdd_server):
        loader = self._loader(tiny_dataset, hdd_server, cache_fraction=0.9)
        sim = PipelineSimulator(RESNET18, hdd_server.gpu)
        epochs = sim.run_epochs(loader, 2)
        assert epochs[1].epoch_time_s < epochs[0].epoch_time_s
        assert epochs[1].io.disk_bytes < epochs[0].io.disk_bytes

    def test_gpu_time_matches_model_rate(self, tiny_dataset, ssd_server):
        loader = self._loader(tiny_dataset, ssd_server)
        sim = PipelineSimulator(RESNET50, V100)
        stats = sim.run_epoch(loader, 0)
        expected = len(tiny_dataset) / RESNET50.aggregate_gpu_rate(
            V100, loader.num_gpus, gpu_prep_active=loader.uses_gpu_prep)
        assert stats.gpu_time_s == pytest.approx(expected, rel=0.01)

    def test_heavier_model_has_smaller_stall_fraction(self, tiny_dataset, ssd_server):
        """Compute-heavy models hide the data pipeline better (Sec. 3.3)."""
        loader_light = self._loader(tiny_dataset, ssd_server, cache_fraction=0.35)
        loader_heavy = self._loader(tiny_dataset, ssd_server, cache_fraction=0.35)
        light = PipelineSimulator(RESNET18, V100).run_epochs(loader_light, 2)[-1]
        heavy = PipelineSimulator(RESNET50, V100).run_epochs(loader_heavy, 2)[-1]
        assert heavy.data_stall_fraction < light.data_stall_fraction

    def test_run_epochs_validation(self, tiny_dataset, ssd_server):
        loader = self._loader(tiny_dataset, ssd_server)
        sim = PipelineSimulator(RESNET18, V100)
        with pytest.raises(ConfigurationError):
            sim.run_epochs(loader, 0)
