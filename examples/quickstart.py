#!/usr/bin/env python3
"""Quickstart: analyse data stalls for one model and mitigate them with CoorDL.

This walks the paper's core loop on a single Config-SSD-V100 server:

1. build a (scaled) synthetic OpenImages dataset and a server model,
2. profile the pipeline with DS-Analyzer and classify the bottleneck,
3. simulate single-server training with DALI (page cache) and with CoorDL
   (MinIO cache), and
4. report epoch times, stall breakdowns and the speedup.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro.cluster import config_ssd_v100
from repro.compute import RESNET18
from repro.datasets import SyntheticDataset, get_dataset_spec
from repro.dsanalyzer import DataStallPredictor, DSAnalyzerProfiler, summarize
from repro.sim import SingleServerTraining
from repro.units import speedup

#: Fraction of the real OpenImages corpus to simulate (keeps the run < 1 min).
SCALE = 1.0 / 50.0
CACHE_FRACTION = 0.65


def main() -> None:
    dataset = SyntheticDataset(get_dataset_spec("openimages"), scale=SCALE)
    server = config_ssd_v100(cache_bytes=dataset.total_bytes * CACHE_FRACTION)
    model = RESNET18

    print(f"dataset : {dataset.name}  ({len(dataset):,} items, "
          f"{dataset.total_bytes / 1e9:.1f} GB at this scale)")
    print(f"server  : {server.name}  ({server.num_gpus}x {server.gpu.name}, "
          f"{server.physical_cores} cores, cache {CACHE_FRACTION:.0%} of the dataset)")
    print()

    # --- 1. DS-Analyzer: where is the bottleneck? --------------------------
    profiler = DSAnalyzerProfiler(model, dataset, server, gpu_prep=True)
    predictor = DataStallPredictor(profiler.profile())
    print(summarize(predictor, CACHE_FRACTION))
    print()

    # --- 2. Simulate training with DALI and with CoorDL --------------------
    training = SingleServerTraining(model, dataset, server, num_epochs=3)
    results = {kind: training.run(kind) for kind in ("dali-shuffle", "coordl")}

    print(f"{'loader':<14}{'epoch (s)':>12}{'fetch stall':>14}{'prep stall':>13}"
          f"{'disk GB':>10}{'miss %':>9}")
    for kind, result in results.items():
        epoch = result.run.steady_epoch()
        print(f"{kind:<14}{epoch.epoch_time_s:>12.1f}"
              f"{epoch.fetch_stall_fraction:>13.0%}{epoch.prep_stall_fraction:>12.0%}"
              f"{epoch.io.disk_bytes / 1e9:>10.2f}{epoch.cache_miss_ratio:>8.0%}")

    gain = speedup(results["dali-shuffle"].steady_epoch_time_s,
                   results["coordl"].steady_epoch_time_s)
    print(f"\nCoorDL (MinIO cache) speedup over DALI: {gain:.2f}x")


if __name__ == "__main__":
    main()
