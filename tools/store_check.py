#!/usr/bin/env python3
"""CI gate for the content-addressed sweep result store (``repro.store``).

Runs small reference grids twice against one store directory and enforces
the store contract end to end:

* the cold pass simulates every point (all misses) and populates the store;
* the warm pass performs **zero simulations** (every point is a store hit —
  simulation is fenced off by instrumentation, not inferred from timing);
* the warm :meth:`~repro.sim.sweep.SweepResult.snapshot` is byte-identical
  to the cold one.

Store statistics land in ``BENCH_store.json`` at the repository root so CI
can upload them alongside ``BENCH_sweep.json``.

Run as ``make store-check`` (or ``PYTHONPATH=src python tools/store_check.py``).
The store directory comes from ``REPRO_SWEEP_STORE`` when set (what the CI
leg does), else a temporary directory.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.harness import GOLDEN_GRIDS, snapshot_diff  # noqa: E402
from repro.sim.sweep import SweepRunner  # noqa: E402
from repro.store import STORE_ENV_VAR, SweepStore  # noqa: E402

#: Grids the gate replays (cheap but covering all three record kinds).
CHECKED_GRIDS = ("fig3_small", "fig9b_small", "tab7_small")

#: Where the store statistics land (repo root, uploaded as a CI artifact).
REPORT_PATH = REPO_ROOT / "BENCH_store.json"


def run_gate(directory: pathlib.Path) -> dict:
    """Run the cold/warm passes; return the stats payload (raises on fail)."""
    simulated = []
    original_run_point = SweepRunner._run_point

    def counting_run_point(self, point):
        simulated.append(point)
        return original_run_point(self, point)

    SweepRunner._run_point = counting_run_point
    try:
        grids = {name: GOLDEN_GRIDS[name] for name in CHECKED_GRIDS}
        # workers=0 pins the serial executor: the gate counts simulations
        # through a parent-process instrumentation hook that spawn workers
        # would not see, and the store contract is worker-count-invariant
        # anyway (tests/test_store.py covers workers=0/1/4).
        cold_store = SweepStore(directory)
        start = time.perf_counter()
        cold = {name: grid.build_runner().run(grid.points(), workers=0,
                                              store=cold_store).snapshot()
                for name, grid in grids.items()}
        cold_s = time.perf_counter() - start
        cold_simulated = len(simulated)
        if cold_store.hits or cold_store.puts != cold_simulated:
            raise AssertionError(
                f"cold pass expected all misses: {cold_store.hits} hits, "
                f"{cold_store.puts} puts, {cold_simulated} simulations")

        warm_store = SweepStore(directory)
        start = time.perf_counter()
        warm = {name: grid.build_runner().run(grid.points(), workers=0,
                                              store=warm_store).snapshot()
                for name, grid in grids.items()}
        warm_s = time.perf_counter() - start
        warm_simulated = len(simulated) - cold_simulated
        if warm_simulated or warm_store.misses:
            raise AssertionError(
                f"warm pass simulated {warm_simulated} points / "
                f"{warm_store.misses} store misses (expected all hits)")
        for name in grids:
            diffs = snapshot_diff(cold[name], warm[name])
            if diffs:
                raise AssertionError(
                    f"{name}: warm snapshot diverged from cold "
                    f"(first differences: {diffs})")
    finally:
        SweepRunner._run_point = original_run_point

    stats = warm_store.stats()
    return {
        "schema": "repro-store-gate/1",
        "grids": list(CHECKED_GRIDS),
        "points": cold_simulated,
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 3) if warm_s else None,
        "store": stats.to_dict(),
    }


def main() -> int:
    env_dir = os.environ.get(STORE_ENV_VAR, "").strip()
    if env_dir:
        # A fresh scratch store *under* the configured directory: the gate's
        # cold pass must start from zero entries, and the ambient store may
        # already hold these exact grids (the golden tests populate it when
        # the whole suite runs store-backed — or a previous gate run did).
        pathlib.Path(env_dir).mkdir(parents=True, exist_ok=True)
        scratch = tempfile.mkdtemp(prefix="store-gate-", dir=env_dir)
        try:
            payload = run_gate(pathlib.Path(scratch))
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
    else:
        with tempfile.TemporaryDirectory() as scratch:
            payload = run_gate(pathlib.Path(scratch) / "sweep-store")
    REPORT_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n",
                           encoding="utf-8")
    print(f"store-check: {payload['points']} points over "
          f"{len(payload['grids'])} grids; warm pass all hits and "
          f"byte-identical (cold {payload['cold_s']:.2f} s, warm "
          f"{payload['warm_s']:.2f} s, {payload['speedup']}x); "
          f"stats -> {REPORT_PATH.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
