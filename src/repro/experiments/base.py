"""Shared infrastructure for the per-figure/per-table experiment modules.

Every experiment module exposes a ``run(...) -> ExperimentResult`` function.
An :class:`ExperimentResult` is a small, self-describing table: the paper
figure/table it reproduces, named columns, one row per configuration, and
free-form notes about scaling or substitutions.  The benchmark harness prints
these tables and asserts their qualitative shape; EXPERIMENTS.md records them
against the paper's numbers.

Experiments run on *scaled* synthetic datasets: simulating every one of the
millions of items in the real corpora is unnecessary because cache-fraction
behaviour, stall fractions, and speedups are scale-free.  The default scale
keeps tens of thousands of items per dataset, large enough for dozens of
minibatches per epoch at the paper's batch sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.datasets.catalog import get_dataset_spec
from repro.datasets.dataset import SyntheticDataset
from repro.exceptions import ConfigurationError

#: Default dataset scale for experiments (1/50th of the real corpus).
DEFAULT_SCALE = 1.0 / 50.0

#: Smaller scale used by experiments that sweep many configurations.
SWEEP_SCALE = 1.0 / 100.0


@dataclass
class ExperimentResult:
    """Tabular result of one reproduced figure or table.

    Attributes:
        experiment_id: Identifier matching DESIGN.md ("fig2", "tab6", ...).
        title: Human-readable description of what is reproduced.
        columns: Ordered column names of the table.
        rows: One mapping per row; keys are column names.
        notes: Free-form remarks (scaling, substitutions, caveats).
    """

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append one row; unknown columns are rejected to catch typos."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ConfigurationError(f"unknown columns {sorted(unknown)} for {self.experiment_id}")
        self.rows.append(dict(values))

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ConfigurationError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    def row_for(self, key_column: str, key_value: Any) -> Dict[str, Any]:
        """First row whose ``key_column`` equals ``key_value``."""
        for row in self.rows:
            if row.get(key_column) == key_value:
                return row
        raise ConfigurationError(f"no row with {key_column}={key_value!r}")

    def _formatted(self, value: Any) -> str:
        if isinstance(value, float):
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            return f"{value:,.3g}"
        return str(value)

    def format_table(self) -> str:
        """Render the result as a fixed-width text table."""
        header = [self.title, "=" * len(self.title)]
        widths = {
            col: max(len(col), *(len(self._formatted(r.get(col, ""))) for r in self.rows))
            if self.rows else len(col)
            for col in self.columns
        }
        header.append("  ".join(col.ljust(widths[col]) for col in self.columns))
        header.append("  ".join("-" * widths[col] for col in self.columns))
        body = [
            "  ".join(self._formatted(row.get(col, "")).ljust(widths[col])
                      for col in self.columns)
            for row in self.rows
        ]
        footer = [f"note: {n}" for n in self.notes]
        return "\n".join(header + body + footer)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (for JSON dumps in the bench harness)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(r) for r in self.rows],
            "notes": list(self.notes),
        }


def scaled_dataset(name: str, scale: float = DEFAULT_SCALE, seed: int = 0) -> SyntheticDataset:
    """Build a proportionally scaled synthetic dataset by catalog name."""
    return SyntheticDataset(get_dataset_spec(name), seed=seed, scale=scale)


def scaled_cache_bytes(dataset: SyntheticDataset, fraction: float) -> float:
    """Cache byte budget holding ``fraction`` of the (scaled) dataset."""
    return dataset.cache_capacity_for_fraction(fraction)


def relative(values: Sequence[float], baseline: float) -> List[float]:
    """Normalise a series to a baseline value (for "speedup vs DALI" plots)."""
    if baseline == 0:
        return [0.0 for _ in values]
    return [v / baseline for v in values]
