"""Storage device models.

The paper's fetch-stall analysis is driven by three numbers per device
(Fig. 1, Table 2): random-read bandwidth, sequential-read bandwidth, and a
fixed per-request overhead (seek/latency).  HDDs have a huge gap between
random and sequential reads (15 vs ~150 MB/s); SATA SSDs much less (530 vs
~550 MB/s); DRAM effectively none.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class StorageDevice:
    """Bandwidth/latency model of one storage tier.

    Attributes:
        name: Human-readable device name ("sata-ssd", "hdd", "dram").
        random_read_bw: Bytes/second for small random reads (the rate that
            matters for per-file image datasets).
        sequential_read_bw: Bytes/second for large sequential reads (the rate
            that matters for TFRecord chunks and DALI-seq).
        request_overhead_s: Fixed per-read overhead (seek + submission).
        capacity_bytes: Usable capacity of the device.
    """

    name: str
    random_read_bw: float
    sequential_read_bw: float
    request_overhead_s: float = 0.0
    capacity_bytes: float = units.TiB(1.8)

    def __post_init__(self) -> None:
        if self.random_read_bw <= 0 or self.sequential_read_bw <= 0:
            raise ConfigurationError("read bandwidths must be positive")
        if self.request_overhead_s < 0:
            raise ConfigurationError("request overhead cannot be negative")

    def read_time(self, nbytes: float, sequential: bool = False) -> float:
        """Seconds to read ``nbytes`` in one request."""
        if nbytes < 0:
            raise ConfigurationError("cannot read a negative number of bytes")
        bw = self.sequential_read_bw if sequential else self.random_read_bw
        return self.request_overhead_s + nbytes / bw

    def read_times_array(self, sizes: "np.ndarray",
                         sequential: bool = False) -> "np.ndarray":
        """Vectorised :meth:`read_time` over an array of request sizes."""
        sizes = np.asarray(sizes, dtype=np.float64)
        if sizes.size and float(sizes.min()) < 0:
            raise ConfigurationError("cannot read a negative number of bytes")
        bw = self.sequential_read_bw if sequential else self.random_read_bw
        return self.request_overhead_s + sizes / bw

    def effective_rate(self, nbytes: float, sequential: bool = False) -> float:
        """Observed bytes/second for a request of the given size."""
        t = self.read_time(nbytes, sequential=sequential)
        return units.safe_div(nbytes, t)


# ---------------------------------------------------------------------------
# Device presets calibrated to the paper (Fig. 1 and Table 2).
# ---------------------------------------------------------------------------

def sata_ssd(capacity_bytes: float = units.TiB(1.8)) -> StorageDevice:
    """SATA SSD of Config-SSD-V100: 530 MB/s random reads (Table 2)."""
    return StorageDevice(
        name="sata-ssd",
        random_read_bw=units.MBps(530),
        sequential_read_bw=units.MBps(550),
        request_overhead_s=20e-6,
        capacity_bytes=capacity_bytes,
    )


def hdd(capacity_bytes: float = units.TiB(1.8)) -> StorageDevice:
    """Magnetic disk of Config-HDD-1080Ti: 15–50 MB/s random reads (Table 2).

    We use the paper's Fig. 1 value of 15 MB/s for small random reads and a
    typical 150 MB/s for large sequential transfers.
    """
    return StorageDevice(
        name="hdd",
        random_read_bw=units.MBps(15),
        sequential_read_bw=units.MBps(150),
        request_overhead_s=2e-3,
        capacity_bytes=capacity_bytes,
    )


def dram(capacity_bytes: float = units.GiB(500)) -> StorageDevice:
    """DRAM tier used for cache hits; ~23 GB/s effective copy bandwidth.

    Fig. 1 quotes the cache path at tens of GB/s ("23 GB/s"); the exact value
    barely matters because DRAM is never the bottleneck.
    """
    return StorageDevice(
        name="dram",
        random_read_bw=units.GBps(23),
        sequential_read_bw=units.GBps(23),
        request_overhead_s=0.0,
        capacity_bytes=capacity_bytes,
    )
