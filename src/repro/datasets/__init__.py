"""Synthetic datasets, samplers, and record layouts (substrate)."""

from repro.datasets.catalog import (
    FMA,
    IMAGENET_1K,
    IMAGENET_22K,
    OPENIMAGES,
    OPENIMAGES_DETECTION,
    DatasetSpec,
    dataset_names,
    get_dataset_spec,
)
from repro.datasets.dataset import SyntheticDataset
from repro.datasets.records import RecordChunk, RecordLayout
from repro.datasets.sampler import (
    BatchSampler,
    DistributedSampler,
    RandomSampler,
    Sampler,
    SequentialSampler,
    ShuffleBufferSampler,
    verify_epoch_invariant,
)

__all__ = [
    "DatasetSpec",
    "SyntheticDataset",
    "RecordChunk",
    "RecordLayout",
    "Sampler",
    "SequentialSampler",
    "RandomSampler",
    "ShuffleBufferSampler",
    "DistributedSampler",
    "BatchSampler",
    "verify_epoch_invariant",
    "dataset_names",
    "get_dataset_spec",
    "IMAGENET_1K",
    "IMAGENET_22K",
    "OPENIMAGES",
    "OPENIMAGES_DETECTION",
    "FMA",
]
