"""CoorDL: coordinated data loading (MinIO, partitioned caching, coordinated prep)."""

from repro.coordl.coordinated_prep import (
    BatchAssignment,
    CoordinatedEpochRunner,
    CoordinatedPrepPlan,
)
from repro.coordl.failure import (
    FailureDetector,
    FailureEvent,
    JobState,
    RecoveryAction,
    TimeoutReport,
)
from repro.coordl.loader import CoorDL, HPSearchSession
from repro.coordl.minio_loader import CoorDLLoader, best_coordl_loader
from repro.coordl.partitioned_loader import PartitionedCoorDLLoader
from repro.coordl.staging import StagedBatch, StagingArea

__all__ = [
    "CoorDL",
    "CoorDLLoader",
    "best_coordl_loader",
    "PartitionedCoorDLLoader",
    "HPSearchSession",
    "CoordinatedPrepPlan",
    "CoordinatedEpochRunner",
    "BatchAssignment",
    "StagingArea",
    "StagedBatch",
    "FailureDetector",
    "FailureEvent",
    "TimeoutReport",
    "JobState",
    "RecoveryAction",
]
