"""Unit tests for storage devices, the file store, and I/O accounting."""

import pytest

from repro import units
from repro.exceptions import ConfigurationError
from repro.storage.device import StorageDevice, dram, hdd, sata_ssd
from repro.storage.filestore import FileStore
from repro.storage.iostats import IOStats


class TestStorageDevice:
    def test_read_time_scales_with_size(self):
        ssd = sata_ssd()
        assert ssd.read_time(units.MBps(530)) == pytest.approx(1.0, rel=0.01)
        assert ssd.read_time(0.0) == pytest.approx(ssd.request_overhead_s)

    def test_sequential_reads_use_sequential_bandwidth(self):
        disk = hdd()
        random_t = disk.read_time(10e6, sequential=False)
        seq_t = disk.read_time(10e6, sequential=True)
        assert seq_t < random_t

    def test_effective_rate_below_nominal_for_small_requests(self):
        disk = hdd()
        # An 8 ms seek dominates a 100 KB read: effective rate << 15 MB/s.
        assert disk.effective_rate(100_000) < disk.random_read_bw

    def test_paper_rates(self):
        assert sata_ssd().random_read_bw == units.MBps(530)
        assert hdd().random_read_bw == units.MBps(15)
        assert dram().random_read_bw > units.GBps(10)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            StorageDevice("bad", random_read_bw=0, sequential_read_bw=1)
        with pytest.raises(ConfigurationError):
            StorageDevice("bad", random_read_bw=1, sequential_read_bw=1,
                          request_overhead_s=-1)

    def test_negative_read_rejected(self):
        with pytest.raises(ConfigurationError):
            sata_ssd().read_time(-1)


class TestIOStats:
    def test_counters_accumulate_by_source(self):
        stats = IOStats()
        stats.record_disk(100.0)
        stats.record_disk(200.0, at_time=1.0)
        stats.record_cache(50.0)
        stats.record_remote(25.0)
        assert stats.disk_bytes == 300.0
        assert stats.disk_requests == 2
        assert stats.cache_requests == 1
        assert stats.remote_requests == 1
        assert stats.total_bytes == 375.0
        assert stats.total_requests == 4
        assert stats.timeline == [(1.0, 300.0)]

    def test_hit_ratio(self):
        stats = IOStats()
        assert stats.cache_hit_ratio == 0.0
        stats.record_cache(1.0)
        stats.record_disk(1.0)
        assert stats.cache_hit_ratio == pytest.approx(0.5)
        assert stats.miss_ratio == pytest.approx(0.5)

    def test_merge_and_reset(self):
        a, b = IOStats(), IOStats()
        a.record_disk(10.0, at_time=0.5)
        b.record_cache(5.0)
        merged = a.merged_with(b)
        assert merged.disk_bytes == 10.0
        assert merged.cache_bytes == 5.0
        a.reset()
        assert a.disk_bytes == 0.0
        assert a.timeline == []

    def test_bulk_timeline_materialises_lazily_and_in_order(self):
        stats = IOStats()
        stats.record_disk_bulk([10.0, 20.0], at_times=[0.1, 0.2])
        stats.record_disk(5.0, at_time=0.3)
        assert stats.timeline == [(0.1, 10.0), (0.2, 30.0), (0.3, 35.0)]

    def test_concurrent_timeline_reads_materialise_once(self):
        """Regression: concurrent store writers snapshot the same finished
        record from several threads, so the lazy chunk merge must be safe
        under racing readers — no duplicated or partially merged samples.
        (The materialised state is published as one atomic tuple.)"""
        import threading

        for _ in range(50):
            stats = IOStats()
            for chunk in range(8):
                base = float(chunk)
                stats.record_disk_bulk(
                    [1.0] * 64, at_times=[base + i / 64 for i in range(64)])
            expected_len = 8 * 64
            results = []
            lock = threading.Lock()
            barrier = threading.Barrier(6)

            def reader():
                barrier.wait()
                timeline = stats.timeline
                with lock:
                    results.append(list(timeline))

            threads = [threading.Thread(target=reader) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30)
            assert all(len(r) == expected_len for r in results)
            assert all(r == results[0] for r in results)
            assert len(stats.timeline) == expected_len


class TestFileStore:
    def test_reads_account_bytes_and_return_durations(self, tiny_dataset):
        store = FileStore(tiny_dataset, sata_ssd())
        duration = store.read_item(0)
        assert duration > 0
        assert store.stats.disk_bytes == pytest.approx(tiny_dataset.item_size(0))
        assert store.stats.disk_requests == 1

    def test_sequential_hint_changes_duration(self, tiny_dataset):
        random_store = FileStore(tiny_dataset, hdd(), sequential_hint=False)
        seq_store = FileStore(tiny_dataset, hdd(), sequential_hint=True)
        assert seq_store.read_item(0) < random_store.read_item(0)

    def test_reset_stats(self, tiny_dataset):
        store = FileStore(tiny_dataset, sata_ssd())
        store.read_item(1)
        store.reset_stats()
        assert store.stats.disk_requests == 0
