"""Byte, bandwidth, and time unit helpers.

The paper quotes sizes in GiB/GB and rates in MB/s; internally everything in
this library is stored in plain bytes, bytes/second, and seconds.  These
helpers keep conversions explicit and readable at call sites, e.g.::

    cache_capacity = GiB(500)
    ssd_rate = MBps(530)
"""

from __future__ import annotations

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

KIB = 1024
MIB = 1024 ** 2
GIB = 1024 ** 3
TIB = 1024 ** 4


def KiB(n: float) -> float:
    """Convert binary kilobytes to bytes."""
    return n * KIB


def MiB(n: float) -> float:
    """Convert binary megabytes to bytes."""
    return n * MIB


def GiB(n: float) -> float:
    """Convert binary gigabytes to bytes."""
    return n * GIB


def TiB(n: float) -> float:
    """Convert binary terabytes to bytes."""
    return n * TIB


def MBps(n: float) -> float:
    """Convert megabytes-per-second to bytes-per-second."""
    return n * MB


def GBps(n: float) -> float:
    """Convert gigabytes-per-second to bytes-per-second."""
    return n * GB


def Gbps(n: float) -> float:
    """Convert gigabits-per-second to bytes-per-second."""
    return n * GB / 8.0


def to_GiB(n_bytes: float) -> float:
    """Convert bytes to binary gigabytes (for reporting)."""
    return n_bytes / GIB


def to_GB(n_bytes: float) -> float:
    """Convert bytes to decimal gigabytes (for reporting)."""
    return n_bytes / GB


def to_MBps(rate_bytes_per_s: float) -> float:
    """Convert bytes/second to MB/s (for reporting)."""
    return rate_bytes_per_s / MB


def hours(n: float) -> float:
    """Convert hours to seconds."""
    return n * 3600.0


def minutes(n: float) -> float:
    """Convert minutes to seconds."""
    return n * 60.0


def to_hours(seconds: float) -> float:
    """Convert seconds to hours (for reporting)."""
    return seconds / 3600.0


def safe_div(numerator: float, denominator: float, default: float = 0.0) -> float:
    """Divide, returning ``default`` when the denominator is zero.

    Rate arithmetic frequently divides by measured quantities that can be zero
    (e.g. "bytes read from disk" when everything was cached); this keeps those
    call sites short and intention-revealing.
    """
    if denominator == 0:
        return default
    return numerator / denominator


def speedup(baseline: float, improved: float) -> float:
    """Return how many times faster ``improved`` is than ``baseline``.

    Both arguments are durations (seconds); a result of 2.0 means the improved
    system finished in half the time.
    """
    return safe_div(baseline, improved, default=float("inf"))
