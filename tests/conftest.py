"""Shared fixtures for the test suite.

Tests run on heavily scaled synthetic datasets (a few hundred to a few
thousand items): every behaviour under test — cache policies, stall
attribution, coordination invariants, speed-up directions — is scale-free.
"""

from __future__ import annotations

import pytest

from repro.cluster.configs import config_hdd_1080ti, config_ssd_v100
from repro.datasets.catalog import DatasetSpec
from repro.datasets.dataset import SyntheticDataset


@pytest.fixture
def tiny_spec() -> DatasetSpec:
    """A 200-item image dataset with ImageNet-like item sizes."""
    return DatasetSpec(
        name="tiny-imagenet",
        task="image_classification",
        num_items=200,
        mean_item_bytes=120_000.0,
        item_size_cv=0.4,
    )


@pytest.fixture
def tiny_dataset(tiny_spec: DatasetSpec) -> SyntheticDataset:
    """Materialised 200-item dataset (deterministic, seed 0)."""
    return SyntheticDataset(tiny_spec, seed=0)


@pytest.fixture
def small_dataset() -> SyntheticDataset:
    """A 2 000-item dataset used by the scenario-level tests."""
    spec = DatasetSpec(
        name="small-openimages",
        task="image_classification",
        num_items=2_000,
        mean_item_bytes=300_000.0,
        item_size_cv=0.5,
    )
    return SyntheticDataset(spec, seed=1)


@pytest.fixture
def ssd_server():
    """Config-SSD-V100 with its default cache budget."""
    return config_ssd_v100()


@pytest.fixture
def hdd_server():
    """Config-HDD-1080Ti with its default cache budget."""
    return config_hdd_1080ti()


def cache_bytes_for(dataset: SyntheticDataset, fraction: float) -> float:
    """Byte budget holding ``fraction`` of a dataset (test helper)."""
    return dataset.total_bytes * fraction
