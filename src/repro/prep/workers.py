"""CPU worker pools and DALI-style GPU prep offload.

The rate at which samples can be pre-processed depends on the number of CPU
cores dedicated to prep and on whether (part of) the pipeline is offloaded to
the GPU.  The paper makes three empirical points this model captures:

* prep throughput scales linearly with *physical* cores, but hyper-threads
  add only ~30 % (Appendix B.1);
* DALI's GPU offload adds throughput proportional to GPU speed, but consumes
  2–5 GB of GPU memory and *hurts* compute-heavy models because prep kernels
  compete with training kernels (Appendix B.2);
* with ``k`` concurrent jobs on a server the cores are split ``k`` ways, which
  is what makes HP search prep-bound (Sec. 3.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.prep.pipeline import PrepPipeline
from repro.units import safe_div


@dataclass(frozen=True)
class WorkerPool:
    """CPU cores (and optional GPU offload capacity) available to one loader.

    Attributes:
        physical_cores: Physical CPU cores dedicated to this loader's prep.
        hyperthreads: Additional hardware threads beyond the physical cores
            (each contributes ``hyperthread_efficiency`` of a core).
        hyperthread_efficiency: Marginal throughput of one hyperthread
            relative to one physical core (~0.30 per Appendix B.1).
        gpu_offload: Whether DALI GPU-prep is enabled.
        gpu_decode_rate_scale: Relative speed of the GPU at offloaded prep
            (1.0 = V100; a 1080Ti is slower).
    """

    physical_cores: float
    hyperthreads: float = 0.0
    hyperthread_efficiency: float = 0.30
    gpu_offload: bool = False
    gpu_decode_rate_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.physical_cores < 0 or self.hyperthreads < 0:
            raise ConfigurationError("core counts cannot be negative")
        if self.physical_cores == 0 and self.hyperthreads == 0:
            raise ConfigurationError("a worker pool needs at least one thread")

    @property
    def effective_cores(self) -> float:
        """Core-equivalents of the pool (hyperthreads discounted)."""
        return self.physical_cores + self.hyperthreads * self.hyperthread_efficiency

    def split(self, num_jobs: int) -> "WorkerPool":
        """Evenly divide the pool among ``num_jobs`` co-located jobs."""
        if num_jobs <= 0:
            raise ConfigurationError("need at least one job")
        return WorkerPool(
            physical_cores=self.physical_cores / num_jobs,
            hyperthreads=self.hyperthreads / num_jobs,
            hyperthread_efficiency=self.hyperthread_efficiency,
            gpu_offload=self.gpu_offload,
            gpu_decode_rate_scale=self.gpu_decode_rate_scale,
        )

    def prep_rate(self, pipeline: PrepPipeline, mean_raw_bytes: float,
                  num_gpus_for_offload: int = 0) -> float:
        """Steady-state prep throughput in samples/second.

        Args:
            pipeline: Pre-processing pipeline describing per-sample cost.
            mean_raw_bytes: Average raw item size of the dataset.
            num_gpus_for_offload: GPUs whose spare cycles run offloaded
                stages (only used when ``gpu_offload`` is set).
        """
        cost = pipeline.sample_cost(mean_raw_bytes, gpu_offload=self.gpu_offload)
        cpu_rate = safe_div(self.effective_cores, cost.cpu_core_seconds,
                            default=float("inf"))
        if not self.gpu_offload or cost.gpu_seconds == 0.0:
            return cpu_rate
        gpus = max(1, num_gpus_for_offload)
        gpu_rate = safe_div(gpus * self.gpu_decode_rate_scale, cost.gpu_seconds,
                            default=float("inf"))
        # CPU stages and GPU stages run as a two-stage pipeline per sample:
        # throughput is limited by the slower of the two stages.
        return min(cpu_rate, gpu_rate)

    def prep_time_for_batch(self, pipeline: PrepPipeline, batch_raw_bytes: float,
                            batch_size: int, num_gpus_for_offload: int = 0) -> float:
        """Wall-clock seconds to prep one minibatch of the given total size."""
        if batch_size <= 0:
            return 0.0
        mean_bytes = batch_raw_bytes / batch_size
        rate = self.prep_rate(pipeline, mean_bytes, num_gpus_for_offload)
        return safe_div(batch_size, rate)
