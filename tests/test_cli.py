"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.experiments import registry
from repro.store import STORE_ENV_VAR, SweepStore


class TestCLI:
    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(registry.experiment_ids())

    def test_run_experiment_prints_table(self, capsys):
        assert main(["run-experiment", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "MinIO" in out and "page cache" in out

    def test_run_experiment_with_scale(self, capsys):
        assert main(["run-experiment", "fig1", "--scale", "0.002"]) == 0
        assert "ResNet18" in capsys.readouterr().out

    def test_profile_command(self, capsys):
        code = main(["profile", "resnet18", "openimages", "config-ssd-v100",
                     "--cache", "0.5", "--scale", "0.002", "--gpu-prep"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GPU ingestion rate" in out
        assert "Recommended cache" in out

    def test_report_command_writes_file(self, tmp_path, capsys):
        # Use a large scale divisor to keep the full report generation fast.
        output = tmp_path / "EXPERIMENTS_test.md"
        assert main(["report", "-o", str(output), "--scale", "0.002"]) == 0
        text = output.read_text()
        assert "# EXPERIMENTS" in text
        assert "Fig. 9" in text

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fly-to-the-moon"])

    def test_unknown_experiment_raises_library_error(self):
        from repro.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError):
            main(["run-experiment", "fig99"])


class TestCLIStore:
    def test_run_experiment_populates_and_reuses_the_store(self, tmp_path,
                                                           capsys):
        store_dir = tmp_path / "store"
        args = ["run-experiment", "fig3", "--scale", "0.002",
                "--store", str(store_dir)]
        assert main(args) == 0
        entries = SweepStore(store_dir).stats().entries
        assert entries > 0
        first = capsys.readouterr().out
        # The warm re-run serves every point from the store and prints the
        # identical table (rehydrated records are bit-exact).
        assert main(args) == 0
        assert capsys.readouterr().out == first
        assert SweepStore(store_dir).stats().entries == entries

    def test_no_store_beats_the_environment_default(self, tmp_path,
                                                    monkeypatch, capsys):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "ambient"))
        assert main(["run-experiment", "fig3", "--scale", "0.002",
                     "--no-store"]) == 0
        assert not (tmp_path / "ambient").exists()

    def test_store_flag_on_experiment_without_sweeps_warns(self, tmp_path,
                                                           capsys):
        assert main(["run-experiment", "fig8",
                     "--store", str(tmp_path / "s")]) == 0
        assert "ignoring --store" in capsys.readouterr().err

    def test_store_management_subcommands(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(["run-experiment", "fig3", "--scale", "0.002",
                     "--store", str(store_dir)]) == 0
        capsys.readouterr()

        assert main(["store", "stats", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and str(store_dir) in out

        assert main(["store", "gc", "--max-entries", "1",
                     "--store", str(store_dir)]) == 0
        assert "entries" in capsys.readouterr().out
        assert SweepStore(store_dir).stats().entries == 1

        assert main(["store", "invalidate", "--store", str(store_dir)]) == 0
        assert "invalidated 1 entries" in capsys.readouterr().out
        assert SweepStore(store_dir).stats().entries == 0

    def test_sqlite_store_uri_round_trips_through_the_cli(self, tmp_path,
                                                          capsys):
        """--store sqlite://FILE selects the SQLite backend end to end."""
        uri = f"sqlite://{tmp_path / 'store.db'}"
        args = ["run-experiment", "fig3", "--scale", "0.002", "--store", uri]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0  # warm: every point served from SQLite
        assert capsys.readouterr().out == first

        assert main(["store", "stats", "--store", uri]) == 0
        out = capsys.readouterr().out
        assert "[sqlite]" in out and "entries" in out

    def test_store_migrate_subcommand(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(["run-experiment", "fig3", "--scale", "0.002",
                     "--store", str(store_dir)]) == 0
        entries = SweepStore(store_dir).stats().entries
        first = capsys.readouterr().out

        uri = f"sqlite://{tmp_path / 'store.db'}"
        assert main(["store", "migrate", "--store", str(store_dir),
                     "--to", uri]) == 0
        out = capsys.readouterr().out
        assert f"migrated {entries} entries" in out and "[sqlite]" in out

        # The migrated store serves the experiment warm, byte-identically.
        assert main(["run-experiment", "fig3", "--scale", "0.002",
                     "--store", uri]) == 0
        assert capsys.readouterr().out == first
        assert SweepStore(uri).stats().entries == entries

    def test_store_subcommand_reads_the_environment_default(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "ambient"))
        assert main(["store", "stats"]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_store_subcommand_without_directory_fails(self, monkeypatch):
        from repro.exceptions import ConfigurationError
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        with pytest.raises(ConfigurationError):
            main(["store", "stats"])
