"""Request coalescing for the what-if sweep service.

Concurrent clients of one serve daemon tend to ask overlapping questions —
the same grid point shows up in many what-if queries (that is the entire
premise of the content-addressed store).  :class:`CoalescingBatcher` is
the in-memory, in-flight counterpart of that dedup:

* every submitted point resolves to its **content address**
  (:func:`repro.store.store_key` over
  :meth:`~repro.sim.sweep.SweepRunner.point_spec`), the same key the
  store uses, so "the same point" means the same thing in flight and at
  rest;
* points whose key is already in flight (for *any* concurrent request)
  attach to the existing :class:`PointFuture` instead of being simulated
  again — each unique point is simulated **at most once per cold pass**
  no matter how many overlapping requests race;
* fresh points from requests arriving within one coalescing window
  (``window_s``) are merged into a single
  :meth:`~repro.sim.sweep.SweepRunner.run` call per runner
  configuration, resolved point by point through the runner's
  ``on_record`` streaming hook;
* every batch drains on its **own thread**, so a slow batch never blocks
  a later, unrelated fast one (no head-of-line blocking across batches) —
  dedup against in-flight futures keeps concurrent batches disjoint;
* a batch failure (a crashed worker, a failing point) fails only the
  points that never completed, and those are **retried** up to
  ``max_attempts`` times before their futures carry the error — a
  transient crash degrades to recomputation, and a waiter is always
  released (never a hung request).

Requests get a :class:`QueryTicket`; :meth:`QueryTicket.wait` enforces the
per-request deadline, returning each point's :class:`PointOutcome` in the
request's own input order — completed records, errors, or an explicit
``timed_out`` marker for points still in flight when the deadline passed
(the simulation keeps running and lands in the store for the next query).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.resilience.faults import FaultInjector, active_injector
from repro.sim.sweep import SweepPoint, SweepRecord, SweepRunner
from repro.store import PersistentPool, SweepStore, store_key

#: Default coalescing window: how long the dispatcher holds freshly
#: submitted points so racing requests can merge into one ``run()`` call.
#: Small against simulation cost (tens of ms per point), large against
#: thread-scheduling jitter.
DEFAULT_WINDOW_S = 0.01

#: Default simulation attempts per point (1 initial + 1 retry): a
#: transiently crashed worker degrades to recomputation, a deterministic
#: failure surfaces after the retry.
DEFAULT_MAX_ATTEMPTS = 2


class PointFuture:
    """Completion cell for one in-flight unique point.

    Shared by every request that asked for the point; resolves exactly
    once, with either a :class:`~repro.sim.sweep.SweepRecord` or an error.
    """

    __slots__ = ("key", "_event", "record", "error")

    def __init__(self, key: str) -> None:
        self.key = key
        self._event = threading.Event()
        self.record: Optional[SweepRecord] = None
        self.error: Optional[BaseException] = None

    def resolve(self, record: SweepRecord) -> None:
        """Complete successfully (first resolution wins; later ones no-op)."""
        if not self._event.is_set():
            self.record = record
            self._event.set()

    def fail(self, error: BaseException) -> None:
        """Complete with an error (no-op if already resolved)."""
        if not self._event.is_set():
            self.error = error
            self._event.set()

    @property
    def done(self) -> bool:
        """Whether the future has resolved (either way)."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float]) -> bool:
        """Block until resolved or ``timeout`` elapses; True if resolved."""
        return self._event.wait(timeout)


@dataclass
class PointOutcome:
    """Per-point result of one request, in the request's input order.

    ``status`` is ``"ok"`` (``record`` is set), ``"error"`` (``error``
    carries the message) or ``"timed_out"`` (the point was still in
    flight at the request's deadline; its simulation continues and will
    be a store hit for the next query).
    """

    point: SweepPoint
    status: str
    record: Optional[SweepRecord] = None
    error: Optional[str] = None


class QueryTicket:
    """Handle for one submitted request: its points and their futures."""

    def __init__(self, points: Sequence[SweepPoint],
                 futures: Sequence[PointFuture]) -> None:
        self._points = list(points)
        self._futures = list(futures)

    @property
    def points(self) -> List[SweepPoint]:
        """The request's points, in input order."""
        return list(self._points)

    def wait(self, deadline_s: Optional[float] = None) -> List[PointOutcome]:
        """Collect per-point outcomes, honouring the request deadline.

        Blocks at most ``deadline_s`` seconds in total (``None``: until
        every point resolves).  Returns one :class:`PointOutcome` per
        requested point, in input order; points unresolved at the
        deadline come back as ``timed_out`` — partial results are
        returned, never thrown away.
        """
        deadline = (None if deadline_s is None
                    else time.monotonic() + max(0.0, deadline_s))
        outcomes: List[PointOutcome] = []
        for point, future in zip(self._points, self._futures):
            if deadline is None:
                future.wait(None)
            elif not future.done:
                remaining = deadline - time.monotonic()
                if remaining > 0:
                    future.wait(remaining)
            if not future.done:
                outcomes.append(PointOutcome(point=point, status="timed_out"))
            elif future.error is not None:
                outcomes.append(PointOutcome(point=point, status="error",
                                             error=str(future.error)))
            else:
                outcomes.append(PointOutcome(point=point, status="ok",
                                             record=future.record))
        return outcomes


class CoalescingBatcher:
    """Coalesce concurrent what-if requests into shared sweep runs.

    Args:
        store: Shared :class:`~repro.store.SweepStore` every batch runs
            against (hits resolve without simulating); ``None`` disables
            persistence (in-flight dedup still applies).
        pool: Shared :class:`~repro.store.PersistentPool` the batches'
            simulations fan out over; ``None`` simulates on the batch
            thread (``workers`` processes per run, 0 = in-process).
        workers: Per-run worker count when no pool is given.
        window_s: Coalescing window (see :data:`DEFAULT_WINDOW_S`).
        max_attempts: Simulation attempts per point before its future
            carries the error (see :data:`DEFAULT_MAX_ATTEMPTS`);
            ``ServeDaemon(point_retries=N)`` configures it as ``N + 1``.
        fault_injector: Optional
            :class:`~repro.resilience.FaultInjector` whose batch-stall
            schedule fires before each batch ``run()`` attempt; defaults
            to the process-wide injector (``REPRO_FAULT_PLAN``), which
            is ``None`` — no injection, no overhead — in normal
            operation.

    Counters (for ``/v1/stats`` and the tests): ``submitted_requests``,
    ``submitted_points``, ``attached_points`` (dedup against an in-flight
    future), ``batches`` (one per ``run()`` call), ``batched_points``,
    ``point_retries`` (points re-attempted after a failed attempt).
    """

    def __init__(self, store: Optional[SweepStore] = None,
                 pool: Optional[PersistentPool] = None,
                 workers: int = 0,
                 window_s: float = DEFAULT_WINDOW_S,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 fault_injector: Optional[FaultInjector] = None) -> None:
        if window_s < 0:
            raise ConfigurationError("window_s must be >= 0")
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        self._store = store
        self._pool = pool
        self._workers = workers
        self._window_s = window_s
        self._max_attempts = max_attempts
        self._injector = (fault_injector if fault_injector is not None
                          else active_injector())
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._inflight: Dict[str, PointFuture] = {}
        # Pending fresh work, grouped by runner spec: spec-token ->
        # (runner instance, [(point, future), ...]).
        self._pending: Dict[tuple, Tuple[SweepRunner,
                                         List[Tuple[SweepPoint,
                                                    PointFuture]]]] = {}
        self._closed = False
        self._batch_threads: List[threading.Thread] = []
        self.submitted_requests = 0
        self.submitted_points = 0
        self.attached_points = 0
        self.batches = 0
        self.batched_points = 0
        self.point_retries = 0
        self._dispatcher = threading.Thread(target=self._dispatch_loop,
                                            name="repro-serve-batcher",
                                            daemon=True)
        self._dispatcher.start()

    # -- request side --------------------------------------------------------

    def submit(self, runner: SweepRunner,
               points: Sequence[SweepPoint]) -> QueryTicket:
        """Register a request; returns its :class:`QueryTicket`.

        Never blocks on simulation: fresh points are queued for the
        dispatcher, overlapping points attach to in-flight futures.
        """
        points = list(points)
        if not points:
            raise ConfigurationError("a query needs at least one point")
        # Key computation (content addressing) happens outside the lock —
        # it hashes the full point spec and needs no shared state.
        keyed = [(point, store_key(runner.point_spec(point)))
                 for point in points]
        futures: List[PointFuture] = []
        with self._lock:
            if self._closed:
                raise ConfigurationError("batcher is closed")
            self.submitted_requests += 1
            self.submitted_points += len(points)
            spec_token = runner.spec()
            for point, key in keyed:
                future = self._inflight.get(key)
                if future is not None:
                    self.attached_points += 1
                else:
                    future = PointFuture(key)
                    self._inflight[key] = future
                    group = self._pending.get(spec_token)
                    if group is None:
                        self._pending[spec_token] = (runner, [(point, future)])
                    else:
                        group[1].append((point, future))
                futures.append(future)
            self._wake.notify_all()
        return QueryTicket(points, futures)

    # -- dispatcher ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._pending and not self._closed:
                    self._wake.wait()
                if self._closed and not self._pending:
                    return
            # Coalescing window: give racing submitters a moment to merge
            # into this dispatch before the batch is frozen.
            if self._window_s:
                time.sleep(self._window_s)
            with self._lock:
                drained, self._pending = self._pending, {}
                self._batch_threads = [t for t in self._batch_threads
                                       if t.is_alive()]
                # Each batch runs (and drains) on its own thread — a slow
                # batch occupies its thread, never the dispatcher, so it
                # cannot head-of-line-block a later fast batch.  Started
                # under the lock so close() only ever joins started
                # threads; _run_batch's own first lock acquisition simply
                # waits for this drain to finish.
                for runner, entries in drained.values():
                    thread = threading.Thread(
                        target=self._run_batch, args=(runner, entries),
                        name="repro-serve-batch", daemon=True)
                    self._batch_threads.append(thread)
                    thread.start()

    def _run_entries(self, runner: SweepRunner,
                     entries: List[Tuple[SweepPoint, PointFuture]],
                     ) -> Optional[BaseException]:
        """One ``run()`` attempt over ``entries``; returns the failure, if any.

        Every point that completes — store hit or fresh simulation, even
        when a later point's failure eventually raises — resolves its
        future through the runner's ``on_record`` streaming hook, so
        waiters (and the dedup map) see completions the moment they
        happen, not when the batch ends.
        """
        futures = [future for _, future in entries]

        def on_record(index: int, record: SweepRecord) -> None:
            future = futures[index]
            future.resolve(record)
            with self._lock:
                self._inflight.pop(future.key, None)

        with self._lock:
            self.batches += 1
            self.batched_points += len(entries)
        if self._injector is not None:
            # Planned batch stall: models a slow/contended run attempt so
            # deadline handling and admission control can be exercised
            # deterministically.
            stall_s = self._injector.batch_stall()
            if stall_s > 0:
                time.sleep(stall_s)
        try:
            runner.run([point for point, _ in entries],
                       workers=self._workers, store=self._store,
                       pool=self._pool, on_record=on_record)
            return None
        except Exception as exc:
            return exc

    def _run_batch(self, runner: SweepRunner,
                   entries: List[Tuple[SweepPoint, PointFuture]]) -> None:
        remaining = list(entries)
        error: Optional[BaseException] = None
        # Batched attempts (all but the last): the whole remainder through
        # one run() call.  Retrying only what never resolved means a
        # crashed worker degrades to recomputation of its points alone.
        for attempt in range(max(1, self._max_attempts - 1)):
            if not remaining:
                break
            if attempt:
                with self._lock:
                    self.point_retries += len(remaining)
            error = self._run_entries(runner, remaining)
            remaining = [(point, future) for point, future in remaining
                         if not future.done]
            if error is None:
                break
        # Final attempt, point by point: a deterministically-failing point
        # must fail alone, not poison unrelated points that happened to
        # share its batch (the serial executor stops at the first failure).
        if remaining and self._max_attempts > 1:
            for entry in remaining:
                point, future = entry
                if future.done:
                    continue
                with self._lock:
                    self.point_retries += 1
                point_error = self._run_entries(runner, [entry])
                if point_error is not None and not future.done:
                    future.fail(point_error)
                    with self._lock:
                        self._inflight.pop(future.key, None)
            remaining = [(point, future) for point, future in remaining
                         if not future.done]
        # Exhausted attempts (or closed mid-way): release every waiter.
        if remaining:
            failure = error or ConfigurationError(
                "batch ended without resolving every point")
            for _, future in remaining:
                future.fail(failure)
                with self._lock:
                    self._inflight.pop(future.key, None)

    # -- stats / lifecycle ---------------------------------------------------

    @property
    def inflight_points(self) -> int:
        """Points currently queued or running (dedup keys held)."""
        with self._lock:
            return len(self._inflight)

    def stats(self) -> Dict[str, Any]:
        """Session counters (plain dict, ready for the stats endpoint)."""
        with self._lock:
            return {
                "submitted_requests": self.submitted_requests,
                "submitted_points": self.submitted_points,
                "attached_points": self.attached_points,
                "batches": self.batches,
                "batched_points": self.batched_points,
                "point_retries": self.point_retries,
                "inflight_points": len(self._inflight),
            }

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop dispatching and join outstanding batches (best-effort).

        Already-dispatched batches are allowed to finish (bounded by
        ``timeout_s`` each); queued-but-undispatched futures are failed so
        no waiter hangs on a closed batcher.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            undispatched, self._pending = self._pending, {}
            self._wake.notify_all()
            threads = list(self._batch_threads)
        for _, entries in undispatched.values():
            for _, future in entries:
                future.fail(ConfigurationError("batcher closed"))
                with self._lock:
                    self._inflight.pop(future.key, None)
        self._dispatcher.join(timeout_s)
        for thread in threads:
            thread.join(timeout_s)

    def __enter__(self) -> "CoalescingBatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
