"""Table 5 — DS-Analyzer's predicted versus empirical training speed.

DS-Analyzer predicts the training speed for a hypothetical cache size from
four measured rates (G, P, C, S) using Eq. 4; the paper validates the
prediction against real runs of AlexNet on Config-SSD-V100 at 25/35/50 %
cache and finds at most 4 % error.  Here the "empirical" values come from the
full pipelined simulation with a MinIO cache of the same size, and the
predictions from the closed-form model — the two paths share no code, so the
comparison is meaningful.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import ALEXNET, ModelSpec
from repro.dsanalyzer.predictor import DataStallPredictor
from repro.dsanalyzer.profiler import DSAnalyzerProfiler
from repro.experiments.base import DEFAULT_SCALE, ExperimentResult, scaled_dataset
from repro.sim.single_server import SingleServerTraining

DEFAULT_FRACTIONS = (0.25, 0.35, 0.5)


def run(scale: float = DEFAULT_SCALE, model: ModelSpec = ALEXNET,
        dataset_name: str = "imagenet-1k",
        fractions: Sequence[float] = DEFAULT_FRACTIONS,
        seed: int = 0) -> ExperimentResult:
    """Reproduce the predicted-vs-empirical comparison of Table 5."""
    dataset = scaled_dataset(dataset_name, scale, seed)
    server = config_ssd_v100()
    profiler = DSAnalyzerProfiler(model, dataset, server, gpu_prep=False)
    predictor = DataStallPredictor(profiler.profile())

    result = ExperimentResult(
        experiment_id="tab5",
        title="Table 5 — DS-Analyzer predicted vs empirical training speed "
              f"({model.name}, Config-SSD-V100)",
        columns=["cache_pct", "predicted_samples_per_s", "empirical_samples_per_s",
                 "error_pct"],
        notes=["paper: predictions within 4% of the empirical values"],
    )
    for fraction in fractions:
        predicted = predictor.predict_training_speed(fraction)
        training = SingleServerTraining(
            model, dataset,
            server.with_cache_bytes(dataset.total_bytes * fraction),
            num_epochs=2)
        empirical = training.run("coordl", gpu_prep=False,
                                 seed=seed).run.steady_epoch().throughput
        error = abs(predicted - empirical) / empirical * 100.0
        result.add_row(
            cache_pct=100.0 * fraction,
            predicted_samples_per_s=predicted,
            empirical_samples_per_s=empirical,
            error_pct=error,
        )
    return result
