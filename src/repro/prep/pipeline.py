"""Pre-processing pipeline: combines transform stages into per-sample costs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.prep.transforms import Transform, expansion_factor, pipeline_for_task


@dataclass(frozen=True)
class PrepCost:
    """CPU/GPU split of the cost of prepping one sample."""

    cpu_core_seconds: float
    gpu_seconds: float

    def total(self) -> float:
        """Sum of CPU and GPU work (used only for reporting)."""
        return self.cpu_core_seconds + self.gpu_seconds


class PrepPipeline:
    """An ordered list of transforms applied to every sample.

    Args:
        stages: Transform stages in application order.
        task: Task family, used for the decoded-size expansion factor.
        gpu_offload_efficiency: When a stage is offloaded to the GPU, one
            second of CPU work becomes ``gpu_offload_efficiency`` seconds of
            GPU work (GPUs decode JPEGs several times faster than a core).
    """

    def __init__(self, stages: Sequence[Transform], task: str = "image_classification",
                 gpu_offload_efficiency: float = 0.25) -> None:
        if not stages:
            raise ConfigurationError("a prep pipeline needs at least one stage")
        if gpu_offload_efficiency <= 0:
            raise ConfigurationError("offload efficiency must be positive")
        self._stages = tuple(stages)
        self._task = task
        self._gpu_offload_efficiency = gpu_offload_efficiency

    @classmethod
    def for_task(cls, task: str, library: str = "dali") -> "PrepPipeline":
        """Build the standard pipeline for a task and dataloader library."""
        return cls(pipeline_for_task(task, library=library), task=task)

    @property
    def stages(self) -> Tuple[Transform, ...]:
        """Transform stages in order."""
        return self._stages

    @property
    def task(self) -> str:
        """Task family this pipeline serves."""
        return self._task

    @property
    def has_stochastic_stage(self) -> bool:
        """True when any stage applies random augmentation.

        If true, pre-processed output must be regenerated every epoch — the
        correctness constraint behind coordinated prep's within-epoch-only
        sharing (Sec. 4.3).
        """
        return any(stage.stochastic for stage in self._stages)

    def sample_cost(self, raw_bytes: float, gpu_offload: bool = False) -> PrepCost:
        """Cost of prepping one sample of the given raw size.

        Args:
            raw_bytes: Encoded on-disk size of the sample.
            gpu_offload: Whether offloadable stages run on the GPU (DALI's
                GPU-prep mode).
        """
        cpu = 0.0
        gpu = 0.0
        for stage in self._stages:
            cost = stage.cpu_cost(raw_bytes)
            if gpu_offload and stage.gpu_offloadable:
                gpu += cost * self._gpu_offload_efficiency
            else:
                cpu += cost
        return PrepCost(cpu_core_seconds=cpu, gpu_seconds=gpu)

    def cpu_seconds_per_sample(self, raw_bytes: float, gpu_offload: bool = False) -> float:
        """CPU core-seconds per sample (convenience wrapper)."""
        return self.sample_cost(raw_bytes, gpu_offload=gpu_offload).cpu_core_seconds

    def prepared_bytes(self, raw_bytes: float) -> float:
        """Size of the pre-processed (decoded, augmented) sample in memory."""
        return raw_bytes * expansion_factor(self._task)

    def with_scaled_cost(self, scale: float) -> "PrepPipeline":
        """Return a pipeline with every stage's cost multiplied by ``scale``.

        Used to apply per-dataset prep-cost scaling (OpenImages images are
        larger after decode than ImageNet's) without duplicating stage lists.
        """
        if scale <= 0:
            raise ConfigurationError("cost scale must be positive")
        scaled = tuple(
            Transform(
                name=s.name,
                cpu_seconds_per_byte=s.cpu_seconds_per_byte * scale,
                cpu_seconds_fixed=s.cpu_seconds_fixed * scale,
                gpu_offloadable=s.gpu_offloadable,
                stochastic=s.stochastic,
            )
            for s in self._stages
        )
        return PrepPipeline(scaled, task=self._task,
                            gpu_offload_efficiency=self._gpu_offload_efficiency)
