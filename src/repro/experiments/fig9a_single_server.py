"""Figure 9(a) — single-server training: CoorDL (MinIO) versus DALI.

For each model on its paper-assigned large dataset (OpenImages / FMA), the
server can cache roughly 65 % of the data.  CoorDL's MinIO cache removes the
page-cache thrashing, cutting per-epoch disk reads to the capacity minimum
and speeding training up by up to ~1.8x over DALI-seq (less over the stronger
DALI-shuffle baseline).  The (model x loader) grid runs through
:class:`~repro.sim.sweep.SweepRunner` on either server SKU.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.configs import config_hdd_1080ti, config_ssd_v100
from repro.compute.model_zoo import ALL_STALL_MODELS, ModelSpec
from repro.experiments.base import ExperimentResult, SWEEP_SCALE
from repro.sim.sweep import SweepRunner
from repro.units import speedup
from repro.store import PersistentPool, StoreArg


def run(scale: float = SWEEP_SCALE, cache_fraction: float = 0.65,
        models: Optional[Sequence[ModelSpec]] = None, server_name: str = "ssd-v100",
        num_epochs: int = 2, seed: int = 0,
        workers: Optional[int] = None,
        store: StoreArg = None,
        pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Reproduce the single-server speedup bars of Fig. 9(a)."""
    chosen = list(models) if models is not None else list(ALL_STALL_MODELS)
    factory = config_ssd_v100 if server_name == "ssd-v100" else config_hdd_1080ti
    runner = SweepRunner(factory, scale=scale, seed=seed)
    sweep = runner.run(SweepRunner.grid(
        models=chosen, loaders=["dali-seq", "dali-shuffle", "coordl"],
        cache_fractions=[cache_fraction], num_epochs=num_epochs),
        workers=workers, store=store, pool=pool)
    result = ExperimentResult(
        experiment_id="fig9a",
        title=f"Fig. 9(a) — single-server training speedup vs DALI ({factory().name}, "
              f"{cache_fraction:.0%} cache)",
        columns=["model", "dataset", "dali_seq_epoch_s", "dali_shuffle_epoch_s",
                 "coordl_epoch_s", "speedup_vs_seq", "speedup_vs_shuffle"],
        notes=["paper: up to 1.8x over DALI-seq (ShuffleNet/SSD) and ~1.2-1.5x over "
               "DALI-shuffle on Config-SSD-V100; 2.1x/1.5x for ResNet50 on HDD"],
    )
    for model in chosen:
        seq = sweep.one(model=model, loader="dali-seq").steady
        shuffle = sweep.one(model=model, loader="dali-shuffle").steady
        coordl_rec = sweep.one(model=model, loader="coordl")
        coordl = coordl_rec.steady
        result.add_row(
            model=model.name,
            dataset=coordl_rec.dataset_name,
            dali_seq_epoch_s=seq.epoch_time_s,
            dali_shuffle_epoch_s=shuffle.epoch_time_s,
            coordl_epoch_s=coordl.epoch_time_s,
            speedup_vs_seq=speedup(seq.epoch_time_s, coordl.epoch_time_s),
            speedup_vs_shuffle=speedup(shuffle.epoch_time_s, coordl.epoch_time_s),
        )
    return result
