"""Tests for the content-addressed sweep result store (``repro.store``).

Five contracts, each enforced against **both** store backends (the JSON
directory layout and the ``sqlite://`` single-file database) through one
parametrized ``location`` fixture:

* **key derivation** — every input that can move a simulated bit moves the
  key (runner spec, point spec incl. label, the warm-kernel kill-switch,
  the schema version, the simulator source digest), and proven-bit-neutral
  knobs (worker count) do not;
* **exact rehydration** — ``SweepRecord.from_snapshot`` inverts
  ``snapshot(include_timeline=True)`` bit for bit for all three record
  kinds, pinned against the committed golden grids at workers=0/1/4 with
  the warm pass fenced off from simulating anything;
* **corruption degrades to misses** — truncated/garbage/mis-keyed/
  wrong-point entries are re-simulated and repaired, never served —
  whether the damage is a mangled entry file or a mangled payload blob;
* **management** — stats/gc/invalidate and the ``store=`` argument
  resolution (explicit > environment default > ``False`` opt-out), with
  ``sqlite://PATH`` URIs selecting the SQLite backend;
* **migration** — ``migrate_store`` round-trips a populated store across
  backends with identical key sets and bit-identical rehydrated records.
"""

from __future__ import annotations

import json
import pathlib
import sqlite3
import zlib

import pytest

from repro.cache.warm_kernel import WARM_KERNEL_ENV_VAR
from repro.cluster.configs import config_hdd_1080ti, config_ssd_v100
from repro.compute.model_zoo import ALEXNET, RESNET18
from repro.exceptions import ConfigurationError, SweepPointError
from repro.sim.harness import GOLDEN_GRIDS, load_golden, snapshot_diff
from repro.sim.sweep import WORKERS_ENV_VAR, SweepPoint, SweepRecord, SweepRunner
from repro.store import (
    STORE_CODEC_ENV_VAR,
    STORE_CODECS,
    STORE_ENV_VAR,
    SqliteBackend,
    SweepStore,
    default_codec,
    migrate_store,
    resolve_store,
    source_digest,
    store_key,
)
from repro.store.backend import _zstd_functions

SCALE = 1 / 500.0

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

BACKENDS = ("json", "sqlite")


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def _location(tmp_path: pathlib.Path, backend: str, name: str = "store") -> str:
    if backend == "sqlite":
        return f"sqlite://{tmp_path / (name + '.db')}"
    return str(tmp_path / name)


@pytest.fixture
def location(tmp_path, backend) -> str:
    """A fresh store location string for the parametrized backend."""
    return _location(tmp_path, backend)


def _read_raw(store: SweepStore, key: str) -> bytes:
    """The physically stored bytes for ``key`` (file or payload blob)."""
    if store.backend.kind == "json":
        return store.entry_path(key).read_bytes()
    con = sqlite3.connect(str(store.backend.path))
    try:
        row = con.execute("SELECT payload FROM entries WHERE key = ?",
                          (key,)).fetchone()
        assert row is not None, f"no stored entry for {key}"
        return bytes(row[0])
    finally:
        con.close()


def _write_raw(store: SweepStore, key: str, data: bytes) -> None:
    """Overwrite ``key``'s stored bytes in place, bypassing the backend."""
    if store.backend.kind == "json":
        store.entry_path(key).write_bytes(data)
        return
    con = sqlite3.connect(str(store.backend.path))
    try:
        con.execute("UPDATE entries SET payload = ? WHERE key = ?",
                    (data, key))
        con.commit()
    finally:
        con.close()


def _runner(**overrides) -> SweepRunner:
    settings = dict(scale=SCALE, seed=0)
    settings.update(overrides)
    return SweepRunner(settings.pop("server_factory", config_ssd_v100),
                       **settings)


def _points():
    return [
        SweepPoint(model=RESNET18, loader="coordl", dataset="openimages",
                   cache_fraction=0.5),
        SweepPoint(model=RESNET18, loader="dali-shuffle", dataset="openimages",
                   cache_fraction=0.5),
    ]


class TestKeyDerivation:
    def test_key_is_stable_across_runner_instances(self):
        point = _points()[0]
        assert (_runner().point_spec(point) == _runner().point_spec(point))
        assert (store_key(_runner().point_spec(point))
                == store_key(_runner().point_spec(point)))

    @pytest.mark.parametrize("override", [
        dict(seed=1), dict(scale=SCALE / 2), dict(queue_depth=8),
        dict(fast_path=False), dict(server_factory=config_hdd_1080ti),
    ])
    def test_runner_spec_participates(self, override):
        point = _points()[0]
        assert (store_key(_runner().point_spec(point))
                != store_key(_runner(**override).point_spec(point)))

    def test_point_fields_participate_including_label(self):
        runner = _runner()
        base = SweepPoint(model=RESNET18, loader="coordl",
                          dataset="openimages", cache_fraction=0.5)
        variants = [
            SweepPoint(model=ALEXNET, loader="coordl", dataset="openimages",
                       cache_fraction=0.5),
            SweepPoint(model=RESNET18, loader="dali-shuffle",
                       dataset="openimages", cache_fraction=0.5),
            SweepPoint(model=RESNET18, loader="coordl", dataset="openimages",
                       cache_fraction=0.25),
            SweepPoint(model=RESNET18, loader="coordl", dataset="openimages",
                       cache_fraction=0.5, num_epochs=3),
            # label is part of the byte-exact snapshot, so it must key too
            SweepPoint(model=RESNET18, loader="coordl", dataset="openimages",
                       cache_fraction=0.5, label="tagged"),
        ]
        keys = {store_key(runner.point_spec(p)) for p in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_warm_kernel_kill_switch_changes_the_key(self, monkeypatch):
        """REPRO_WARM_KERNEL=0 must produce a different key: a store must
        never answer one configuration with bytes computed under another,
        even when the two are proven byte-identical."""
        runner, point = _runner(), _points()[0]
        monkeypatch.delenv(WARM_KERNEL_ENV_VAR, raising=False)
        enabled = store_key(runner.point_spec(point))
        monkeypatch.setenv(WARM_KERNEL_ENV_VAR, "0")
        disabled = store_key(runner.point_spec(point))
        assert enabled != disabled

    def test_worker_count_does_not_change_the_key(self, monkeypatch):
        """Serial and pooled runs are byte-identical, so they share entries."""
        runner, point = _runner(), _points()[0]
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        serial = store_key(runner.point_spec(point))
        monkeypatch.setenv(WORKERS_ENV_VAR, "4")
        pooled = store_key(runner.point_spec(point))
        assert serial == pooled

    def test_schema_version_participates(self, monkeypatch):
        import repro.store.store as store_module
        runner, point = _runner(), _points()[0]
        current = store_key(runner.point_spec(point))
        monkeypatch.setattr(store_module, "STORE_SCHEMA_VERSION", 999)
        assert store_module.store_key(runner.point_spec(point)) != current

    def test_custom_model_reusing_a_zoo_name_keys_differently(self):
        """The address covers every ModelSpec field, not just the name: a
        custom spec named like a zoo model must never share an entry with
        it (nor be *served* one — the point guard backstops below)."""
        from dataclasses import replace
        runner = _runner()
        impostor = replace(RESNET18, gpu_rate_v100=3200.0)
        zoo_point = SweepPoint(model=RESNET18, loader="coordl",
                               dataset="openimages", cache_fraction=0.5)
        impostor_point = SweepPoint(model=impostor, loader="coordl",
                                    dataset="openimages", cache_fraction=0.5)
        assert (store_key(runner.point_spec(zoo_point))
                != store_key(runner.point_spec(impostor_point)))

    def test_custom_model_sweeps_are_correct_but_never_served_hits(
            self, location):
        """Records of a custom zoo-named model rehydrate to the zoo spec,
        so the point guard rejects them: re-simulated every time, never
        wrong."""
        from dataclasses import replace
        impostor = replace(RESNET18, gpu_rate_v100=3200.0)
        point = SweepPoint(model=impostor, loader="coordl",
                           dataset="openimages", cache_fraction=0.5)
        store = SweepStore(location)
        first = _runner().run([point], store=store).snapshot()
        second_store = SweepStore(location)
        second = _runner().run([point], store=second_store).snapshot()
        assert second_store.hits == 0 and second_store.invalid == 1
        assert second == first  # re-simulated, deterministic

    def test_unresolvable_server_factory_is_rejected_for_store_use(
            self, tmp_path):
        """Closures/lambdas share qualified names, so naming them would be
        an unsound content address: store-backed runs reject them loudly
        (store-less runs still work)."""
        factory = lambda **kw: config_ssd_v100(**kw)  # noqa: E731
        runner = SweepRunner(factory, scale=SCALE, seed=0)
        point = _points()[0]
        assert len(runner.run([point], store=False)) == 1
        with pytest.raises(ConfigurationError, match="module-level"):
            runner.run([point], store=SweepStore(tmp_path / "store"))

    def test_ambient_store_bypasses_unkeyable_factories(self, tmp_path,
                                                        monkeypatch):
        """An ambient REPRO_SWEEP_STORE must not break runners the store
        cannot key: closure factories simulated fine before the store
        existed, so they silently skip it (only an *explicit* store=
        request fails loudly — previous test)."""
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "ambient"))
        factory = lambda **kw: config_ssd_v100(**kw)  # noqa: E731
        runner = SweepRunner(factory, scale=SCALE, seed=0)
        sweep = runner.run([_points()[0]])
        assert len(sweep) == 1
        assert not (tmp_path / "ambient").exists() or (
            SweepStore(tmp_path / "ambient").stats().entries == 0)


class TestSourceDigest:
    def test_source_digest_is_stable_and_hex(self):
        assert source_digest() == source_digest()
        assert len(source_digest()) == 16
        int(source_digest(), 16)  # raises if not hex

    def test_source_digest_participates_in_the_key(self, monkeypatch):
        """Editing the simulator must orphan every stored entry: the key
        embeds a digest of ``repro.sim``/``repro.cache`` source, so a
        store can never serve bytes computed by a different simulator."""
        import repro.store.store as store_module
        runner, point = _runner(), _points()[0]
        current = store_key(runner.point_spec(point))
        monkeypatch.setattr(store_module, "_SOURCE_DIGEST",
                            "0123456789abcdef")
        assert store_module.store_key(runner.point_spec(point)) != current


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("point", [
        SweepPoint(model=RESNET18, loader="coordl", dataset="openimages",
                   cache_fraction=0.5, num_epochs=3),
        SweepPoint(model=ALEXNET, loader="hp-baseline",
                   dataset="imagenet-1k", cache_fraction=1.2, num_jobs=4),
        SweepPoint(model=RESNET18, loader="dist-coordl", dataset="openimages",
                   cache_fraction=0.6, num_servers=2),
    ], ids=["training", "hp-search", "distributed"])
    def test_from_snapshot_is_exact_for_every_record_kind(self, point):
        record = _runner().run([point]).records[0]
        rehydrated = SweepRecord.from_snapshot(
            record.snapshot(include_timeline=True))
        assert rehydrated.snapshot() == record.snapshot()
        assert (rehydrated.snapshot(include_timeline=True)
                == record.snapshot(include_timeline=True))
        assert rehydrated.point == record.point

    def test_digest_only_snapshot_with_timeline_cannot_be_inverted(self):
        point = SweepPoint(model=RESNET18, loader="dali-shuffle",
                           dataset="openimages", cache_fraction=0.5)
        record = _runner().run([point]).records[0]
        assert any(len(e.io.timeline) for e in record.run.epochs)
        with pytest.raises(ConfigurationError):
            SweepRecord.from_snapshot(record.snapshot())


class TestHitMissFlow:
    def test_cold_then_warm_is_byte_identical_with_zero_simulations(
            self, location):
        store = SweepStore(location)
        cold = _runner().run(_points(), store=store).snapshot()
        assert store.hits == 0 and store.misses == 2 and store.puts == 2

        warm_store = SweepStore(location)
        simulated = []
        original = SweepRunner._run_point
        SweepRunner._run_point = lambda self, p: simulated.append(p) or original(self, p)
        try:
            warm = _runner().run(_points(), store=warm_store).snapshot()
        finally:
            SweepRunner._run_point = original
        assert not simulated
        assert warm_store.hits == 2 and warm_store.misses == 0
        assert warm == cold

    def test_environment_variable_supplies_the_default_store(
            self, location, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, location)
        _runner().run(_points())
        assert SweepStore(location).stats().entries == 2

    def test_store_false_disables_the_environment_default(
            self, location, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, location)
        _runner().run(_points(), store=False)
        assert SweepStore(location).stats().entries == 0

    def test_store_accepts_a_location_string(self, location, monkeypatch):
        _runner().run(_points(), store=location)
        monkeypatch.setattr(
            SweepRunner, "_run_point",
            lambda self, p: (_ for _ in ()).throw(
                AssertionError("warm run simulated a point")))
        warm = _runner().run(_points(), store=location)
        assert len(warm) == 2

    def test_failed_points_are_never_stored(self, location):
        store = SweepStore(location)
        bad = SweepPoint(model=ALEXNET, loader="hp-baseline", num_jobs=64,
                         label="overcommitted-hp-point")
        with pytest.raises(SweepPointError):
            _runner().run([bad], store=store)
        assert store.stats().entries == 0

    @pytest.mark.parametrize("workers", [0, 2])
    def test_points_finished_before_a_failure_are_kept(self, location,
                                                       workers):
        """Records commit as they complete, so a failing grid is resumable:
        the retry pays only for the points the first attempt never ran."""
        store = SweepStore(location)
        good = _points()
        bad = SweepPoint(model=ALEXNET, loader="hp-baseline", num_jobs=64,
                         label="overcommitted-hp-point")
        with pytest.raises(SweepPointError):
            _runner().run(good + [bad], workers=workers, store=store)
        assert store.stats().entries == len(good)

        retry_store = SweepStore(location)
        retry = _runner().run(good, workers=workers, store=retry_store)
        assert retry_store.hits == len(good) and retry_store.misses == 0
        assert len(retry) == len(good)

    def test_mixed_hits_and_misses_reassemble_in_input_order(self, location):
        store = SweepStore(location)
        points = _points()
        _runner().run([points[0]], store=store)  # prime one of two points
        warm_store = SweepStore(location)
        sweep = _runner().run(points, store=warm_store)
        assert warm_store.hits == 1 and warm_store.misses == 1
        assert [r.point for r in sweep] == points


class TestCorruptionAndInvalidation:
    def _primed(self, location):
        store = SweepStore(location)
        runner = _runner()
        keys = [store.key_for(runner, p) for p in _points()]
        runner.run(_points(), store=store)
        return store, keys

    @staticmethod
    def _truncate(store, key):
        raw = _read_raw(store, key)
        _write_raw(store, key, raw[: len(raw) // 2])

    @staticmethod
    def _garbage(store, key):
        _write_raw(store, key, b"not json at all {")

    @staticmethod
    def _binary(store, key):
        _write_raw(store, key, b"\x00\xff\x00\xff")

    @staticmethod
    def _empty_object(store, key):
        # A structurally valid payload that is not a record: the JSON
        # layout stores entry files, the SQLite layout compressed blobs.
        data = b"{}" if store.backend.kind == "json" else zlib.compress(b"{}")
        _write_raw(store, key, data)

    @pytest.mark.parametrize("corruption", [
        "_truncate", "_garbage", "_binary", "_empty_object",
    ], ids=["truncated", "garbage-json", "binary-garbage", "empty-object"])
    def test_corrupt_entries_are_misses_and_get_repaired(
            self, location, corruption):
        store, keys = self._primed(location)
        intact = _read_raw(store, keys[0])
        getattr(self, corruption)(store, keys[0])

        fresh = SweepStore(location)
        assert fresh.get(keys[0], _points()[0]) is None
        assert fresh.invalid == 1 and fresh.misses == 1

        # A store-backed run re-simulates the corrupted point only, and the
        # rewrite restores the byte-exact entry (both layouts serialize
        # deterministically, compression included).
        repair = SweepStore(location)
        _runner().run(_points(), store=repair)
        assert repair.misses == 1 and repair.hits == 1 and repair.puts == 1
        assert _read_raw(store, keys[0]) == intact

    def test_entry_under_the_wrong_key_is_a_miss(self, location):
        store, keys = self._primed(location)
        # Swap the two entries' stored bytes: both now carry a key (JSON
        # layout) or a record point (both layouts) that does not match the
        # address they sit at.
        a_raw, b_raw = (_read_raw(store, k) for k in keys)
        _write_raw(store, keys[0], b_raw)
        _write_raw(store, keys[1], a_raw)
        fresh = SweepStore(location)
        assert fresh.get(keys[0], _points()[0]) is None
        assert fresh.get(keys[1], _points()[1]) is None
        assert fresh.invalid == 2

    def test_point_mismatch_is_a_miss_even_with_a_valid_entry(self, location):
        store, keys = self._primed(location)
        other = SweepStore(location)
        # Force point 0's stored record under point 1's key, with the
        # storage layer's own framing intact — only the record/point guard
        # can catch it.
        if store.backend.kind == "json":
            entry = json.loads(store.entry_path(keys[0]).read_text())
            entry["key"] = keys[1]
            store.entry_path(keys[1]).write_text(json.dumps(entry))
        else:
            _write_raw(store, keys[1], _read_raw(store, keys[0]))
        assert other.get(keys[1], _points()[1]) is None
        assert other.invalid == 1

    def test_stats_gc_and_invalidate(self, location, backend):
        store, keys = self._primed(location)
        stats = store.stats()
        assert stats.entries == 2 and stats.total_bytes > 0
        assert stats.puts == 2 and stats.misses == 2
        assert stats.backend == backend
        assert stats.disk_bytes >= stats.total_bytes

        assert store.gc() == 0  # no budgets: no-op
        assert store.gc(max_entries=1) == 1
        assert store.stats().entries == 1
        assert store.gc(max_bytes=0) == 1
        assert store.stats().entries == 0

        self._primed(location)
        assert store.invalidate(prefix="no-such-prefix") == 0
        assert store.invalidate() == 2
        assert store.stats().entries == 0

    def test_gc_keeps_the_newest_entries(self, location):
        """Both backends implement the same policy: oldest (insertion
        order) entries go first when a budget is exceeded."""
        store, keys = self._primed(location)
        ordered = store.backend.entries()
        assert store.gc(max_entries=1) == 1
        assert store.stats().entries == 1
        survivor = store.backend.entries()
        assert len(survivor) == 1 and survivor[0] in ordered

    def test_invalidate_by_prefix(self, location):
        store, keys = self._primed(location)
        prefix = keys[0][:8]
        expected = sum(1 for k in keys if k.startswith(prefix))
        assert store.invalidate(prefix=prefix) == expected
        assert store.stats().entries == 2 - expected

    def test_gc_rejects_negative_budgets(self, location):
        store = SweepStore(location)
        with pytest.raises(ConfigurationError):
            store.gc(max_entries=-1)
        with pytest.raises(ConfigurationError):
            store.gc(max_bytes=-1)


class TestResolveStore:
    def test_none_without_environment_is_no_store(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        assert resolve_store(None) is None

    def test_none_with_environment_opens_it(self, location, monkeypatch,
                                            backend):
        monkeypatch.setenv(STORE_ENV_VAR, location)
        store = resolve_store(None)
        assert isinstance(store, SweepStore)
        assert store.backend.kind == backend

    def test_false_always_disables(self, location, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, location)
        assert resolve_store(False) is None

    def test_instances_and_paths_pass_through(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        assert resolve_store(store) is store
        assert resolve_store(str(tmp_path / "other")).directory == (
            tmp_path / "other")
        assert resolve_store(tmp_path / "third").directory == (
            tmp_path / "third")

    def test_sqlite_uri_selects_the_sqlite_backend(self, tmp_path):
        store = resolve_store(f"sqlite://{tmp_path / 'nested' / 'store.db'}")
        assert store.backend.kind == "sqlite"
        assert store.directory == tmp_path / "nested" / "store.db"

    def test_plain_paths_select_the_json_backend(self, tmp_path):
        assert resolve_store(str(tmp_path / "plain")).backend.kind == "json"

    def test_backend_instances_pass_through(self, tmp_path):
        backend = SqliteBackend(tmp_path / "direct.db")
        store = resolve_store(backend)
        assert isinstance(store, SweepStore)
        assert store.backend is backend

    def test_everything_else_is_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_store(42)


class TestMigrate:
    def test_round_trip_is_bit_identical(self, tmp_path):
        """json -> sqlite -> json preserves the key set, rehydrates
        bit-identical records, and reproduces byte-identical entry files."""
        src = SweepStore(tmp_path / "json-src")
        runner = _runner()
        runner.run(_points(), store=src)
        keys = src.backend.entries()
        assert len(keys) == 2

        dest = SweepStore(f"sqlite://{tmp_path / 'migrated.db'}")
        assert migrate_store(src, dest) == 2
        assert dest.backend.entries() == keys
        for point in _points():
            key = src.key_for(runner, point)
            a = src.get(key, point).snapshot(include_timeline=True)
            b = dest.get(key, point).snapshot(include_timeline=True)
            assert a == b

        back = SweepStore(tmp_path / "json-back")
        assert migrate_store(dest, back) == 2
        assert back.backend.entries() == keys
        for key in keys:
            assert (back.entry_path(key).read_bytes()
                    == src.entry_path(key).read_bytes())

    def test_migrated_store_serves_warm_hits(self, tmp_path):
        """A migrated store is a *warm* store: zero simulations."""
        src = SweepStore(tmp_path / "json-src")
        _runner().run(_points(), store=src)
        dest = SweepStore(f"sqlite://{tmp_path / 'migrated.db'}")
        migrate_store(src, dest)

        simulated = []
        original = SweepRunner._run_point
        SweepRunner._run_point = (
            lambda self, p: simulated.append(p) or original(self, p))
        try:
            warm = _runner().run(_points(), store=dest).snapshot()
        finally:
            SweepRunner._run_point = original
        assert not simulated and dest.hits == 2
        assert warm == _runner().run(_points(), store=False).snapshot()

    def test_migrate_skips_corrupt_entries(self, tmp_path):
        src = SweepStore(tmp_path / "json-src")
        runner = _runner()
        keys = [src.key_for(runner, p) for p in _points()]
        runner.run(_points(), store=src)
        src.entry_path(keys[0]).write_text("not json {")
        dest = SweepStore(f"sqlite://{tmp_path / 'migrated.db'}")
        assert migrate_store(src, dest) == 1
        assert dest.backend.entries() == [keys[1]]

    def test_migrate_requires_explicit_stores(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        with pytest.raises(ConfigurationError):
            migrate_store(None, None)


class TestGoldenGridsThroughStore:
    """The acceptance gate: cold-then-warm reproduces every committed
    golden snapshot at every worker count on every backend, the warm pass
    all store hits."""

    @pytest.mark.parametrize("workers", [0, 1, 4])
    @pytest.mark.parametrize("name", sorted(GOLDEN_GRIDS))
    def test_cold_and_warm_match_the_committed_golden(
            self, name, workers, location):
        grid = GOLDEN_GRIDS[name]
        expected = load_golden(name, GOLDEN_DIR)

        cold_store = SweepStore(location)
        cold = grid.build_runner().run(grid.points(), workers=workers,
                                       store=cold_store).snapshot()
        assert not snapshot_diff(expected, cold), (
            f"{name}: cold store-backed run diverged from the golden")
        assert cold_store.hits == 0
        assert cold_store.puts == len(grid.points())

        warm_store = SweepStore(location)
        simulated = []
        original = SweepRunner._run_point
        SweepRunner._run_point = (
            lambda self, p: simulated.append(p) or original(self, p))
        try:
            warm = grid.build_runner().run(grid.points(), workers=workers,
                                           store=warm_store).snapshot()
        finally:
            SweepRunner._run_point = original
        assert not simulated, (
            f"{name}: warm run simulated {len(simulated)} points")
        assert warm_store.misses == 0
        assert warm_store.hits == len(grid.points())
        assert not snapshot_diff(expected, warm), (
            f"{name}: warm (rehydrated) run diverged from the golden")


class TestPayloadCodec:
    """The SQLite backend's pluggable payload codec: zstd when a module
    provides it, zlib otherwise, always validated at construction and
    always read back by each entry's recorded codec column."""

    def _sqlite(self, tmp_path, **kwargs) -> SweepStore:
        return SweepStore(SqliteBackend(tmp_path / "store.db", **kwargs))

    def test_default_codec_is_valid_and_used(self, tmp_path):
        store = self._sqlite(tmp_path)
        assert default_codec() in STORE_CODECS
        assert store.backend.codec == default_codec()

    def test_environment_variable_forces_the_codec(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv(STORE_CODEC_ENV_VAR, "zlib")
        assert self._sqlite(tmp_path).backend.codec == "zlib"

    def test_explicit_argument_wins_over_the_environment(self, tmp_path,
                                                         monkeypatch):
        monkeypatch.setenv(STORE_CODEC_ENV_VAR, "definitely-not-a-codec")
        # The env value would raise; the explicit argument pre-empts it.
        assert self._sqlite(tmp_path, codec="zlib").backend.codec == "zlib"

    @pytest.mark.parametrize("source", ["argument", "environment"])
    def test_unknown_codec_fails_at_construction(self, tmp_path,
                                                 monkeypatch, source):
        if source == "environment":
            monkeypatch.setenv(STORE_CODEC_ENV_VAR, "lz5")
            with pytest.raises(ConfigurationError, match="unknown store codec"):
                self._sqlite(tmp_path)
        else:
            with pytest.raises(ConfigurationError, match="unknown store codec"):
                self._sqlite(tmp_path, codec="lz5")

    @pytest.mark.skipif(_zstd_functions() is not None,
                        reason="a zstd module is available here")
    def test_unavailable_zstd_fails_at_construction_not_in_put(
            self, tmp_path):
        """Requesting zstd with no module must raise while building the
        backend — a put-time failure would be absorbed by the store's
        degradation ladder and silently flip the store read-only."""
        with pytest.raises(ConfigurationError, match="no module provides"):
            self._sqlite(tmp_path, codec="zstd")

    @pytest.mark.skipif(_zstd_functions() is None,
                        reason="no zstd module in this interpreter")
    def test_zstd_entries_round_trip_bit_identically(self, tmp_path):
        store = self._sqlite(tmp_path, codec="zstd")
        runner = _runner()
        runner.run(_points(), store=store)
        warm = SweepStore(SqliteBackend(tmp_path / "store.db", codec="zstd"))
        for point in _points():
            key = store.key_for(runner, point)
            a = store.get(key, point).snapshot(include_timeline=True)
            b = warm.get(key, point).snapshot(include_timeline=True)
            assert a == b

    @pytest.mark.skipif(_zstd_functions() is None,
                        reason="no zstd module in this interpreter")
    def test_old_zlib_entries_stay_readable_under_a_zstd_writer(
            self, tmp_path):
        """Reads go by each entry's recorded codec column, so a store
        written before the codec switch keeps serving."""
        runner = _runner()
        zlib_store = self._sqlite(tmp_path, codec="zlib")
        runner.run(_points(), store=zlib_store)
        mixed = SweepStore(SqliteBackend(tmp_path / "store.db", codec="zstd"))
        for point in _points():
            key = zlib_store.key_for(runner, point)
            assert (mixed.get(key, point).snapshot(include_timeline=True)
                    == zlib_store.get(key, point)
                    .snapshot(include_timeline=True))

    def test_migrate_round_trips_across_codecs(self, tmp_path, monkeypatch):
        """sqlite -> json -> sqlite under whatever codec is configured:
        the rehydrated snapshots are bit-identical."""
        monkeypatch.setenv(STORE_CODEC_ENV_VAR, "zlib")
        src = SweepStore(f"sqlite://{tmp_path / 'src.db'}")
        runner = _runner()
        runner.run(_points(), store=src)
        middle = SweepStore(tmp_path / "json-middle")
        assert migrate_store(src, middle) == 2
        dest = SweepStore(f"sqlite://{tmp_path / 'dest.db'}")
        assert migrate_store(middle, dest) == 2
        for point in _points():
            key = src.key_for(runner, point)
            assert (dest.get(key, point).snapshot(include_timeline=True)
                    == src.get(key, point).snapshot(include_timeline=True))


class TestSqliteGcReclaimsDisk:
    def test_gc_shrinks_the_physical_footprint(self, tmp_path):
        """``gc`` on SQLite checkpoints the WAL and VACUUMs, so pruning
        entries actually returns disk (a bare DELETE would not)."""
        store = SweepStore(f"sqlite://{tmp_path / 'store.db'}")
        runner = _runner()
        runner.run(_points(), store=store)
        before = store.stats().disk_bytes
        assert store.gc(max_entries=1) == 1
        after = store.stats().disk_bytes
        assert after < before, (
            f"gc left the footprint at {after} bytes (was {before})")
        # The survivor still serves after the rebuild.
        survivor = store.backend.entries()
        assert len(survivor) == 1
        served = sum(
            1 for point in _points()
            if SweepStore(f"sqlite://{tmp_path / 'store.db'}").get(
                store.key_for(runner, point), point) is not None)
        assert served == 1


class TestStatsByRunner:
    def test_rows_group_on_the_runner_digest(self, tmp_path):
        store = SweepStore(f"sqlite://{tmp_path / 'store.db'}")
        _runner().run(_points(), store=store)
        _runner(seed=7).run(_points(), store=store)
        rows = store.stats_by_runner()
        assert len(rows) == 2
        assert sum(row.entries for row in rows) == 4
        assert all(row.runner_digest and row.payload_bytes > 0
                   for row in rows)
        # Biggest runner first — the operator-facing ordering.
        assert rows == sorted(rows, key=lambda r: (-r.payload_bytes,
                                                   r.runner_digest))

    def test_analytics_never_unpack_payloads(self, tmp_path, monkeypatch):
        """The by-runner rollup is index-only SQL over the indexed
        ``runner_digest`` column — decompressing payloads for stats
        would defeat the index/payload split."""
        import repro.store.backend as backend_module
        store = SweepStore(f"sqlite://{tmp_path / 'store.db'}")
        _runner().run(_points(), store=store)

        def forbidden(codec, blob):
            raise AssertionError("stats_by_runner unpacked a payload")

        monkeypatch.setattr(backend_module, "_unpack", forbidden)
        rows = store.stats_by_runner()
        assert rows and rows[0].entries == 2

    def test_json_backend_refuses_loudly(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        _runner().run(_points(), store=store)
        with pytest.raises(ConfigurationError, match="no runner index"):
            store.stats_by_runner()
