"""Figure 3 — ResNet18 epoch time split as the cache size varies.

The stacked-bar figure splits the epoch into GPU compute, the *ideal* fetch
stall (what an efficient cache of that size would still pay) and the extra
fetch stall caused by page-cache thrashing.  We obtain the ideal split from a
MinIO (CoorDL) run and the thrashing surcharge from the DALI-shuffle run at
the same cache size.  The sweep over cache fractions x loaders runs through
:class:`~repro.sim.sweep.SweepRunner` (shared dataset/sampler, vectorised
epoch fast path).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import RESNET18
from repro.experiments.base import ExperimentResult, SWEEP_SCALE
from repro.sim.sweep import SweepRunner
from repro.store import PersistentPool, StoreArg

DEFAULT_FRACTIONS = (0.25, 0.35, 0.5, 0.65, 0.8, 1.0)


def run(scale: float = SWEEP_SCALE, fractions: Sequence[float] = DEFAULT_FRACTIONS,
        dataset_name: str = "openimages", num_epochs: int = 2,
        seed: int = 0, workers: Optional[int] = None,
        store: StoreArg = None,
        pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Reproduce the epoch-time split vs cache size for ResNet18."""
    runner = SweepRunner(config_ssd_v100, scale=scale, seed=seed)
    sweep = runner.run(SweepRunner.grid(
        models=[RESNET18], loaders=["dali-shuffle", "coordl"],
        cache_fractions=fractions, dataset=dataset_name, num_epochs=num_epochs),
        workers=workers, store=store, pool=pool)
    result = ExperimentResult(
        experiment_id="fig3",
        title="Fig. 3 — ResNet18 epoch split vs cache size (compute / ideal fetch "
              "stall / thrashing)",
        columns=["cache_pct", "compute_s", "ideal_fetch_stall_s", "thrashing_stall_s",
                 "dali_epoch_s", "dali_miss_pct", "ideal_miss_pct"],
        notes=["ideal split measured with the MinIO cache; thrashing is the extra "
               "fetch stall the page cache adds on top"],
    )
    for fraction in fractions:
        dali = sweep.one(loader="dali-shuffle", cache_fraction=fraction).steady
        ideal = sweep.one(loader="coordl", cache_fraction=fraction).steady
        compute_s = dali.epoch_time_s - dali.fetch_stall_s
        ideal_fetch = ideal.fetch_stall_s
        thrashing = max(0.0, dali.fetch_stall_s - ideal_fetch)
        result.add_row(
            cache_pct=100.0 * fraction,
            compute_s=compute_s,
            ideal_fetch_stall_s=ideal_fetch,
            thrashing_stall_s=thrashing,
            dali_epoch_s=dali.epoch_time_s,
            dali_miss_pct=100.0 * dali.cache_miss_ratio,
            ideal_miss_pct=100.0 * ideal.cache_miss_ratio,
        )
    return result
