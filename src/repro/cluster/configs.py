"""The two server SKUs of the paper (Table 2) plus AWS-style variants.

* ``Config-SSD-V100``: 8x V100 (32 GB), SATA SSD (530 MB/s random reads),
  24 physical cores, 500 GiB DRAM, 40 Gbps Ethernet — closest to AWS
  p3.16xlarge with gp2 storage.
* ``Config-HDD-1080Ti``: 8x GTX 1080Ti (11 GB), magnetic HDD (15–50 MB/s),
  same CPU/DRAM/NIC — closest to AWS p2.8xlarge with st1 storage.
* ``high-cpu`` variant: 8x V100 with 32 physical cores / 64 vCPUs, the
  AWS-style SKU analysed in Appendix B.1 / D.5.
"""

from __future__ import annotations

from repro import units
from repro.cluster.network import forty_gbps_ethernet
from repro.cluster.server import ServerConfig
from repro.compute.gpu import GTX_1080TI, V100
from repro.exceptions import ConfigurationError
from repro.storage.device import hdd, sata_ssd


def config_ssd_v100(cache_bytes: float | None = None) -> ServerConfig:
    """Config-SSD-V100 of Table 2 (default cache budget: 400 GiB of 500 GiB)."""
    return ServerConfig(
        name="Config-SSD-V100",
        gpu=V100,
        num_gpus=8,
        physical_cores=24,
        vcpus=48,
        dram_bytes=units.GiB(500),
        cache_bytes=units.GiB(400) if cache_bytes is None else cache_bytes,
        storage=sata_ssd(),
        network=forty_gbps_ethernet(),
    )


def config_hdd_1080ti(cache_bytes: float | None = None) -> ServerConfig:
    """Config-HDD-1080Ti of Table 2 (default cache budget: 400 GiB of 500 GiB)."""
    return ServerConfig(
        name="Config-HDD-1080Ti",
        gpu=GTX_1080TI,
        num_gpus=8,
        physical_cores=24,
        vcpus=48,
        dram_bytes=units.GiB(500),
        cache_bytes=units.GiB(400) if cache_bytes is None else cache_bytes,
        storage=hdd(),
        network=forty_gbps_ethernet(),
    )


def config_high_cpu_v100(cache_bytes: float | None = None) -> ServerConfig:
    """AWS-style 8x V100 server with 32 cores / 64 vCPUs (Appendix B.1)."""
    return ServerConfig(
        name="Config-SSD-V100-64vCPU",
        gpu=V100,
        num_gpus=8,
        physical_cores=32,
        vcpus=64,
        dram_bytes=units.GiB(500),
        cache_bytes=units.GiB(400) if cache_bytes is None else cache_bytes,
        storage=sata_ssd(),
        network=forty_gbps_ethernet(),
    )


_CONFIGS = {
    "config-ssd-v100": config_ssd_v100,
    "config-hdd-1080ti": config_hdd_1080ti,
    "config-ssd-v100-64vcpu": config_high_cpu_v100,
}


def get_server_config(name: str, cache_bytes: float | None = None) -> ServerConfig:
    """Look up a server SKU by name, case-insensitively."""
    return get_server_factory(name)(cache_bytes)


def get_server_factory(name: str):
    """Look up a server SKU's *factory* by name, case-insensitively.

    The factory (not an instance) is what :class:`~repro.sim.sweep.SweepRunner`
    and the serve wire protocol want — both key on its importable identity.
    """
    try:
        return _CONFIGS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_CONFIGS))
        raise ConfigurationError(f"unknown server config {name!r}; known: {known}") from None


def server_config_names() -> list[str]:
    """All catalog SKU names (the ``--server-config`` choices)."""
    return sorted(_CONFIGS)
