"""Samplers: how the data pipeline walks the dataset each epoch.

DNN training accesses every item exactly once per epoch in a random order
(Sec. 2).  The different loaders in the paper differ in *how* they randomise:

* :class:`RandomSampler` — fresh uniform permutation every epoch (the native
  PyTorch DataLoader and ``DALI-shuffle``).
* :class:`SequentialSampler` — items in storage order (``DALI-seq`` reads
  files sequentially off disk and shuffles in a small memory buffer; from the
  page cache's point of view the access stream is sequential).
* :class:`ShuffleBufferSampler` — sequential fetch order with a bounded
  in-memory shuffle window, modelling DALI-seq / TFRecord readers more
  precisely when the minibatch composition matters.
* :class:`DistributedSampler` — partitions each epoch's permutation across the
  servers of a distributed job (random disjoint shards, changing every epoch,
  Sec. 3.3.1).

All samplers are deterministic given their seed, and all uphold the epoch
invariant: every item appears exactly once per epoch.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from repro.exceptions import ConfigurationError


class Sampler:
    """Base class: yields item ids for one epoch at a time."""

    def __init__(self, num_items: int, seed: int = 0) -> None:
        if num_items <= 0:
            raise ConfigurationError("sampler needs a non-empty dataset")
        self._num_items = num_items
        self._seed = seed

    @property
    def num_items(self) -> int:
        """Number of items in the sampled universe (the whole dataset)."""
        return self._num_items

    @property
    def epoch_length(self) -> int:
        """Number of items actually yielded per epoch.

        Equal to :attr:`num_items` for whole-dataset samplers; sharded
        samplers (:class:`DistributedSampler`) yield only their slice, and
        anything deriving per-epoch counts (``BatchSampler``) must use this,
        not ``num_items``.
        """
        return self._num_items

    def epoch(self, epoch_index: int) -> np.ndarray:
        """Return the item-id order for one epoch as an int64 array."""
        raise NotImplementedError

    def epochs(self, num_epochs: int) -> Iterator[np.ndarray]:
        """Yield the orders for ``num_epochs`` consecutive epochs."""
        for e in range(num_epochs):
            yield self.epoch(e)


class SequentialSampler(Sampler):
    """Items in storage order — the access pattern of DALI-seq file readers."""

    def epoch(self, epoch_index: int) -> np.ndarray:
        return np.arange(self._num_items, dtype=np.int64)


class RandomSampler(Sampler):
    """Fresh uniform permutation every epoch (PyTorch DL, DALI-shuffle)."""

    def epoch(self, epoch_index: int) -> np.ndarray:
        rng = np.random.default_rng((self._seed, epoch_index))
        return rng.permutation(self._num_items).astype(np.int64)


class ShuffleBufferSampler(Sampler):
    """Sequential storage reads + bounded in-memory shuffle window.

    The *storage-visible* order is still sequential (what matters for the page
    cache); the *training-visible* order is randomised within a window of
    ``buffer_size`` items, which is how DALI-seq and tf.data's
    ``shuffle(buffer_size)`` behave.
    """

    def __init__(self, num_items: int, buffer_size: int, seed: int = 0) -> None:
        super().__init__(num_items, seed)
        if buffer_size <= 0:
            raise ConfigurationError("shuffle buffer must hold at least one item")
        self._buffer_size = buffer_size

    @property
    def buffer_size(self) -> int:
        """Number of items held in the shuffle window."""
        return self._buffer_size

    def storage_order(self, epoch_index: int) -> np.ndarray:
        """Order in which items are read from storage (sequential)."""
        return np.arange(self._num_items, dtype=np.int64)

    def epoch(self, epoch_index: int) -> np.ndarray:
        rng = np.random.default_rng((self._seed, epoch_index, 0xB0FF))
        order: List[int] = []
        buffer: List[int] = []
        for item in range(self._num_items):
            buffer.append(item)
            if len(buffer) >= self._buffer_size:
                pick = int(rng.integers(len(buffer)))
                order.append(buffer.pop(pick))
        while buffer:
            pick = int(rng.integers(len(buffer)))
            order.append(buffer.pop(pick))
        return np.asarray(order, dtype=np.int64)


class DistributedSampler(Sampler):
    """Random disjoint shard of each epoch for one rank of a distributed job.

    Every epoch the full permutation is re-drawn and split into
    ``num_replicas`` contiguous slices; rank ``r`` trains on slice ``r``.
    This reproduces the behaviour the paper analyses: the shard assigned to a
    server changes every epoch, so a server's locally-cached items frequently
    belong to another server's shard (Sec. 3.3.1).
    """

    def __init__(self, num_items: int, num_replicas: int, rank: int, seed: int = 0) -> None:
        super().__init__(num_items, seed)
        if num_replicas <= 0:
            raise ConfigurationError("need at least one replica")
        if not 0 <= rank < num_replicas:
            raise ConfigurationError(f"rank {rank} outside [0, {num_replicas})")
        self._num_replicas = num_replicas
        self._rank = rank

    @property
    def num_replicas(self) -> int:
        """Total number of ranks in the distributed job."""
        return self._num_replicas

    @property
    def rank(self) -> int:
        """This sampler's rank."""
        return self._rank

    def _shard_bounds(self) -> tuple:
        bounds = np.linspace(0, self._num_items, self._num_replicas + 1).astype(int)
        return int(bounds[self._rank]), int(bounds[self._rank + 1])

    @property
    def epoch_length(self) -> int:
        """Items in this rank's shard (constant across epochs)."""
        lo, hi = self._shard_bounds()
        return hi - lo

    def _global_permutation(self, epoch_index: int) -> np.ndarray:
        # All ranks share the seed, so they agree on the epoch's permutation
        # and therefore on the (disjoint) shard boundaries.
        rng = np.random.default_rng((self._seed, epoch_index, 0xD157))
        return rng.permutation(self._num_items).astype(np.int64)

    def epoch(self, epoch_index: int) -> np.ndarray:
        perm = self._global_permutation(epoch_index)
        lo, hi = self._shard_bounds()
        return perm[lo:hi]


class CachingSampler(Sampler):
    """Memoising wrapper sharing one sampler's epoch orders across loaders.

    Parameter sweeps re-simulate the same (dataset, seed) pair under many
    configurations; every loader would otherwise redraw the identical
    per-epoch permutation.  The wrapper delegates to the inner sampler and
    caches each epoch's order.  Callers must treat the returned arrays as
    read-only (all library code does).
    """

    def __init__(self, inner: Sampler) -> None:
        super().__init__(inner.num_items, seed=inner._seed)
        self._inner = inner
        self._orders: dict = {}

    @property
    def inner(self) -> Sampler:
        """The sampler whose epochs are being memoised."""
        return self._inner

    @property
    def epoch_length(self) -> int:
        return self._inner.epoch_length

    def epoch(self, epoch_index: int) -> np.ndarray:
        order = self._orders.get(epoch_index)
        if order is None:
            order = self._inner.epoch(epoch_index)
            self._orders[epoch_index] = order
        return order


class BatchSampler:
    """Group a sampler's per-epoch order into minibatches.

    The last, possibly-partial batch is dropped when ``drop_last`` is true,
    matching the common training configuration used in the paper's
    experiments (constant batch size per iteration).
    """

    def __init__(self, sampler: Sampler, batch_size: int, drop_last: bool = False) -> None:
        if batch_size <= 0:
            raise ConfigurationError("batch size must be positive")
        self._sampler = sampler
        self._batch_size = batch_size
        self._drop_last = drop_last

    @property
    def sampler(self) -> Sampler:
        """Underlying item-order sampler."""
        return self._sampler

    @property
    def batch_size(self) -> int:
        """Number of items per minibatch."""
        return self._batch_size

    def batches_per_epoch(self) -> int:
        """Number of minibatches produced per epoch.

        Derived from the sampler's :attr:`~Sampler.epoch_length` (not
        ``num_items``): a sharded sampler yields only its slice, and counting
        from the dataset size used to disagree with :meth:`epoch` about
        whether the final short batch exists — a batch must never be both
        counted and dropped depending on which path iterates.
        """
        full, rem = divmod(self._sampler.epoch_length, self._batch_size)
        if rem and not self._drop_last:
            return full + 1
        return full

    def epoch(self, epoch_index: int) -> List[np.ndarray]:
        """Minibatches (arrays of item ids) for one epoch."""
        order = self._sampler.epoch(epoch_index)
        batches: List[np.ndarray] = []
        for start in range(0, len(order), self._batch_size):
            batch = order[start:start + self._batch_size]
            if len(batch) < self._batch_size and self._drop_last:
                break
            batches.append(batch)
        return batches


def verify_epoch_invariant(order: Sequence[int], num_items: int) -> bool:
    """Check that an epoch order touches every item exactly once.

    Used by tests and by the coordinated-prep correctness checks: CoorDL must
    not change the sampling semantics (Sec. 4, "The data sampling and
    randomization is unmodified").
    """
    arr = np.asarray(order, dtype=np.int64)
    if arr.size != num_items:
        return False
    return bool(np.array_equal(np.sort(arr), np.arange(num_items)))
