"""Setuptools entry point.

Kept alongside pyproject.toml so that ``pip install -e .`` works in offline
environments whose setuptools cannot build PEP 660 editable wheels (no
``wheel`` package available); pip falls back to the legacy ``setup.py
develop`` path in that case.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Analyzing and Mitigating Data Stalls in DNN "
        "Training' (CoorDL + DS-Analyzer, VLDB 2021)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
