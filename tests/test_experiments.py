"""Tests for the experiment framework and the reproduced figures/tables.

Each experiment is run at a very small dataset scale (fast) and checked for
the qualitative shape the paper reports — who wins, roughly by how much,
where the crossovers are.  The full-size runs live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import registry
from repro.experiments.base import ExperimentResult, relative, scaled_dataset

#: Scale used by the fast test runs of the heavier experiments.
TEST_SCALE = 1.0 / 400.0


class TestExperimentResult:
    def test_add_row_and_column_access(self):
        result = ExperimentResult("x", "Example", columns=["a", "b"])
        result.add_row(a=1, b=2.5)
        result.add_row(a=3, b=4.0)
        assert result.column("a") == [1, 3]
        assert result.row_for("a", 3)["b"] == 4.0

    def test_unknown_column_rejected(self):
        result = ExperimentResult("x", "Example", columns=["a"])
        with pytest.raises(ConfigurationError):
            result.add_row(a=1, oops=2)
        with pytest.raises(ConfigurationError):
            result.column("missing")
        result.add_row(a=1)
        with pytest.raises(ConfigurationError):
            result.row_for("a", 99)

    def test_format_table_and_to_dict(self):
        result = ExperimentResult("x", "Example", columns=["name", "value"],
                                  notes=["a note"])
        result.add_row(name="row", value=1234.5678)
        text = result.format_table()
        assert "Example" in text and "row" in text and "note:" in text
        payload = result.to_dict()
        assert payload["experiment_id"] == "x"
        assert payload["rows"][0]["name"] == "row"

    def test_relative_helper(self):
        assert relative([2.0, 4.0], 2.0) == [1.0, 2.0]
        assert relative([1.0], 0.0) == [0.0]

    def test_scaled_dataset_helper(self):
        ds = scaled_dataset("imagenet-1k", 1 / 1000)
        assert 1000 < len(ds) < 1500


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = registry.experiment_ids()
        for expected in ("fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "tab3",
                         "fig8", "fig9a", "fig9b", "fig9d", "fig9e", "fig10",
                         "fig11", "tab5", "fig16", "tab6", "tab7", "fig12",
                         "fig13", "fig14", "fig17", "fig18", "fig19_20", "fig21",
                         "fig22", "fig23"):
            assert expected in ids

    def test_unknown_experiment_raises(self):
        with pytest.raises(ConfigurationError):
            registry.get_experiment("fig99")


class TestAnalysisExperiments:
    def test_fig1_rates_have_the_papers_ordering(self):
        result = registry.run_experiment("fig1", scale=TEST_SCALE)
        rates = {row["component"]: row["rate_mbps"] for row in result.rows}
        hdd = rates["HDD random read"]
        ssd = rates["SSD random read"]
        prep_cpu = rates["prep, 24 CPU cores"]
        prep_gpu = rates["prep, 24 cores + GPU offload"]
        gpu = rates["GPU ingestion demand (8xV100)"]
        assert hdd < ssd < gpu
        assert prep_cpu < prep_gpu < gpu       # the pipeline cannot feed the GPUs

    def test_fig2_models_show_fetch_stalls_at_35pct_cache(self):
        result = registry.run_experiment("fig2", scale=TEST_SCALE)
        stalls = result.column("fetch_stall_pct")
        assert len(stalls) == 9
        # Paper: 10-70% of epoch time blocked on I/O.  The compute-heaviest
        # models (ResNet50/VGG11 on the fast SSD) sit at the very low end.
        assert all(s >= 1.0 for s in stalls)
        assert sum(s >= 10.0 for s in stalls) >= 6
        assert max(stalls) > 40.0

    def test_fig3_thrashing_shrinks_as_cache_grows(self):
        result = registry.run_experiment("fig3", scale=TEST_SCALE,
                                         fractions=(0.35, 0.65, 1.0))
        thrash = result.column("thrashing_stall_s")
        epoch_times = result.column("dali_epoch_s")
        assert thrash[0] > thrash[-1]
        # At a 100% cache budget only page-rounding noise remains.
        assert thrash[-1] < 0.05 * epoch_times[-1]

    def test_fig4_light_models_need_more_cores(self):
        result = registry.run_experiment("fig4", scale=TEST_SCALE,
                                         cores_per_gpu=(3, 12))
        by_model = {}
        for row in result.rows:
            by_model.setdefault(row["model"], {})[row["cores_per_gpu"]] = row
        # ResNet18 gains a lot from more cores, ResNet50 little.
        r18_gain = (by_model["resnet18"][12]["throughput"]
                    / by_model["resnet18"][3]["throughput"])
        r50_gain = (by_model["resnet50"][12]["throughput"]
                    / by_model["resnet50"][3]["throughput"])
        assert r18_gain > r50_gain
        assert by_model["resnet50"][3]["cores_needed_per_gpu"] <= 5
        assert by_model["resnet18"][3]["cores_needed_per_gpu"] >= 6

    def test_fig5_gpu_prep_cannot_fix_the_v100(self):
        result = registry.run_experiment("fig5", scale=TEST_SCALE)
        v100_gpu = result.row_for("server", "Config-SSD-V100")
        rows = [r for r in result.rows
                if r["server"] == "Config-SSD-V100" and r["prep_mode"] == "cpu+gpu"]
        assert rows[0]["prep_stall_pct"] > 20.0
        slow_rows = [r for r in result.rows
                     if r["server"] == "Config-HDD-1080Ti" and r["prep_mode"] == "cpu+gpu"]
        assert slow_rows[0]["prep_stall_pct"] < rows[0]["prep_stall_pct"]

    def test_fig6_prep_stall_decreases_with_model_weight(self):
        result = registry.run_experiment("fig6", scale=TEST_SCALE)
        stalls = {row["model"]: row["prep_stall_pct"] for row in result.rows}
        assert stalls["shufflenetv2"] > stalls["resnet50"]
        assert stalls["alexnet"] > stalls["vgg11"]

    def test_tab3_tfrecord_misses_and_amplification(self):
        result = registry.run_experiment("tab3", scale=1 / 200)
        for row in result.rows:
            assert row["train_miss_pct"] > 80.0
            assert row["read_amplification"] > 4.0

    def test_fig8_minio_matches_capacity_misses(self):
        result = registry.run_experiment("fig8")
        for row in result.rows:
            assert row["minio_misses"] == row["capacity_misses"]
            assert row["page_cache_misses"] >= row["minio_misses"]

    def test_tab5_predictions_close_to_empirical(self):
        result = registry.run_experiment("tab5", scale=TEST_SCALE)
        assert all(row["error_pct"] < 25.0 for row in result.rows)

    def test_fig16_more_cache_never_hurts_and_saturates(self):
        result = registry.run_experiment("fig16", scale=TEST_SCALE,
                                         fractions=(0.0, 0.55, 1.0))
        speeds = result.column("predicted_speed")
        assert speeds[0] < speeds[1]
        assert speeds[2] == pytest.approx(speeds[1], rel=0.25)
        assert result.rows[0]["bottleneck"] == "io-bound"


class TestCoorDLExperiments:
    def test_fig9a_coordl_at_least_matches_dali(self):
        result = registry.run_experiment("fig9a", scale=TEST_SCALE)
        assert all(row["speedup_vs_shuffle"] >= 0.95 for row in result.rows)
        assert max(row["speedup_vs_seq"] for row in result.rows) > 1.2

    def test_fig9b_distributed_speedup_large_on_hdd(self):
        result = registry.run_experiment("fig9b", scale=TEST_SCALE)
        speedups = result.column("speedup")
        assert max(speedups) > 4.0
        assert all(row["coordl_disk_gb_per_server"] <= row["dali_disk_gb_per_server"]
                   for row in result.rows)

    def test_fig9d_hp_search_speedups(self):
        result = registry.run_experiment("fig9d", scale=TEST_SCALE)
        speedups = {row["model"]: row["speedup"] for row in result.rows}
        assert all(s >= 0.95 for s in speedups.values())
        assert speedups["alexnet"] > 1.5
        assert speedups["audio-m5"] > 2.0

    def test_fig9e_speedup_grows_with_job_count(self):
        result = registry.run_experiment("fig9e", scale=TEST_SCALE,
                                         job_configs=((8, 1), (2, 4), (1, 8)))
        by_jobs = {row["num_jobs"]: row["speedup"] for row in result.rows}
        assert by_jobs[8] >= by_jobs[2] >= by_jobs[1] * 0.9

    def test_fig10_time_to_accuracy_improves_by_severalfold(self):
        result = registry.run_experiment("fig10", scale=TEST_SCALE)
        coordl = result.row_for("loader", "coordl")
        dali = result.row_for("loader", "dali")
        assert coordl["epochs_to_target"] == pytest.approx(dali["epochs_to_target"])
        assert coordl["speedup"] > 2.0

    def test_fig11_coordl_reads_less_and_finishes_earlier(self):
        result = registry.run_experiment("fig11", scale=TEST_SCALE)
        last = result.rows[-1]
        assert last["coordl_disk_gb"] < last["dali_disk_gb"]

    def test_tab6_miss_rates_ordered_seq_worst_coordl_best(self):
        result = registry.run_experiment("tab6", scale=TEST_SCALE)
        misses = {row["loader"]: row["cache_miss_pct"] for row in result.rows}
        assert misses["CoorDL"] <= misses["DALI-shuffle"] <= misses["DALI-seq"]
        assert misses["CoorDL"] == pytest.approx(35.0, abs=8.0)

    def test_tab7_speedups_shrink_with_model_weight(self):
        result = registry.run_experiment("tab7", scale=TEST_SCALE)
        speedups = {row["model"]: row["speedup"] for row in result.rows}
        assert speedups["alexnet"] > speedups["resnet50"]
        assert all(s >= 0.99 for s in speedups.values())


class TestAppendixExperiments:
    def test_fig12_prep_stall_persists_with_hyperthreads(self):
        result = registry.run_experiment("fig12", scale=TEST_SCALE,
                                         vcpus_per_gpu=(3, 8))
        rows = [r for r in result.rows if r["prep_mode"] == "cpu+gpu"]
        assert rows[-1]["prep_stall_pct"] > 15.0
        assert rows[-1]["prep_stall_pct"] <= rows[0]["prep_stall_pct"]

    def test_fig13_dali_beats_pytorch_dl(self):
        result = registry.run_experiment("fig13", scale=TEST_SCALE)
        for row in result.rows:
            assert row["dali_cpu_epoch_s"] <= row["pytorch_epoch_s"]
        heavy = result.row_for("model", "resnet50")
        assert heavy["best_for_model"] == "dali-cpu"

    def test_fig14_epoch_time_flat_despite_less_gpu_time(self):
        result = registry.run_experiment("fig14", scale=TEST_SCALE,
                                         batch_sizes=(64, 512))
        small, large = result.rows[0], result.rows[-1]
        assert large["gpu_compute_s"] < small["gpu_compute_s"]
        assert large["epoch_time_s"] >= 0.85 * small["epoch_time_s"]

    def test_fig17_imagenet22k_hp_search(self):
        result = registry.run_experiment("fig17", scale=TEST_SCALE)
        assert all(row["speedup"] >= 0.95 for row in result.rows)
        assert max(row["speedup"] for row in result.rows) > 1.3

    def test_fig18_coordl_scales_and_removes_disk_io(self):
        result = registry.run_experiment("fig18", scale=TEST_SCALE, node_counts=(2, 4))
        assert all(row["coordl_disk_gb_per_server"] == pytest.approx(0.0, abs=1e-6)
                   for row in result.rows)
        assert result.rows[-1]["coordl_throughput"] > result.rows[0]["coordl_throughput"]

    def test_fig19_20_utilisation_and_memory(self):
        result = registry.run_experiment("fig19_20", scale=TEST_SCALE)
        util = result.row_for("metric", "cpu_utilisation_pct")
        assert util["coordl"] >= util["dali"]
        staging = result.row_for("metric", "staging_peak_gb")
        assert 0.0 < staging["coordl"] < 64.0

    def test_fig21_pycoordl_helps_more_on_hdd_than_ssd(self):
        result = registry.run_experiment("fig21", scale=TEST_SCALE,
                                         cache_fractions=(0.6,))
        hdd = [r for r in result.rows if r["storage"] == "hdd"][0]
        ssd = [r for r in result.rows if r["storage"] == "sata-ssd"][0]
        assert hdd["speedup"] > ssd["speedup"]
        assert hdd["speedup"] > 1.3

    def test_fig22_coordinated_prep_beats_pytorch_dl(self):
        result = registry.run_experiment("fig22", scale=TEST_SCALE)
        assert all(row["speedup"] > 1.2 for row in result.rows)

    def test_fig23_full_pycoordl_is_best_on_hdd(self):
        result = registry.run_experiment("fig23", scale=TEST_SCALE)
        hdd_rows = {r["configuration"]: r for r in result.rows if r["storage"] == "hdd"}
        assert (hdd_rows["py-coordl"]["epoch_time_s"]
                <= hdd_rows["coordinated-prep"]["epoch_time_s"]
                <= hdd_rows["pytorch-dl"]["epoch_time_s"])
