"""Figure 2 — fetch stalls across nine DNNs with 35 % of the dataset cached.

On Config-SSD-V100 with only 35 % of each dataset cacheable, the paper finds
the nine models spend 10–70 % of epoch time blocked on I/O despite prefetching
and pipelining.  The per-model DALI-shuffle grid runs through
:class:`~repro.sim.sweep.SweepRunner` (each model on its paper-assigned
dataset); this module only reduces the sweep into the stall-fraction table.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import ALL_STALL_MODELS, ModelSpec
from repro.experiments.base import ExperimentResult, SWEEP_SCALE
from repro.sim.sweep import SweepRunner
from repro.store import PersistentPool, StoreArg


def run(scale: float = SWEEP_SCALE, cache_fraction: float = 0.35,
        models: Optional[Sequence[ModelSpec]] = None, num_epochs: int = 2,
        seed: int = 0, workers: Optional[int] = None,
        store: StoreArg = None,
        pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Reproduce the per-model fetch-stall percentages of Fig. 2."""
    chosen = list(models) if models is not None else list(ALL_STALL_MODELS)
    runner = SweepRunner(config_ssd_v100, scale=scale, seed=seed)
    sweep = runner.run(SweepRunner.grid(
        models=chosen, loaders=["dali-shuffle"],
        cache_fractions=[cache_fraction], num_epochs=num_epochs),
        workers=workers, store=store, pool=pool)
    result = ExperimentResult(
        experiment_id="fig2",
        title=f"Fig. 2 — fetch stalls with {cache_fraction:.0%} of the dataset cached "
              "(Config-SSD-V100, DALI)",
        columns=["model", "dataset", "fetch_stall_pct", "prep_stall_pct",
                 "epoch_time_s", "cache_miss_pct"],
        notes=["paper: DNNs spend 10-70% of epoch time blocked on I/O at a 35% cache"],
    )
    for model in chosen:
        record = sweep.one(model=model)
        epoch = record.steady
        result.add_row(
            model=model.name,
            dataset=record.dataset_name,
            fetch_stall_pct=100.0 * epoch.fetch_stall_fraction,
            prep_stall_pct=100.0 * epoch.prep_stall_fraction,
            epoch_time_s=epoch.epoch_time_s,
            cache_miss_pct=100.0 * epoch.cache_miss_ratio,
        )
    return result
