"""Determinism test harness for the parallel sweep executor.

:meth:`~repro.sim.sweep.SweepRunner.run` promises that a grid fanned out
over ``workers=N`` processes is **byte-identical** to the serial run, for
every N and every input ordering.  This module is the shared vocabulary the
golden-regression tests (``tests/test_golden_sweeps.py``), the property
tests (``tests/test_sweep_parallel.py``) and the regeneration tool
(``tools/make_golden.py``) use to state that promise:

* :data:`GOLDEN_GRIDS` — seven small, fast reference grids: a Fig. 3 cache
  sweep (single-server training points), a Fig. 9(b) distributed grid, a
  Tab. 7 HP-search grid, a warm multi-epoch Fig. 3 grid, a
  thrashing-regime Fig. 9(d) grid (the last two drive the segmented-LRU
  warm kernel, and are additionally asserted byte-identical with the
  kernel disabled via :data:`~repro.cache.warm_kernel.WARM_KERNEL_ENV_VAR`),
  and two failure-scenario grids — crash/re-warm plus multi-tenant HP
  (``fig_crash_small``) and elastic membership plus stragglers
  (``fig_elastic_small``) — pinning the deterministic ``FailureEvent``
  traces emitted by :class:`~repro.sim.failures.FailureScenario`;
* :func:`run_golden_grid` — build the grid's runner, run it (optionally
  through the worker pool) and return the byte-exact
  :meth:`~repro.sim.sweep.SweepResult.snapshot`;
* :func:`snapshot_to_json` / :func:`load_golden` — the canonical on-disk
  form committed under ``tests/golden/``.

Snapshots serialise floats with :meth:`float.hex`, so comparing two of
them compares exact bit patterns, not formatted approximations.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from repro.cluster.configs import config_hdd_1080ti, config_ssd_v100
from repro.cluster.server import ServerConfig
from repro.compute.model_zoo import ALEXNET, RESNET18
from repro.exceptions import ConfigurationError
from repro.sim.sweep import SweepPoint, SweepRunner

#: Dataset scale of the golden grids — small enough that each grid runs in
#: well under a second serially, large enough for dozens of minibatches.
GOLDEN_SCALE = 1.0 / 400.0

#: Seed of the golden grids' runners.
GOLDEN_SEED = 0


@dataclass(frozen=True)
class GoldenGrid:
    """One committed reference grid.

    Attributes:
        name: Stem of the committed snapshot file (``<name>.json``).
        server_factory: Runner's server model.
        points: Builder returning the grid (a fresh list each call, so
            tests may permute it freely).
    """

    name: str
    server_factory: Callable[..., ServerConfig]
    points: Callable[[], List[SweepPoint]]

    def build_runner(self, fast_path: bool = True) -> SweepRunner:
        """Fresh runner configured exactly as the committed snapshot was."""
        return SweepRunner(self.server_factory, scale=GOLDEN_SCALE,
                           seed=GOLDEN_SEED, fast_path=fast_path)


def _fig3_points() -> List[SweepPoint]:
    """Small Fig. 3 slice: ResNet18, page cache vs MinIO, two cache sizes."""
    return SweepRunner.grid(
        models=[RESNET18], loaders=["dali-shuffle", "coordl"],
        cache_fractions=(0.35, 0.8), dataset="openimages", num_epochs=3)


def _fig9b_points() -> List[SweepPoint]:
    """Small Fig. 9(b) slice: two HDD servers, baseline vs partitioned."""
    return SweepRunner.grid(
        models=[RESNET18], loaders=["dist-baseline", "dist-coordl"],
        cache_fractions=(0.6,), dataset="openimages",
        num_servers=2, num_epochs=2)


def _tab7_points() -> List[SweepPoint]:
    """Small Tab. 7 slice: fully-cached HP search, two models."""
    return SweepRunner.grid(
        models=[ALEXNET, RESNET18], loaders=["hp-baseline", "hp-coordl"],
        cache_fractions=(1.2,), dataset="imagenet-1k", num_jobs=4)


def _fig3_warm_points() -> List[SweepPoint]:
    """Warm multi-epoch Fig. 3 slice: epochs 2+ replay the segmented-LRU
    warm kernel (page cache below and near the dataset size)."""
    return SweepRunner.grid(
        models=[RESNET18], loaders=["dali-shuffle", "coordl"],
        cache_fractions=(0.35, 0.8), dataset="openimages", num_epochs=5)


def _fig9d_points() -> List[SweepPoint]:
    """Thrashing-regime Fig. 9(d) slice: the shared page cache sits below
    the dataset, so the interleaved multi-job stream evicts continuously
    (the dali side) — the warm kernel's multi-pass entry."""
    return SweepRunner.grid(
        models=[ALEXNET], loaders=["hp-baseline", "hp-coordl"],
        cache_fractions=(0.35, 0.65), dataset="imagenet-1k", num_jobs=4)


def _fig_crash_points() -> List[SweepPoint]:
    """Crash/re-warm slice: CoorDL jobs losing workers mid-training, plus
    two multi-tenant HP points (shared page cache under 1 vs 4 campaigns)."""
    common = dict(model=RESNET18, dataset="openimages",
                  cache_fraction=0.65, num_epochs=4)
    return [
        SweepPoint(loader="coordl-crash", num_jobs=4,
                   crash_schedule=(), label="no-crash", **common),
        SweepPoint(loader="coordl-crash", num_jobs=4,
                   crash_schedule=((1, 1),), label="one-crash", **common),
        SweepPoint(loader="coordl-crash", num_jobs=4,
                   crash_schedule=((1, 1), (2, 3)), label="two-crashes", **common),
        SweepPoint(loader="hp-multitenant", num_jobs=2, tenants=1,
                   label="single-tenant", **common),
        SweepPoint(loader="hp-multitenant", num_jobs=2, tenants=4,
                   label="four-tenants", **common),
    ]


def _fig_elastic_points() -> List[SweepPoint]:
    """Elasticity slice: servers joining/leaving a CoorDL partition, plus
    skewed-rate stragglers degrading the slowest rank."""
    common = dict(model=RESNET18, dataset="openimages",
                  cache_fraction=0.5, num_epochs=4)
    return [
        SweepPoint(loader="coordl-elastic", num_servers=2,
                   membership_schedule=(), label="static-2", **common),
        SweepPoint(loader="coordl-elastic", num_servers=2,
                   membership_schedule=((1, 4),), label="grow-to-4", **common),
        SweepPoint(loader="coordl-elastic", num_servers=4,
                   membership_schedule=((2, 2),), label="shrink-to-2", **common),
        SweepPoint(loader="coordl-straggler", num_servers=2,
                   straggler_factors=(4.0,), label="one-straggler-4x", **common),
        SweepPoint(loader="coordl-straggler", num_servers=2,
                   straggler_factors=(1.0, 2.0), label="rank1-2x", **common),
    ]


#: The committed reference grids, by name.
GOLDEN_GRIDS: Dict[str, GoldenGrid] = {
    grid.name: grid
    for grid in (
        GoldenGrid("fig3_small", config_ssd_v100, _fig3_points),
        GoldenGrid("fig9b_small", config_hdd_1080ti, _fig9b_points),
        GoldenGrid("tab7_small", config_ssd_v100, _tab7_points),
        GoldenGrid("fig3_warm", config_ssd_v100, _fig3_warm_points),
        GoldenGrid("fig9d_small", config_ssd_v100, _fig9d_points),
        GoldenGrid("fig_crash_small", config_ssd_v100, _fig_crash_points),
        GoldenGrid("fig_elastic_small", config_hdd_1080ti, _fig_elastic_points),
    )
}

def run_golden_grid(name: str, workers: int = 0,
                    fast_path: bool = True) -> Dict[str, Any]:
    """Run one reference grid and return its byte-exact snapshot.

    ``fast_path=False`` forces the per-item/per-batch reference paths; the
    bulk warm kernel alone is toggled orthogonally through the
    :data:`~repro.cache.warm_kernel.WARM_KERNEL_ENV_VAR` environment
    variable (which spawned sweep workers inherit).
    """
    try:
        grid = GOLDEN_GRIDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown golden grid {name!r}; known: {sorted(GOLDEN_GRIDS)}") from None
    runner = grid.build_runner(fast_path=fast_path)
    return runner.run(grid.points(), workers=workers).snapshot()


def snapshot_to_json(snapshot: Dict[str, Any]) -> str:
    """Canonical JSON text of a snapshot (sorted keys, stable indentation)."""
    return json.dumps(snapshot, indent=1, sort_keys=True) + "\n"


def golden_path(name: str, directory: pathlib.Path) -> pathlib.Path:
    """Path of a committed snapshot file inside the given golden directory.

    The directory (``tests/golden/`` in this repo) is the *caller's* to
    supply: the library cannot assume it is imported from a source
    checkout, so it never derives test-tree paths from ``__file__``.
    """
    return pathlib.Path(directory) / f"{name}.json"


def load_golden(name: str, directory: pathlib.Path) -> Dict[str, Any]:
    """Load one committed reference snapshot."""
    path = golden_path(name, directory)
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_golden(name: str, directory: pathlib.Path) -> pathlib.Path:
    """Regenerate one committed snapshot (serial run); returns its path."""
    path = golden_path(name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(snapshot_to_json(run_golden_grid(name)))
    return path


def snapshot_diff(expected: Dict[str, Any], actual: Dict[str, Any]) -> List[str]:
    """Human-readable paths at which two snapshots disagree (first few).

    Byte-identical snapshots return ``[]``.  Used by the golden tests to
    point at the diverging record/epoch/field instead of dumping two JSON
    blobs.
    """
    diffs: List[str] = []

    def walk(path: str, a: Any, b: Any) -> None:
        if len(diffs) >= 10:
            return
        if type(a) is not type(b):
            diffs.append(f"{path}: type {type(a).__name__} != {type(b).__name__}")
        elif isinstance(a, dict):
            for key in sorted(set(a) | set(b)):
                if key not in a or key not in b:
                    diffs.append(f"{path}.{key}: missing on one side")
                else:
                    walk(f"{path}.{key}", a[key], b[key])
        elif isinstance(a, list):
            if len(a) != len(b):
                diffs.append(f"{path}: length {len(a)} != {len(b)}")
            for i, (va, vb) in enumerate(zip(a, b)):
                walk(f"{path}[{i}]", va, vb)
        elif a != b:
            diffs.append(f"{path}: {a!r} != {b!r}")

    walk("snapshot", expected, actual)
    return diffs
