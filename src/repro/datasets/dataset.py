"""Synthetic datasets.

A :class:`SyntheticDataset` materialises a :class:`~repro.datasets.catalog.DatasetSpec`
as a concrete collection of items, each with a deterministic pseudo-random
size drawn from a lognormal distribution matching the spec's mean size and
coefficient of variation.  Item ids are dense integers ``0..num_items-1``.

The dataset carries no payload bytes — reads are accounted by the storage
layer — but size lookups are O(1) and the whole object is cheap even for a
few hundred thousand items.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

import numpy as np

from repro.datasets.catalog import DatasetSpec
from repro.exceptions import ConfigurationError, UnknownItemError


class SyntheticDataset:
    """A dataset of ``num_items`` items with realistic size spread.

    Args:
        spec: The dataset specification to materialise.
        seed: Seed for the size generator.  Two datasets built from the same
            spec and seed are identical item-for-item.
        scale: Optional fraction in ``(0, 1]`` used to build a proportionally
            smaller dataset (see :meth:`DatasetSpec.scaled`).
    """

    def __init__(self, spec: DatasetSpec, seed: int = 0, scale: float = 1.0) -> None:
        if scale != 1.0:
            spec = spec.scaled(scale)
        self._spec = spec
        self._seed = seed
        self._item_sizes = self._generate_sizes(spec, seed)

    @staticmethod
    def _generate_sizes(spec: DatasetSpec, seed: int) -> np.ndarray:
        """Draw per-item sizes from a lognormal matching mean and CV."""
        if spec.num_items <= 0:
            raise ConfigurationError("dataset must have at least one item")
        rng = np.random.default_rng(seed)
        mean = spec.mean_item_bytes
        cv = max(spec.item_size_cv, 1e-6)
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - sigma2 / 2.0
        sizes = rng.lognormal(mean=mu, sigma=math.sqrt(sigma2), size=spec.num_items)
        # Keep every item at least 1 KiB: zero-byte samples do not occur in
        # real corpora and would break bytes-per-item accounting.
        return np.maximum(sizes, 1024.0)

    @property
    def spec(self) -> DatasetSpec:
        """The (possibly scaled) spec this dataset was built from."""
        return self._spec

    @property
    def seed(self) -> int:
        """Seed used for the deterministic size generator."""
        return self._seed

    @property
    def name(self) -> str:
        """Dataset name (from the spec)."""
        return self._spec.name

    def __len__(self) -> int:
        return self._spec.num_items

    def __iter__(self) -> Iterator[int]:
        return iter(range(len(self)))

    def item_size(self, item_id: int) -> float:
        """On-disk size in bytes of one item.

        Raises:
            UnknownItemError: if ``item_id`` is out of range.
        """
        if not 0 <= item_id < len(self):
            raise UnknownItemError(f"item {item_id} not in dataset of {len(self)} items")
        return float(self._item_sizes[item_id])

    def item_sizes(self, item_ids: Sequence[int]) -> np.ndarray:
        """Per-item on-disk sizes for a collection of items (vectorised).

        Raises:
            UnknownItemError: if any id is out of range.
        """
        ids = np.asarray(item_ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= len(self)):
            raise UnknownItemError("item id out of range")
        return self._item_sizes[ids]

    def items_size(self, item_ids: Sequence[int]) -> float:
        """Total size in bytes of a collection of items."""
        ids = np.asarray(item_ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= len(self)):
            raise UnknownItemError("item id out of range")
        return float(self._item_sizes[ids].sum())

    @property
    def total_bytes(self) -> float:
        """Total on-disk size of the dataset."""
        return float(self._item_sizes.sum())

    @property
    def mean_item_bytes(self) -> float:
        """Average item size actually realised by the generator."""
        return float(self._item_sizes.mean())

    def cache_capacity_for_fraction(self, fraction: float) -> float:
        """Bytes of cache needed to hold ``fraction`` of this dataset.

        Experiments throughout the paper are parameterised as "x % of the
        dataset cached"; this converts that into a byte budget.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"cache fraction must be in [0, 1], got {fraction}")
        return self.total_bytes * fraction

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        gib = self.total_bytes / (1024 ** 3)
        return f"SyntheticDataset({self.name!r}, items={len(self)}, {gib:.1f} GiB)"
