"""Golden regression tests for the sweep executor.

Each committed file under ``tests/golden/`` is the byte-exact snapshot
(:meth:`~repro.sim.sweep.SweepResult.snapshot`, ``float.hex`` floats) of a
small reference grid — Fig. 3 (single-server training points), Fig. 9(b)
(distributed points) and Tab. 7 (HP-search points).  The tests assert that
:class:`~repro.sim.sweep.SweepRunner` reproduces every one of them
bit-for-bit serially (``workers=0``) and through the spawn worker pool
(``workers=1`` and ``workers=4``): parallel execution must not change a
single float bit, I/O counter or cache statistic.

Regenerate the files with ``python tools/make_golden.py`` only when a
deliberate simulation change moves the numbers.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.sim.harness import (
    GOLDEN_GRIDS,
    golden_path,
    load_golden,
    run_golden_grid,
    snapshot_diff,
    snapshot_to_json,
)

#: The committed snapshots live next to this test module.
GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

GRID_NAMES = sorted(GOLDEN_GRIDS)


@pytest.mark.parametrize("name", GRID_NAMES)
def test_golden_file_exists_and_parses(name):
    assert golden_path(name, GOLDEN_DIR).exists(), (
        f"missing committed snapshot for {name}; run tools/make_golden.py")
    expected = load_golden(name, GOLDEN_DIR)
    assert len(expected["records"]) == len(GOLDEN_GRIDS[name].points())


@pytest.mark.parametrize("workers", [0, 1, 4])
@pytest.mark.parametrize("name", GRID_NAMES)
def test_sweep_reproduces_golden_snapshot(name, workers):
    """Serial and pooled runs reproduce the committed bytes exactly."""
    expected = load_golden(name, GOLDEN_DIR)
    actual = run_golden_grid(name, workers=workers)
    diffs = snapshot_diff(expected, actual)
    assert not diffs, (
        f"{name} at workers={workers} diverged from the committed snapshot "
        f"(first differences: {diffs}); if the simulation legitimately "
        "changed, regenerate with tools/make_golden.py")


@pytest.mark.parametrize("name", GRID_NAMES)
def test_golden_file_is_in_canonical_form(name):
    """Committed files carry the canonical serialisation, not a stale dump.

    Guards against hand-edits and against the serialisation drifting away
    from what ``tools/make_golden.py`` writes.
    """
    text = golden_path(name, GOLDEN_DIR).read_text(encoding="utf-8")
    assert text == snapshot_to_json(load_golden(name, GOLDEN_DIR))
