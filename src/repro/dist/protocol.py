"""Frame protocol of the multi-host sweep fabric.

Driver (:class:`~repro.dist.DistExecutor`) and worker agents
(:class:`~repro.dist.DistWorker`) speak length-prefixed JSON frames over a
plain TCP socket: a 4-byte big-endian payload length followed by the frame
as canonical UTF-8 JSON.  Framing lives here (:func:`send_frame` /
:func:`recv_frame`) together with the spec wire forms, so the two sides —
and the tests — cannot drift.

Frame types (every frame is a JSON object with a ``"type"`` key):

======================  =========  =========================================
``hello``               both ways  handshake; carries ``protocol`` (checked
                                   against :data:`DIST_PROTOCOL_VERSION`),
                                   and from the worker ``pid``/``workers``
``ping`` / ``pong``     both ways  liveness probe
``run_chunk``           to worker  ``id``, ``spec`` (wire runner spec) and
                                   ``points`` (``[[index, point], ...]``)
``record``              to driver  one finished point: ``id``, ``index``
                                   and the fully-invertible ``snapshot``
``point_error``         to driver  one failed point: ``id``, ``index``,
                                   ``error`` text and worker ``traceback``
``chunk_done``          to driver  chunk barrier: ``id``, ``ok``/``failed``
``shutdown`` / ``bye``  both ways  orderly connection teardown
======================  =========  =========================================

Payload shapes are **reused from the serve layer**
(:mod:`repro.serve.protocol`): the runner spec travels as the whitelisted
``module:qualname`` factory token plus four scalars, points by model zoo
name, and records as ``SweepRecord.snapshot(include_timeline=True)`` — the
byte-exact wire form the store and the HTTP daemon already use.  The same
security posture applies: a worker agent resolves factory tokens only from
:data:`repro.serve.protocol.ALLOWED_FACTORY_MODULES`, because the token is
imported and *called* — accepting arbitrary tokens from the network would
be remote code execution by configuration.
"""

from __future__ import annotations

import json
import os
import socket
import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.serve.protocol import (
    runner_from_wire,
    runner_to_wire,
)
from repro.sim.sweep import SweepRunner

#: Version tag exchanged in ``hello`` frames; bumped on breaking protocol
#: changes so a stale agent fails loudly instead of misparsing.
DIST_PROTOCOL_VERSION = 1

#: Environment variable supplying the default worker-host list of the
#: sweep-running CLI commands (``run-experiment`` / ``report`` / ``serve``)
#: when no ``--hosts`` flag is passed: a comma-separated ``host:port`` list,
#: e.g. ``127.0.0.1:8501,127.0.0.1:8502``.  Unset or empty means "no
#: fabric" (local execution).
HOSTS_ENV_VAR = "REPRO_SWEEP_HOSTS"

#: Hard bound on one frame's JSON payload.  Golden-grid snapshots are a few
#: hundred KiB; anything near this bound is a protocol error, not data.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def send_frame(sock: socket.socket, frame: Dict[str, Any]) -> None:
    """Send one frame: 4-byte big-endian length + canonical JSON payload."""
    payload = json.dumps(frame, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ConfigurationError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte protocol bound")
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks: List[bytes] = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Dict[str, Any]:
    """Receive one frame; raises :class:`ConnectionError` on EOF/short read.

    A clean close *between* frames also raises ``ConnectionError`` — the
    caller decides whether the conversation was allowed to end there.
    """
    header = sock.recv(_LENGTH.size)
    if not header:
        raise ConnectionError("peer closed the connection")
    if len(header) < _LENGTH.size:
        header += _recv_exact(sock, _LENGTH.size - len(header))
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(
            f"peer announced a {length}-byte frame (bound is "
            f"{MAX_FRAME_BYTES}); refusing to read it")
    payload = _recv_exact(sock, length)
    try:
        frame = json.loads(payload.decode("utf-8"))
    except ValueError as exc:
        raise ConnectionError(f"peer sent an unparsable frame: {exc}") from exc
    if not isinstance(frame, dict) or "type" not in frame:
        raise ConnectionError("peer sent a frame without a 'type'")
    return frame


def spec_to_wire(spec: tuple) -> Dict[str, Any]:
    """Wire form of one picklable runner spec tuple.

    ``spec`` is :meth:`~repro.sim.sweep.SweepRunner.spec` output — the same
    tuple :class:`~repro.store.PersistentPool` pickles to its workers.  The
    factory function is replaced by its ``module:qualname`` token (the
    serve layer's rendering), which also validates driver-side that the
    factory is resolvable and whitelisted before anything hits the network.
    """
    server_factory, scale, seed, queue_depth, fast_path = spec
    runner = SweepRunner(server_factory, scale=scale, seed=seed,
                         queue_depth=queue_depth, fast_path=fast_path)
    wire = runner_to_wire(runner)
    # Round-trip through the whitelist check now: a driver must fail this
    # loudly at submit time, not discover it as a remote protocol error.
    runner_from_wire(wire)
    return wire


def spec_from_wire(data: Dict[str, Any]) -> tuple:
    """Rebuild the picklable spec tuple a wire runner spec describes.

    Factory resolution goes through the serve layer's whitelist
    (:data:`~repro.serve.protocol.ALLOWED_FACTORY_MODULES`); the returned
    tuple feeds the same per-worker runner/dataset/sampler caches
    :class:`~repro.store.PersistentPool` workers use.
    """
    return runner_from_wire(data).spec()


def parse_hosts(text: str) -> List[Tuple[str, int]]:
    """Parse a ``host:port[,host:port...]`` list into ``(host, port)`` pairs."""
    hosts: List[Tuple[str, int]] = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        host, sep, port = item.rpartition(":")
        if not sep or not host:
            raise ConfigurationError(
                f"worker host {item!r} is not of the form host:port")
        try:
            hosts.append((host, int(port)))
        except ValueError:
            raise ConfigurationError(
                f"worker host {item!r} has a non-integer port") from None
    if not hosts:
        raise ConfigurationError("the worker host list is empty")
    return hosts


def resolve_hosts(hosts: Optional[str] = None) -> Optional[List[Tuple[str, int]]]:
    """Normalise a ``--hosts`` argument to ``(host, port)`` pairs.

    ``None`` falls back to :data:`HOSTS_ENV_VAR` (no fabric when unset or
    empty — the local-execution default).
    """
    if hosts is None:
        hosts = os.environ.get(HOSTS_ENV_VAR, "").strip()
    if not hosts:
        return None
    return parse_hosts(hosts)
