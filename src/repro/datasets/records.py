"""TFRecord / RecordIO style chunked dataset layout (Sec. 3.3.3, Table 3).

TensorFlow does not store training samples as individual files; it serialises
them into a set of ~100-200 MB record files ("TFRecords").  Reads become
sequential over large chunks, which interacts pathologically with the page
cache's LRU policy: by the time the scan wraps around to the beginning of the
file set, the head chunks have been evicted, so an LRU cache smaller than the
dataset yields almost no hits.

:class:`RecordLayout` maps item ids onto chunk ids so the cache/IO simulation
can be run at chunk granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.datasets.dataset import SyntheticDataset
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class RecordChunk:
    """One serialized record file: a contiguous range of items."""

    chunk_id: int
    first_item: int
    num_items: int
    size_bytes: float


class RecordLayout:
    """Assignment of dataset items to fixed-size record chunks.

    Args:
        dataset: The dataset being serialised.
        chunk_bytes: Target chunk size; the paper quotes 100–200 MB per
            TFRecord file, default 150 MB.
        shuffle_seed: TFRecord creation shuffles items once before
            serialisation; the seed makes that shuffle deterministic.
    """

    def __init__(self, dataset: SyntheticDataset, chunk_bytes: float = 150e6,
                 shuffle_seed: int = 0) -> None:
        if chunk_bytes <= 0:
            raise ConfigurationError("chunk size must be positive")
        self._dataset = dataset
        self._chunk_bytes = chunk_bytes
        rng = np.random.default_rng(shuffle_seed)
        self._serial_order = rng.permutation(len(dataset)).astype(np.int64)
        self._chunks = self._build_chunks()
        self._item_to_chunk = self._build_index()

    def _build_chunks(self) -> List[RecordChunk]:
        chunks: List[RecordChunk] = []
        start = 0
        chunk_id = 0
        current_bytes = 0.0
        for pos, item in enumerate(self._serial_order):
            current_bytes += self._dataset.item_size(int(item))
            last = pos == len(self._serial_order) - 1
            if current_bytes >= self._chunk_bytes or last:
                chunks.append(RecordChunk(
                    chunk_id=chunk_id,
                    first_item=start,
                    num_items=pos - start + 1,
                    size_bytes=current_bytes,
                ))
                chunk_id += 1
                start = pos + 1
                current_bytes = 0.0
        return chunks

    def _build_index(self) -> np.ndarray:
        index = np.empty(len(self._dataset), dtype=np.int64)
        for chunk in self._chunks:
            serial_positions = range(chunk.first_item, chunk.first_item + chunk.num_items)
            for pos in serial_positions:
                index[self._serial_order[pos]] = chunk.chunk_id
        return index

    @property
    def dataset(self) -> SyntheticDataset:
        """The dataset this layout serialises."""
        return self._dataset

    @property
    def num_chunks(self) -> int:
        """Number of record files."""
        return len(self._chunks)

    @property
    def chunks(self) -> List[RecordChunk]:
        """All chunks, in serialisation (storage) order."""
        return list(self._chunks)

    def chunk_of_item(self, item_id: int) -> int:
        """Chunk id that stores a given item."""
        return int(self._item_to_chunk[item_id])

    def chunk_size(self, chunk_id: int) -> float:
        """On-disk size of a chunk in bytes."""
        return self._chunks[chunk_id].size_bytes

    def sequential_chunk_order(self) -> np.ndarray:
        """Chunk access order for a sequential epoch scan."""
        return np.arange(self.num_chunks, dtype=np.int64)

    def interleaved_chunk_order(self, num_readers: int, seed: int = 0) -> np.ndarray:
        """Chunk order when ``num_readers`` parallel readers interleave files.

        tf.data typically interleaves several record files; the resulting
        storage stream is still (piecewise) sequential, it just rotates among
        ``num_readers`` open files.
        """
        if num_readers <= 0:
            raise ConfigurationError("need at least one reader")
        rng = np.random.default_rng(seed)
        files = rng.permutation(self.num_chunks)
        order: List[int] = []
        # Round-robin over groups of num_readers files.
        for group_start in range(0, self.num_chunks, num_readers):
            group = list(files[group_start:group_start + num_readers])
            while group:
                order.append(int(group.pop(0)))
        return np.asarray(order, dtype=np.int64)
