"""Unit tests for the epoch samplers and batch sampler."""

import numpy as np
import pytest

from repro.datasets.sampler import (
    BatchSampler,
    CachingSampler,
    DistributedSampler,
    RandomSampler,
    SequentialSampler,
    ShuffleBufferSampler,
    verify_epoch_invariant,
)
from repro.exceptions import ConfigurationError


class TestSequentialSampler:
    def test_yields_storage_order(self):
        sampler = SequentialSampler(10)
        assert list(sampler.epoch(0)) == list(range(10))
        assert list(sampler.epoch(3)) == list(range(10))


class TestRandomSampler:
    def test_every_epoch_is_a_permutation(self):
        sampler = RandomSampler(50, seed=3)
        for epoch in range(3):
            assert verify_epoch_invariant(sampler.epoch(epoch), 50)

    def test_epochs_differ(self):
        sampler = RandomSampler(100, seed=3)
        assert not np.array_equal(sampler.epoch(0), sampler.epoch(1))

    def test_same_seed_reproducible(self):
        a = RandomSampler(100, seed=9)
        b = RandomSampler(100, seed=9)
        assert np.array_equal(a.epoch(2), b.epoch(2))

    def test_rejects_empty_dataset(self):
        with pytest.raises(ConfigurationError):
            RandomSampler(0)


class TestShuffleBufferSampler:
    def test_training_order_is_a_permutation(self):
        sampler = ShuffleBufferSampler(64, buffer_size=8, seed=0)
        assert verify_epoch_invariant(sampler.epoch(0), 64)

    def test_storage_order_is_sequential(self):
        sampler = ShuffleBufferSampler(64, buffer_size=8, seed=0)
        assert list(sampler.storage_order(0)) == list(range(64))

    def test_shuffling_is_bounded_by_the_window(self):
        # An item cannot appear in the output earlier than its own position
        # minus the buffer size, nor arbitrarily later than buffer allows.
        n, window = 200, 10
        sampler = ShuffleBufferSampler(n, buffer_size=window, seed=1)
        order = list(sampler.epoch(0))
        for out_pos, item in enumerate(order):
            assert item <= out_pos + window - 1

    def test_rejects_non_positive_buffer(self):
        with pytest.raises(ConfigurationError):
            ShuffleBufferSampler(10, buffer_size=0)


class TestDistributedSampler:
    def test_shards_are_disjoint_and_cover_dataset(self):
        n, replicas = 103, 4
        samplers = [DistributedSampler(n, replicas, r, seed=5) for r in range(replicas)]
        combined = np.concatenate([s.epoch(2) for s in samplers])
        assert verify_epoch_invariant(combined, n)

    def test_shards_change_every_epoch(self):
        sampler = DistributedSampler(1000, 2, 0, seed=5)
        assert set(sampler.epoch(0)) != set(sampler.epoch(1))

    def test_rank_validation(self):
        with pytest.raises(ConfigurationError):
            DistributedSampler(10, 2, 2)
        with pytest.raises(ConfigurationError):
            DistributedSampler(10, 0, 0)


class TestBatchSampler:
    def test_batches_cover_the_epoch(self):
        batcher = BatchSampler(RandomSampler(100, seed=0), batch_size=16)
        batches = batcher.epoch(0)
        assert verify_epoch_invariant(np.concatenate(batches), 100)

    def test_batch_count_without_drop_last(self):
        batcher = BatchSampler(RandomSampler(100, seed=0), batch_size=16)
        assert batcher.batches_per_epoch() == 7
        assert len(batcher.epoch(0)) == 7

    def test_drop_last_drops_partial_batch(self):
        batcher = BatchSampler(RandomSampler(100, seed=0), batch_size=16, drop_last=True)
        assert batcher.batches_per_epoch() == 6
        assert all(len(b) == 16 for b in batcher.epoch(0))

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ConfigurationError):
            BatchSampler(RandomSampler(10), batch_size=0)

    def test_sharded_partial_batch_counted_and_emitted_consistently(self):
        """Regression: a shard's final short batch is either in both paths or neither.

        ``batches_per_epoch`` used to count from the full dataset size while
        ``epoch`` iterated only the rank's shard, so the short batch could be
        counted but dropped (or vice versa) depending on the ``drop_last``
        setting and which path asked.
        """
        # 10 items over 2 ranks -> shard length 5; batch 3 -> one full + one short.
        for drop_last, expected in ((False, 2), (True, 1)):
            sampler = DistributedSampler(10, num_replicas=2, rank=0, seed=0)
            assert sampler.epoch_length == 5
            batcher = BatchSampler(sampler, batch_size=3, drop_last=drop_last)
            batches = batcher.epoch(0)
            assert len(batches) == expected
            assert batcher.batches_per_epoch() == expected
            if drop_last:
                assert all(len(b) == 3 for b in batches)

    def test_sharded_exact_batches_unaffected_by_drop_last(self):
        # Shard length 5 with batch 5: no remainder, both settings agree.
        for drop_last in (False, True):
            sampler = DistributedSampler(10, num_replicas=2, rank=1, seed=0)
            batcher = BatchSampler(sampler, batch_size=5, drop_last=drop_last)
            assert len(batcher.epoch(0)) == batcher.batches_per_epoch() == 1

    def test_epoch_length_of_whole_dataset_samplers(self):
        assert RandomSampler(17, seed=0).epoch_length == 17
        caching = CachingSampler(DistributedSampler(10, 3, 2, seed=0))
        assert caching.epoch_length == len(caching.epoch(0))


class TestEpochInvariantHelper:
    def test_detects_missing_and_duplicate_items(self):
        assert verify_epoch_invariant([0, 1, 2], 3)
        assert not verify_epoch_invariant([0, 1, 1], 3)
        assert not verify_epoch_invariant([0, 1], 3)
