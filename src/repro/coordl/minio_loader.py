"""CoorDL single-server loader: DALI-style prep + the MinIO cache (Sec. 4.1).

Compared with the DALI baseline the only change on a single server is the
caching policy: raw items are cached in CoorDL's own MinIO cache (insert
while space, never evict) instead of the thrashing OS page cache, reducing
per-epoch disk I/O to the capacity-miss minimum.  Sampling, randomisation and
pre-processing are unmodified.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.minio import MinIOCache
from repro.cluster.server import ServerConfig
from repro.datasets.dataset import SyntheticDataset
from repro.datasets.sampler import BatchSampler, RandomSampler, Sampler
from repro.pipeline.base import DataLoader
from repro.prep.pipeline import PrepPipeline
from repro.storage.filestore import FileStore


class CoorDLLoader(DataLoader):
    """Single-server CoorDL data loader (MinIO cache + nvJPEG prep)."""

    name = "coordl"

    @classmethod
    def build(cls, dataset: SyntheticDataset, server: ServerConfig,
              batch_size: int, gpu_prep: bool = False,
              num_gpus: Optional[int] = None, cores: Optional[float] = None,
              cache: Optional[MinIOCache] = None, seed: int = 0,
              sampler: Optional[Sampler] = None) -> "CoorDLLoader":
        """Construct a CoorDL loader for one training job on one server.

        Args:
            dataset: Dataset to train on.
            server: Server the job runs on.
            batch_size: Per-iteration (per-job) batch size.
            gpu_prep: Offload decode/augmentation to the GPUs (CoorDL keeps
                DALI's prep path; only the cache changes).
            num_gpus: GPUs used by the job (default: all on the server).
            cores: Physical prep cores for this job (default: all).
            cache: Existing MinIO cache to share (fresh one when omitted).
            seed: Sampler seed.
            sampler: Ready-made item-order sampler to reuse (parameter sweeps
                share one memoised sampler across loaders).
        """
        gpus = num_gpus if num_gpus is not None else server.num_gpus
        prep = PrepPipeline.for_task(dataset.spec.task, library="dali")
        prep = prep.with_scaled_cost(dataset.spec.prep_cost_scale)
        workers = server.worker_pool(cores=cores, gpu_offload=gpu_prep)
        minio = cache if cache is not None else MinIOCache(server.cache_bytes)
        if sampler is None:
            sampler = RandomSampler(len(dataset), seed=seed)
        return cls(
            dataset=dataset,
            store=FileStore(dataset, server.storage),
            cache=minio,
            batch_sampler=BatchSampler(sampler, batch_size),
            prep=prep,
            workers=workers,
            num_gpus=gpus,
        )


def best_coordl_loader(dataset: SyntheticDataset, server: ServerConfig,
                       batch_size: int, model_gpu_prep_interference: float = 0.0,
                       num_gpus: Optional[int] = None, cores: Optional[float] = None,
                       cache: Optional[MinIOCache] = None, seed: int = 0,
                       sampler: Optional[Sampler] = None) -> CoorDLLoader:
    """Pick CoorDL's CPU-prep or GPU-prep variant, whichever is faster.

    Mirrors :func:`repro.pipeline.dali.best_dali_loader` so comparisons are
    like-for-like ("best of CPU or GPU based prep" on both sides).
    """
    cpu_loader = CoorDLLoader.build(dataset, server, batch_size, gpu_prep=False,
                                    num_gpus=num_gpus, cores=cores, cache=cache,
                                    seed=seed, sampler=sampler)
    gpu_loader = CoorDLLoader.build(dataset, server, batch_size, gpu_prep=True,
                                    num_gpus=num_gpus, cores=cores, cache=cache,
                                    seed=seed, sampler=sampler)
    cpu_rate = cpu_loader.prep_rate()
    gpu_rate = gpu_loader.prep_rate() * (1.0 - model_gpu_prep_interference)
    return gpu_loader if gpu_rate > cpu_rate else cpu_loader
