"""Figure 4 — training throughput versus CPU cores per GPU.

With the dataset fully cached (no fetch stalls), the paper sweeps the number
of pre-processing cores per GPU and finds that compute-heavy models
(ResNet50) need only 3–4 cores per GPU while light models (ResNet18, AlexNet)
need 12–24 to mask prep stalls.  This experiment reproduces the sweep using
CPU-only prep (the sweep isolates CPU scaling, as in the paper's figure) and
reports throughput normalised to the GPU ingestion rate.  The models x cores
grid runs through :class:`~repro.sim.sweep.SweepRunner`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import ALEXNET, MOBILENET_V2, RESNET18, RESNET50, ModelSpec
from repro.dsanalyzer.whatif import cores_needed_per_gpu
from repro.experiments.base import ExperimentResult, SWEEP_SCALE
from repro.sim.sweep import SweepPoint, SweepRunner
from repro.store import PersistentPool, StoreArg

DEFAULT_MODELS = (RESNET18, ALEXNET, MOBILENET_V2, RESNET50)
DEFAULT_CORES_PER_GPU = (1, 2, 3, 6, 12, 24)

#: Cache budget relative to the dataset: comfortably over-provisioned so the
#: sweep isolates prep scaling (no fetch stalls).
FULLY_CACHED_FRACTION = 1.2


def run(scale: float = SWEEP_SCALE, models: Optional[Sequence[ModelSpec]] = None,
        cores_per_gpu: Sequence[int] = DEFAULT_CORES_PER_GPU,
        dataset_name: str = "imagenet-1k", num_gpus: int = 1,
        seed: int = 0, workers: Optional[int] = None,
        store: StoreArg = None,
        pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Reproduce the throughput-vs-cores sweep and the cores-needed summary."""
    chosen = list(models) if models is not None else list(DEFAULT_MODELS)
    runner = SweepRunner(config_ssd_v100, scale=scale, seed=seed)
    dataset = runner.dataset(dataset_name)
    server = config_ssd_v100()
    points = [
        SweepPoint(model=model, loader="dali-shuffle", dataset=dataset_name,
                   cache_fraction=FULLY_CACHED_FRACTION, num_gpus=num_gpus,
                   cores=min(cores * num_gpus, server.physical_cores),
                   gpu_prep=False, label=f"{cores}")
        for model in chosen for cores in cores_per_gpu
    ]
    sweep = runner.run(points, workers=workers, store=store, pool=pool)

    result = ExperimentResult(
        experiment_id="fig4",
        title="Fig. 4 — throughput vs CPU cores per GPU (dataset fully cached)",
        columns=["model", "cores_per_gpu", "throughput", "gpu_rate",
                 "prep_stall_pct", "cores_needed_per_gpu"],
        notes=["paper: 3-4 cores/GPU suffice for ResNet50; 12-24 for ResNet18/AlexNet"],
    )
    for model in chosen:
        full_cache = config_ssd_v100(
            cache_bytes=dataset.total_bytes * FULLY_CACHED_FRACTION)
        needed = cores_needed_per_gpu(model, dataset, full_cache, max_cores_per_gpu=32)
        gpu_rate = model.aggregate_gpu_rate(full_cache.gpu, num_gpus)
        for cores in cores_per_gpu:
            epoch = sweep.one(model=model, label=f"{cores}").steady
            result.add_row(
                model=model.name,
                cores_per_gpu=cores,
                throughput=epoch.throughput,
                gpu_rate=gpu_rate,
                prep_stall_pct=100.0 * epoch.prep_stall_fraction,
                cores_needed_per_gpu=needed,
            )
    return result
