"""The MinIO cache (Sec. 4.1) — the paper's DNN-aware caching policy.

Key observation: DNN training accesses every item exactly once per epoch in a
random order, so *which* items are cached is irrelevant — all that matters is
that cached items are not evicted before they are used.  MinIO therefore never
replaces anything: items are admitted while there is space, and once the cache
is full all further requests for uncached items go to storage.  Every epoch
after the first then gets exactly ``len(cache)`` hits, the theoretical minimum
amount of disk I/O for the given DRAM budget.

The policy needs no recency or frequency bookkeeping, which is the point the
paper makes about its simplicity.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.cache.base import Cache


class MinIOCache(Cache):
    """Insert-while-space, never-evict cache specialised for DNN training."""

    def __init__(self, capacity_bytes: float) -> None:
        super().__init__(capacity_bytes)
        self._entries: Dict[int, float] = {}
        self._used = 0.0
        # Memoised membership table for the vectorised epoch path; rebuilt
        # lazily after any per-item admission invalidates it.
        self._member_table: Optional[np.ndarray] = None

    @property
    def used_bytes(self) -> float:
        return self._used

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._entries

    def cached_items(self) -> Iterable[int]:
        return list(self._entries.keys())

    def lookup(self, item_id: int) -> bool:
        size = self._entries.get(item_id)
        if size is None:
            self._stats.record_miss()
            return False
        self._stats.record_hit(size)
        return True

    def admit(self, item_id: int, size_bytes: float) -> bool:
        if item_id in self._entries:
            return True
        if self._used + size_bytes > self._capacity:
            # No replacement, ever: the request simply defaults to storage
            # and the cache contents survive to serve the next epoch.
            self._stats.rejected += 1
            return False
        self._entries[item_id] = size_bytes
        self._used += size_bytes
        self._stats.insertions += 1
        self._member_table = None
        return True

    def _membership_table(self, max_id: int) -> np.ndarray:
        """Boolean residency table covering ids up to ``max_id`` (memoised)."""
        table = self._member_table
        if table is None or table.size <= max_id:
            table = np.zeros(max_id + 1, dtype=bool)
            if self._entries:
                resident = np.fromiter(self._entries.keys(), dtype=np.int64,
                                       count=len(self._entries))
                table_size = int(max(max_id, resident.max())) + 1
                table = np.zeros(table_size, dtype=bool)
                table[resident] = True
            self._member_table = table
        return table

    def contains_array(self, item_ids: np.ndarray) -> np.ndarray:
        """Residency mask for many ids at once (no stats side effects)."""
        item_ids = np.asarray(item_ids, dtype=np.int64)
        return self._membership_table(int(item_ids.max(initial=0)))[item_ids]

    def bulk_epoch_hits(self, item_ids: np.ndarray, sizes: np.ndarray,
                        admit: Optional[np.ndarray] = None) -> Optional[np.ndarray]:
        """One whole epoch of distinct accesses, vectorised.

        MinIO's trajectory over a single-pass epoch is always analytic: it
        never evicts, so an access hits iff the item was resident when the
        epoch started (an item admitted mid-epoch is not re-requested within
        the same epoch), and admissions are the greedy insert-while-space
        scan over the missed items in access order.  The mask, counters and
        cache contents after this call are identical to per-item ``lookup`` +
        ``admit`` calls over the same access stream.

        Args:
            item_ids: Pairwise-distinct access stream.
            sizes: Item byte sizes, aligned with ``item_ids``.
            admit: Optional boolean mask marking which accesses may be
                offered for admission after a miss.  Misses outside the mask
                are still counted as misses but are never ``admit``-ed (the
                partitioned loader uses this: remote-cache hits avoid the
                local miss path's admission).  ``None`` offers every miss.
        """
        item_ids = np.asarray(item_ids, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.float64)
        table = self._membership_table(int(item_ids.max(initial=0)))
        hits = table[item_ids]

        self._stats.hits += int(hits.sum())
        self._stats.hit_bytes += float(sizes[hits].sum())
        misses = ~hits
        self._stats.misses += int(misses.sum())

        offered = misses if admit is None else misses & np.asarray(admit, dtype=bool)
        miss_sizes = sizes[offered]
        if miss_sizes.size:
            # Greedy admission scan over the missed items in access order.
            # The suffix-minimum lets the scan stop as soon as nothing that
            # is still to come can possibly fit (O(1) on a full cache).
            suffix_min = np.minimum.accumulate(miss_sizes[::-1])[::-1].tolist()
            miss_ids = item_ids[offered].tolist()
            size_list = miss_sizes.tolist()
            capacity = self._capacity
            used = self._used
            admitted = 0
            rejected = 0
            for i, size in enumerate(size_list):
                # Same expression shape as admit()'s test so the early stop
                # is float-identical to rejecting each remaining item.
                if used + suffix_min[i] > capacity:
                    rejected += len(size_list) - i
                    break
                if used + size <= capacity:
                    self._entries[miss_ids[i]] = size
                    table[miss_ids[i]] = True
                    used += size
                    admitted += 1
                else:
                    rejected += 1
            self._used = used
            self._stats.insertions += admitted
            self._stats.rejected += rejected
        return hits

    @property
    def is_full(self) -> bool:
        """True when no further item of typical size can be admitted."""
        return self.free_bytes <= 0.0

    def item_size(self, item_id: int) -> float:
        """Size of a cached item (0.0 when not cached)."""
        return self._entries.get(item_id, 0.0)

    def evict(self, item_id: int) -> float:
        """Forcibly drop one entry; returns the bytes freed (0.0 if absent).

        MinIO itself never evicts — this exists for *external* loss events
        only: the failure scenarios use it when a crashed worker takes its
        slice of the shared cache down with it, so the survivors re-warm
        those items from storage on the next epoch.
        """
        size = self._entries.pop(item_id, None)
        if size is None:
            return 0.0
        self._used -= size
        self._member_table = None
        return size

    def clear(self) -> None:
        """Drop everything — only used when a training *job* ends."""
        self._entries.clear()
        self._used = 0.0
        self._member_table = None
