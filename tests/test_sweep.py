"""Unit tests for the SweepRunner subsystem and the vectorised fast path."""

import numpy as np
import pytest

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import ALEXNET, RESNET18
from repro.exceptions import ConfigurationError
from repro.sim.engine import PipelineSimulator
from repro.sim.single_server import build_loader
from repro.sim.sweep import SweepPoint, SweepRunner

SCALE = 1 / 500.0


class TestSweepPoint:
    def test_rejects_unknown_loader(self):
        with pytest.raises(ConfigurationError):
            SweepPoint(model=RESNET18, loader="nope")

    def test_rejects_conflicting_cache_settings(self):
        with pytest.raises(ConfigurationError):
            SweepPoint(model=RESNET18, cache_fraction=0.5, cache_bytes=1e9)

    def test_rejects_single_epoch_training_points(self):
        with pytest.raises(ConfigurationError):
            SweepPoint(model=RESNET18, loader="coordl", num_epochs=1)
        # HP-search points do not use num_epochs
        SweepPoint(model=RESNET18, loader="hp-coordl", num_epochs=1)

    def test_rejects_fields_the_point_kind_does_not_plumb(self):
        """Inapplicable knobs error out instead of silently simulating without them."""
        for kind in ("hp-baseline", "dist-coordl"):
            for field in ("batch_size", "cores", "num_gpus"):
                with pytest.raises(ConfigurationError):
                    SweepPoint(model=RESNET18, loader=kind, **{field: 4})
        with pytest.raises(ConfigurationError):
            SweepPoint(model=RESNET18, loader="hp-coordl", gpu_prep=True)
        with pytest.raises(ConfigurationError):
            SweepPoint(model=RESNET18, loader="coordl", num_jobs=4)
        with pytest.raises(ConfigurationError):
            SweepPoint(model=RESNET18, loader="coordl", num_servers=3)
        # ...while each kind keeps its own knobs.
        SweepPoint(model=RESNET18, loader="hp-coordl", num_jobs=4, gpus_per_job=2)
        SweepPoint(model=RESNET18, loader="dist-coordl", num_servers=3, gpu_prep=True)
        SweepPoint(model=RESNET18, loader="coordl", batch_size=64, cores=4.0)

    def test_rejects_too_few_distributed_servers(self):
        with pytest.raises(ConfigurationError):
            SweepPoint(model=RESNET18, loader="dist-coordl", num_servers=1)

    def test_grid_is_a_cross_product(self):
        points = SweepRunner.grid(models=[RESNET18, ALEXNET],
                                  loaders=["coordl", "dali-shuffle"],
                                  cache_fractions=(0.35, 0.65),
                                  dataset="openimages")
        assert len(points) == 8
        assert {p.loader for p in points} == {"coordl", "dali-shuffle"}
        assert all(p.dataset == "openimages" for p in points)


class TestSweepRunner:
    def test_training_sweep_produces_one_record_per_point(self):
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        points = SweepRunner.grid(models=[RESNET18],
                                  loaders=["coordl", "dali-shuffle"],
                                  cache_fractions=(0.35, 0.8),
                                  dataset="openimages")
        sweep = runner.run(points)
        assert len(sweep) == 4
        for record in sweep:
            assert record.run is not None
            assert record.run.num_epochs == 2
            assert record.steady.epoch_time_s > 0
        # a bigger cache never slows CoorDL down
        small = sweep.one(loader="coordl", cache_fraction=0.35).steady
        large = sweep.one(loader="coordl", cache_fraction=0.8).steady
        assert large.epoch_time_s <= small.epoch_time_s * 1.001

    def test_shared_dataset_and_sampler_instances(self):
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        assert runner.dataset("openimages") is runner.dataset("openimages")
        d = runner.dataset("openimages")
        assert runner._shared_sampler(d) is runner._shared_sampler(d)

    def test_filter_and_one(self):
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        sweep = runner.run(SweepRunner.grid(
            models=[RESNET18], loaders=["coordl"], cache_fractions=(0.35, 0.8),
            dataset="openimages"))
        assert len(sweep.filter(loader="coordl")) == 2
        assert sweep.one(cache_fraction=0.8).point.cache_fraction == 0.8
        with pytest.raises(ConfigurationError):
            sweep.one(loader="coordl")  # two matches
        with pytest.raises(ConfigurationError):
            sweep.filter(not_a_field=1)

    def test_rows_are_tidy(self):
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        sweep = runner.run([SweepPoint(model=RESNET18, loader="coordl",
                                       dataset="openimages", cache_fraction=0.5)])
        (row,) = sweep.rows()
        assert row["model"] == "resnet18"
        assert row["epoch_time_s"] > 0
        assert row["cache_miss_ratio"] >= 0

    def test_hp_search_points(self):
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        sweep = runner.run(SweepRunner.grid(
            models=[ALEXNET], loaders=["hp-baseline", "hp-coordl"],
            cache_fractions=(0.65,), num_jobs=4))
        baseline = sweep.one(loader="hp-baseline")
        coordl = sweep.one(loader="hp-coordl")
        assert baseline.hp is not None and coordl.hp is not None
        assert baseline.run is None
        with pytest.raises(ConfigurationError):
            _ = baseline.steady
        # CoorDL coordinates the jobs: never slower, reads no more disk.
        assert coordl.hp.epoch_time_s <= baseline.hp.epoch_time_s * 1.001
        assert coordl.hp.disk_bytes_per_epoch <= baseline.hp.disk_bytes_per_epoch * 1.001

    def test_dataset_defaults_to_the_models_dataset(self):
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        sweep = runner.run([SweepPoint(model=ALEXNET, loader="coordl",
                                       cache_fraction=0.5)])
        # scaled specs carry an "@scale" suffix on the catalog name
        assert sweep.records[0].dataset_name.startswith(ALEXNET.default_dataset)


class TestFastPathEquivalence:
    """The vectorised epoch collection must be bit-faithful to the loop."""

    @pytest.mark.parametrize("kind", ["coordl", "dali-shuffle", "pytorch"])
    def test_fast_and_slow_paths_agree(self, kind):
        runner_args = dict(scale=SCALE, seed=0)
        sweeps = {}
        for fast in (False, True):
            runner = SweepRunner(config_ssd_v100, fast_path=fast, **runner_args)
            sweeps[fast] = runner.run(SweepRunner.grid(
                models=[RESNET18], loaders=[kind], cache_fractions=(0.5,),
                dataset="openimages", num_epochs=3))
        slow = sweeps[False].records[0].run
        fast = sweeps[True].records[0].run
        for slow_epoch, fast_epoch in zip(slow.epochs, fast.epochs):
            assert fast_epoch.epoch_time_s == pytest.approx(
                slow_epoch.epoch_time_s, abs=1e-9)
            assert fast_epoch.prep_limited_time_s == pytest.approx(
                slow_epoch.prep_limited_time_s, abs=1e-9)
            assert fast_epoch.gpu_time_s == pytest.approx(
                slow_epoch.gpu_time_s, abs=1e-9)
            assert fast_epoch.samples == slow_epoch.samples
            assert fast_epoch.cache_hits == slow_epoch.cache_hits
            assert fast_epoch.cache_misses == slow_epoch.cache_misses
            assert fast_epoch.io.disk_requests == slow_epoch.io.disk_requests
            assert fast_epoch.io.cache_requests == slow_epoch.io.cache_requests
            assert fast_epoch.io.disk_bytes == pytest.approx(
                slow_epoch.io.disk_bytes, rel=1e-12)
            slow_tl = slow_epoch.io.timeline
            fast_tl = fast_epoch.io.timeline
            assert len(slow_tl) == len(fast_tl)
            if slow_tl:
                assert np.allclose([t for t, _ in slow_tl], [t for t, _ in fast_tl],
                                   atol=1e-9)
                assert np.allclose([b for _, b in slow_tl], [b for _, b in fast_tl],
                                   rtol=1e-12)

    def test_fast_path_declines_shared_caches_with_history(self):
        """A warm page cache shared across loaders still simulates exactly."""
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        dataset = runner.dataset("openimages")
        server = config_ssd_v100(cache_bytes=dataset.total_bytes * 0.5)
        results = {}
        for fast in (False, True):
            loader = build_loader("dali-shuffle", dataset, server, RESNET18, seed=0)
            sim = PipelineSimulator(RESNET18, server.gpu, fast_path=fast)
            results[fast] = [e.epoch_time_s for e in sim.run_epochs(loader, 3)]
        assert results[True] == pytest.approx(results[False], abs=1e-9)
