"""Failure detection for coordinated prep (Sec. 4.3 / 4.4).

With coordinated prep, each HP-search job is responsible for pre-processing a
shard of the dataset; if one job dies mid-epoch, every other job eventually
stalls waiting for the minibatches that job owed.  CoorDL's failure-detection
module works as follows:

* every consumption from the staging area has a timeout (10x the iteration
  time by default);
* a job that times out reports the batch id to the driver; from the shard
  assignment the driver deterministically identifies the responsible producer;
* the driver checks liveness — if the producer is alive it broadcasts
  "retry", otherwise it reassigns the failed shard to a replacement producer.

This module provides the driver-side logic as an explicit state machine so it
can be exercised deterministically in tests and in the HP-search simulator.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.exceptions import ConfigurationError, JobFailedError


class JobState(enum.Enum):
    """Liveness state of one coordinated-prep job."""

    RUNNING = "running"
    SUSPECTED = "suspected"
    DEAD = "dead"


class RecoveryAction(enum.Enum):
    """Driver decision after a timeout report."""

    RETRY = "retry"              # producer alive: consumer should retry the fetch
    RESPAWN = "respawn"          # producer dead: shard reassigned, consumer retries
    NONE = "none"                # report was stale (batch already staged)


@dataclass
class TimeoutReport:
    """A consumer's report that it waited too long for a staged batch."""

    reporting_job: int
    missing_batch_id: int
    suspected_producer: int
    reported_at: float


@dataclass
class FailureEvent:
    """Record of one confirmed failure/elasticity event and its recovery.

    The detector emits ``kind="crash"`` events; the failure scenarios
    (:mod:`repro.sim.failures`) reuse the same record for their full trace
    with ``kind`` in ``{"crash", "join", "leave", "straggler"}``.  Fields a
    kind does not use carry the ``-1`` sentinel (e.g. a ``join`` event has
    no failed job and no missing batch).
    """

    failed_job: int
    detected_at: float
    reassigned_to: int
    missing_batch_id: int
    kind: str = "crash"


class FailureDetector:
    """Driver-side failure detection and shard reassignment.

    Args:
        num_jobs: Jobs participating in coordinated prep.
        iteration_time_s: Typical duration of one training iteration; the
            report threshold is ``timeout_multiplier`` times this value.
        timeout_multiplier: CoorDL uses 10x the iteration time (Sec. 4.4).
        liveness_probe: Callable ``job -> bool`` consulted to verify whether
            a suspected job is actually alive.  Defaults to "alive unless
            previously marked dead", which is what the simulator overrides.
        seed: When given, replacement picking is a pure function of
            ``(seed, failed job, event count)`` — still deterministic, but
            spread over the surviving jobs instead of always loading the
            lowest-numbered one.  The sweep runner passes its
            :meth:`~repro.sim.sweep.SweepRunner.point_seed` here so crash
            scenarios stay byte-identical at any worker count.  ``None``
            keeps the legacy lowest-survivor choice.
    """

    def __init__(self, num_jobs: int, iteration_time_s: float,
                 timeout_multiplier: float = 10.0,
                 liveness_probe: Optional[Callable[[int], bool]] = None,
                 seed: Optional[int] = None) -> None:
        if num_jobs <= 0:
            raise ConfigurationError("need at least one job")
        if iteration_time_s <= 0 or timeout_multiplier <= 0:
            raise ConfigurationError("timeouts must be positive")
        self._states: Dict[int, JobState] = {j: JobState.RUNNING for j in range(num_jobs)}
        self._iteration_time_s = iteration_time_s
        self._timeout_multiplier = timeout_multiplier
        self._liveness_probe = liveness_probe
        self._seed = seed
        self._events: List[FailureEvent] = []
        self._reports: List[TimeoutReport] = []

    @property
    def timeout_s(self) -> float:
        """Wait duration after which a consumer files a report."""
        return self._iteration_time_s * self._timeout_multiplier

    @property
    def events(self) -> List[FailureEvent]:
        """Confirmed failures and their recoveries, in order."""
        return list(self._events)

    @property
    def reports(self) -> List[TimeoutReport]:
        """All timeout reports received."""
        return list(self._reports)

    def state(self, job: int) -> JobState:
        """Current liveness state of a job."""
        return self._states[job]

    def alive_jobs(self) -> Set[int]:
        """Jobs currently believed alive."""
        return {j for j, s in self._states.items() if s != JobState.DEAD}

    def mark_dead(self, job: int) -> None:
        """External notification (e.g. the HP scheduler killed the job)."""
        self._states[job] = JobState.DEAD

    def _is_alive(self, job: int) -> bool:
        if self._states[job] == JobState.DEAD:
            return False
        if self._liveness_probe is not None:
            return self._liveness_probe(job)
        return True

    def report_timeout(self, report: TimeoutReport,
                       batch_is_now_staged: bool = False) -> RecoveryAction:
        """Handle a consumer's timeout report.

        Args:
            report: The consumer's description of what it is waiting for.
            batch_is_now_staged: Whether the batch appeared while the report
                was in flight (stale report).

        Returns:
            The action the consumer (and, for RESPAWN, the driver) must take.

        Raises:
            JobFailedError: if the failed shard cannot be reassigned because
                no other job is alive.
        """
        self._reports.append(report)
        if batch_is_now_staged:
            return RecoveryAction.NONE
        producer = report.suspected_producer
        if self._is_alive(producer):
            # Minor per-batch skew, not a failure: broadcast retry.
            self._states[producer] = JobState.RUNNING
            return RecoveryAction.RETRY
        self._states[producer] = JobState.DEAD
        replacement = self._pick_replacement(exclude=producer)
        self._events.append(FailureEvent(
            failed_job=producer,
            detected_at=report.reported_at,
            reassigned_to=replacement,
            missing_batch_id=report.missing_batch_id,
        ))
        return RecoveryAction.RESPAWN

    def _pick_replacement(self, exclude: int) -> int:
        candidates = sorted(j for j in self.alive_jobs() if j != exclude)
        if not candidates:
            raise JobFailedError("no surviving job can take over the failed shard")
        if self._seed is None:
            # Legacy deterministic choice: the lowest-numbered surviving job
            # spawns the replacement data-loading process for the orphaned
            # shard.
            return candidates[0]
        # Seeded choice: a BLAKE2 digest of (seed, failed job, event count)
        # indexes the sorted survivors.  Pure function of the detector's
        # history — never ambient RNG — so two detectors replaying the same
        # report sequence under the same seed pick identical replacements
        # regardless of process, scheduling or worker count.
        key = repr((self._seed, exclude, len(self._events)))
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8)
        index = int.from_bytes(digest.digest(), "big") % len(candidates)
        return candidates[index]
