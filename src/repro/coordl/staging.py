"""Cross-job minibatch staging area (Sec. 4.3).

When several HP-search jobs train on the same dataset on one server, CoorDL
pre-processes each minibatch exactly once and *stages* it in a memory region
shared by all jobs.  Each staged minibatch carries a unique id and an atomic
use counter; a job consumes a minibatch at most once per epoch, and the batch
is evicted the moment every registered job has consumed it — which guarantees
that no pre-processed data is ever reused across epochs (the random
augmentations must be redrawn every epoch for accuracy).

This module implements that data structure functionally: registration of
consumer jobs, produce/consume with per-job exactly-once tracking, eviction on
full consumption, peak-memory accounting (to validate the paper's claim that
the staging area adds only a few GB of memory), and the timeout signal the
failure detector builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.exceptions import ConfigurationError, StagingTimeoutError


@dataclass
class StagedBatch:
    """One pre-processed minibatch staged for cross-job sharing."""

    batch_id: int
    epoch: int
    producer_job: int
    item_ids: np.ndarray
    prepared_bytes: float
    ready_at: float
    consumed_by: Set[int] = field(default_factory=set)

    def fully_consumed(self, num_jobs: int) -> bool:
        """Whether every registered job has used this batch exactly once."""
        return len(self.consumed_by) >= num_jobs


class StagingArea:
    """Shared in-memory staging of prepared minibatches.

    Args:
        num_jobs: Number of concurrent jobs sharing the staging area.
        batch_timeout_s: How long a consumer waits for a missing batch before
            it reports a possible producer failure (the implementation uses
            10x the iteration time, Sec. 4.4).
    """

    def __init__(self, num_jobs: int, batch_timeout_s: float = 60.0) -> None:
        if num_jobs <= 0:
            raise ConfigurationError("staging area needs at least one job")
        if batch_timeout_s <= 0:
            raise ConfigurationError("batch timeout must be positive")
        self._num_jobs = num_jobs
        self._timeout_s = batch_timeout_s
        self._batches: Dict[int, StagedBatch] = {}
        self._current_bytes = 0.0
        self._peak_bytes = 0.0
        self._produced = 0
        self._evicted = 0
        self._consumptions = 0

    # -- properties --------------------------------------------------------

    @property
    def num_jobs(self) -> int:
        """Number of consumer jobs registered."""
        return self._num_jobs

    @property
    def batch_timeout_s(self) -> float:
        """Consumer wait timeout before reporting a possible failure."""
        return self._timeout_s

    @property
    def staged_batches(self) -> int:
        """Batches currently resident in the staging area."""
        return len(self._batches)

    @property
    def current_bytes(self) -> float:
        """Bytes of prepared data currently staged."""
        return self._current_bytes

    @property
    def peak_bytes(self) -> float:
        """High-water mark of staged bytes (the paper measures ~5 GB)."""
        return self._peak_bytes

    @property
    def produced(self) -> int:
        """Total batches ever staged."""
        return self._produced

    @property
    def evicted(self) -> int:
        """Total batches evicted after full consumption."""
        return self._evicted

    @property
    def consumptions(self) -> int:
        """Total (job, batch) consumption events."""
        return self._consumptions

    # -- producer side -----------------------------------------------------

    def stage(self, batch_id: int, epoch: int, producer_job: int,
              item_ids: Sequence[int], prepared_bytes: float,
              now: float = 0.0) -> StagedBatch:
        """Publish a prepared minibatch to all jobs.

        Raises:
            ConfigurationError: if the batch id is already staged (producers
                must use unique ids within an epoch).
        """
        if batch_id in self._batches:
            raise ConfigurationError(f"batch {batch_id} already staged")
        staged = StagedBatch(
            batch_id=batch_id,
            epoch=epoch,
            producer_job=producer_job,
            item_ids=np.asarray(item_ids, dtype=np.int64),
            prepared_bytes=prepared_bytes,
            ready_at=now,
        )
        self._batches[batch_id] = staged
        self._current_bytes += prepared_bytes
        self._peak_bytes = max(self._peak_bytes, self._current_bytes)
        self._produced += 1
        return staged

    # -- consumer side -----------------------------------------------------

    def consume(self, job: int, batch_id: int, now: float = 0.0) -> StagedBatch:
        """Record that ``job`` used a staged batch; evict when all jobs have.

        Raises:
            StagingTimeoutError: if the batch is not staged — the caller
                translates this into a failure-detector notification.
            ConfigurationError: if the job already consumed this batch (the
                exactly-once-per-epoch invariant would be violated).
        """
        staged = self._batches.get(batch_id)
        if staged is None:
            raise StagingTimeoutError(
                f"job {job} waited for batch {batch_id} which is not staged")
        if job in staged.consumed_by:
            raise ConfigurationError(
                f"job {job} already consumed batch {batch_id} this epoch")
        staged.consumed_by.add(job)
        self._consumptions += 1
        if staged.fully_consumed(self._num_jobs):
            self._evict(batch_id)
        return staged

    def is_staged(self, batch_id: int) -> bool:
        """Whether a batch is currently available."""
        return batch_id in self._batches

    def pending_for_job(self, job: int) -> List[int]:
        """Batch ids staged but not yet consumed by ``job``."""
        return [bid for bid, b in self._batches.items() if job not in b.consumed_by]

    def wait_time_exceeded(self, waited_s: float) -> bool:
        """Whether a consumer's wait has crossed the failure-report threshold."""
        return waited_s >= self._timeout_s

    # -- maintenance -------------------------------------------------------

    def _evict(self, batch_id: int) -> None:
        staged = self._batches.pop(batch_id)
        self._current_bytes -= staged.prepared_bytes
        self._evicted += 1

    def drop_epoch(self, epoch: int) -> int:
        """Drop any leftover batches of a finished epoch; returns the count.

        Prepared data must never leak across epoch boundaries; the
        coordinator calls this defensively when all jobs report epoch
        completion.
        """
        stale = [bid for bid, b in self._batches.items() if b.epoch == epoch]
        for bid in stale:
            self._evict(bid)
        return len(stale)

    def remove_job(self, job: int) -> None:
        """Deregister a job (killed by the HP-search algorithm).

        Remaining batches only need consumption by the surviving jobs, so any
        batch the departed job had not consumed may now be evictable.
        """
        if self._num_jobs <= 1:
            raise ConfigurationError("cannot remove the last job")
        self._num_jobs -= 1
        for bid in list(self._batches):
            if self._batches[bid].fully_consumed(self._num_jobs):
                self._evict(bid)
