"""Benchmark: SQLite store backend vs the JSON-directory backend, warm.

Populates each :class:`~repro.store.StoreBackend` with a 1000-entry
synthetic grid (one realistic record snapshot reused under 1000 distinct
content-addressed keys — the backend stores opaque snapshots, so key
diversity is what exercises the index) and replays the serve daemon's
steady-state workload against it: a full warm read of every entry with a
``stats()`` probe every 20 reads (what ``/v1/stats`` polling against a
busy daemon looks like).

Asserts that

* both backends rehydrate every entry intact (equal snapshots, zero
  misses), and
* the SQLite backend finishes the mixed read+stats workload at least
  ``REPRO_BENCH_MIN_SQLITE_SPEEDUP``x (default 3x) faster than the JSON
  directory — the index answers ``stats`` without a directory scan, which
  is the whole point of the backend.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import Tuple

import pytest

from repro.store.backend import (
    JsonDirBackend,
    SqliteBackend,
    StoreBackend,
)

#: Advantage the SQLite backend must demonstrate on the mixed workload.
#: Overridable so shared CI runners (noisy neighbours, slow disks) can
#: soften the timing gate without touching the integrity gate.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SQLITE_SPEEDUP", "3.0"))

#: Entries in the synthetic grid.
ENTRIES = 1000

#: One ``stats()`` probe per this many reads (the serve-daemon mix).
STATS_EVERY = 20

#: A realistic record snapshot: point identity, per-epoch metrics, and a
#: short fetch timeline — the shape (and rough size) of what
#: :meth:`~repro.sim.sweep.SweepRecord.snapshot` persists.
SNAPSHOT = {
    "point": {"label": "synthetic", "model": "resnet18", "workers": 4},
    "metrics": {"epoch_s": [1.25] * 8, "stall_s": [0.5] * 8,
                "hit_rate": [0.62] * 8},
    "timeline": [{"t": round(i * 0.01, 2), "ev": "fetch", "idx": i}
                 for i in range(40)],
}

KEYS = [hashlib.blake2b(f"synthetic-{i}".encode(), digest_size=16).hexdigest()
        for i in range(ENTRIES)]


def _populate(backend: StoreBackend) -> None:
    for key in KEYS:
        assert backend.put(key, SNAPSHOT, label="synthetic") is not None


def _mixed_workload(backend: StoreBackend) -> Tuple[float, int]:
    """Warm-read every entry with periodic stats; return (seconds, misses)."""
    misses = 0
    start = time.perf_counter()
    for index, key in enumerate(KEYS):
        hit = backend.get(key)
        if hit is None or hit[0] != SNAPSHOT:
            misses += 1
        if index % STATS_EVERY == 0:
            entries, _, _ = backend.stats()
            if entries != ENTRIES:
                misses += 1
    return time.perf_counter() - start, misses


@pytest.mark.benchmark(group="store-backends")
def test_sqlite_backend_warm_reads_and_stats_beat_json_dir(tmp_path,
                                                           bench_report):
    json_backend = JsonDirBackend(tmp_path / "store")
    sqlite_backend = SqliteBackend(tmp_path / "store.db")
    try:
        _populate(json_backend)
        _populate(sqlite_backend)

        json_s, json_misses = _mixed_workload(json_backend)
        sqlite_s, sqlite_misses = _mixed_workload(sqlite_backend)

        assert json_misses == 0, f"json backend corrupted {json_misses} reads"
        assert sqlite_misses == 0, (
            f"sqlite backend corrupted {sqlite_misses} reads")

        speedup = json_s / sqlite_s
        _, _, json_disk = json_backend.stats()
        _, _, sqlite_disk = sqlite_backend.stats()
    finally:
        json_backend.close()
        sqlite_backend.close()

    print(f"\nstore backends, {ENTRIES} warm entries, stats every "
          f"{STATS_EVERY} reads: json {json_s * 1e3:.0f} ms "
          f"({json_disk:,} B on disk), sqlite {sqlite_s * 1e3:.0f} ms "
          f"({sqlite_disk:,} B) -> {speedup:.2f}x")
    bench_report.record("store_backends_1k", points=ENTRIES,
                        reference_s=json_s, fast_s=sqlite_s,
                        json_disk_bytes=json_disk,
                        sqlite_disk_bytes=sqlite_disk,
                        stats_every=STATS_EVERY)
    assert speedup >= MIN_SPEEDUP, (
        f"sqlite backend only {speedup:.2f}x faster on the mixed warm "
        f"read+stats workload (need {MIN_SPEEDUP}x)")
