"""Catalog of the datasets used in the paper (Table 1).

The paper evaluates on four large datasets.  We never need the actual images
or audio clips — only the number of items, the size distribution of the items
and the task they serve — so each dataset is described by a
:class:`DatasetSpec` and materialised on demand as a synthetic
:class:`~repro.datasets.dataset.SyntheticDataset`.

Sizes and counts follow the paper:

* ImageNet-1K: 146 GiB, ~1.28 M images, ~150 KB average (Sec. 3.1, App. D.1)
* ImageNet-22K: 1.3 TB, ~14 M images, ~90 KB average (App. D.1)
* OpenImages (extended): 645 GB, ~300 KB average image (App. D.1)
* OpenImages (detection split): 561 GB
* FMA (Free Music Archive): 950 GB of audio clips
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro import units
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a training dataset.

    Attributes:
        name: Canonical dataset name used throughout experiments.
        task: Task family ("image_classification", "object_detection",
            "audio_classification").
        num_items: Number of training samples.
        mean_item_bytes: Average on-disk size of a raw (encoded) sample.
        item_size_cv: Coefficient of variation of the item-size distribution.
            Real JPEG corpora have substantial size spread; this drives the
            lognormal synthetic size generator.
        prep_cost_scale: Relative CPU cost of pre-processing one item compared
            to an ImageNet-1K image (richer datasets such as OpenImages have
            larger decoded images and therefore cost more to prep).
    """

    name: str
    task: str
    num_items: int
    mean_item_bytes: float
    item_size_cv: float = 0.45
    prep_cost_scale: float = 1.0

    @property
    def total_bytes(self) -> float:
        """Approximate total on-disk footprint of the dataset."""
        return self.num_items * self.mean_item_bytes

    def scaled(self, fraction: float, min_items: int = 64) -> "DatasetSpec":
        """Return a proportionally smaller copy of this spec.

        Simulating every one of the 14 M ImageNet-22K items at item
        granularity is unnecessary for the statistics we need; experiments
        typically run on a 1/100 – 1/1000 scale model with identical
        size-distribution and cache-fraction behaviour.
        """
        if not 0 < fraction <= 1:
            raise ConfigurationError(f"scale fraction must be in (0, 1], got {fraction}")
        return DatasetSpec(
            name=f"{self.name}@{fraction:g}",
            task=self.task,
            num_items=max(min_items, int(round(self.num_items * fraction))),
            mean_item_bytes=self.mean_item_bytes,
            item_size_cv=self.item_size_cv,
            prep_cost_scale=self.prep_cost_scale,
        )


IMAGENET_1K = DatasetSpec(
    name="imagenet-1k",
    task="image_classification",
    num_items=1_281_167,
    mean_item_bytes=units.KiB(114),  # 146 GiB / 1.28 M items ~= 114 KiB (~150 KB)
    item_size_cv=0.5,
    prep_cost_scale=1.0,
)

IMAGENET_22K = DatasetSpec(
    name="imagenet-22k",
    task="image_classification",
    num_items=14_200_000,
    mean_item_bytes=units.KiB(90),
    item_size_cv=0.55,
    prep_cost_scale=1.0,
)

OPENIMAGES = DatasetSpec(
    name="openimages",
    task="image_classification",
    num_items=2_150_000,
    mean_item_bytes=units.KiB(300),  # 645 GB / 2.15 M items ~= 300 KB
    item_size_cv=0.5,
    prep_cost_scale=1.0,  # decode cost scales with the (larger) encoded bytes already
)

OPENIMAGES_DETECTION = DatasetSpec(
    name="openimages-detection",
    task="object_detection",
    num_items=1_870_000,
    mean_item_bytes=units.KiB(300),
    item_size_cv=0.5,
    prep_cost_scale=1.25,  # detection prep adds box-aware transforms
)

FMA = DatasetSpec(
    name="fma",
    task="audio_classification",
    num_items=930_000,
    mean_item_bytes=units.MiB(1.0),  # 950 GB of audio clips
    item_size_cv=0.3,
    prep_cost_scale=1.0,
)

_CATALOG: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (IMAGENET_1K, IMAGENET_22K, OPENIMAGES, OPENIMAGES_DETECTION, FMA)
}


def dataset_names() -> Tuple[str, ...]:
    """Names of every dataset in the catalog."""
    return tuple(sorted(_CATALOG))


def get_dataset_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by name.

    Raises:
        ConfigurationError: if the name is not in the catalog.
    """
    try:
        return _CATALOG[name]
    except KeyError:
        known = ", ".join(dataset_names())
        raise ConfigurationError(f"unknown dataset {name!r}; known datasets: {known}") from None
