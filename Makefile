# Development entry points.  Everything runs against the in-tree sources
# (PYTHONPATH=src), so no editable install is required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke docs-check check

## Tier-1 test suite (must stay green).
test:
	$(PYTHON) -m pytest -x -q tests

## Reproduce the paper's tables/figures and the sweep-speed benchmarks.
bench:
	$(PYTHON) -m pytest -q benchmarks -s

## Quick benchmark smoke: the two vectorised-vs-reference sweep speed gates
## (Fig. 3 and Fig. 9b) — fast enough to run on every push.
bench-smoke:
	$(PYTHON) -m pytest -q -s benchmarks/test_sweep_speed.py \
	    benchmarks/test_distributed_sweep_speed.py

## Verify every public __all__ symbol (repro, repro.sim, repro.coordl) is
## documented in docs/API.md.
docs-check:
	$(PYTHON) tools/docs_check.py

## Everything the CI gate runs.
check: test docs-check bench-smoke
