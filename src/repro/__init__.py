"""repro — reproduction of "Analyzing and Mitigating Data Stalls in DNN Training".

The library has three layers:

* **substrates** — synthetic datasets and samplers (:mod:`repro.datasets`),
  storage devices and I/O accounting (:mod:`repro.storage`), caches
  (:mod:`repro.cache`), pre-processing cost models (:mod:`repro.prep`),
  GPU/model rate models (:mod:`repro.compute`) and server/cluster
  configurations (:mod:`repro.cluster`);
* **contributions** — the CoorDL coordinated data loader
  (:mod:`repro.coordl`: MinIO cache, partitioned caching, coordinated prep)
  and the DS-Analyzer profiler/predictor (:mod:`repro.dsanalyzer`), with the
  DALI / native-PyTorch baselines in :mod:`repro.pipeline`;
* **scenarios** — the pipelined epoch simulator and the single-server,
  distributed-training and HP-search drivers (:mod:`repro.sim`), plus one
  module per paper figure/table in :mod:`repro.experiments`, all memoisable
  through the content-addressed sweep result store and persistent worker
  pool (:mod:`repro.store`).
"""

from repro.cluster import config_hdd_1080ti, config_ssd_v100, get_server_config
from repro.compute import get_model, model_names
from repro.coordl import CoorDL, CoorDLLoader, PartitionedCoorDLLoader
from repro.datasets import SyntheticDataset, get_dataset_spec
from repro.dsanalyzer import DataStallPredictor, DSAnalyzerProfiler
from repro.pipeline import DALILoader, PyTorchNativeLoader
from repro.sim import (
    DistributedTraining,
    HPSearchScenario,
    PipelineSimulator,
    SingleServerTraining,
    SweepPoint,
    SweepResult,
    SweepRunner,
)
from repro.store import PersistentPool, SweepStore

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SyntheticDataset",
    "get_dataset_spec",
    "get_model",
    "model_names",
    "config_ssd_v100",
    "config_hdd_1080ti",
    "get_server_config",
    "CoorDL",
    "CoorDLLoader",
    "PartitionedCoorDLLoader",
    "DALILoader",
    "PyTorchNativeLoader",
    "DSAnalyzerProfiler",
    "DataStallPredictor",
    "PipelineSimulator",
    "SingleServerTraining",
    "DistributedTraining",
    "HPSearchScenario",
    "SweepRunner",
    "SweepPoint",
    "SweepResult",
    "SweepStore",
    "PersistentPool",
]
