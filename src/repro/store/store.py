"""Content-addressed, on-disk store of sweep results.

Every figure/table in the reproduction is a :class:`~repro.sim.sweep.SweepRunner`
grid, and every grid point is a pure function of its configuration: the
runner spec, the point spec and the result-affecting environment flags
(:meth:`~repro.sim.sweep.SweepRunner.point_spec` renders exactly that
identity).  :class:`SweepStore` memoises those functions on disk — the
serve-many-queries discipline of DS-Analyzer-style what-if tooling — so a
repeated ``report`` run, a re-run of one changed experiment, or a what-if
query over an already-simulated grid reduces to file reads.

Layout: one JSON file per record at ``<dir>/<key[:2]>/<key>.json`` (the
two-hex-character shard keeps directories small for large stores).  Each
entry carries the store schema version, its own key and the record's
fully-invertible snapshot
(:meth:`~repro.sim.sweep.SweepRecord.snapshot` with embedded timelines).
Entries are written atomically (temp file + :func:`os.replace`), so a
crashed writer can leave a stray temp file but never a torn entry; any
unreadable, mis-keyed, wrong-schema or wrong-point entry is treated as a
miss and overwritten by the re-simulation — corruption can cost time,
never correctness.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.sim.sweep import SweepPoint, SweepRecord, SweepRunner

#: Environment variable supplying the default store directory of
#: :meth:`repro.sim.sweep.SweepRunner.run` (and therefore of every
#: sweep-backed experiment and the CLI) when no explicit ``store`` is
#: passed.  Unset or empty means "no store".
STORE_ENV_VAR = "REPRO_SWEEP_STORE"

#: Version of the on-disk entry format.  It participates in every content
#: address, so bumping it orphans (never corrupts) all previous entries —
#: a stale-schema entry can simply never be looked up again.
STORE_SCHEMA_VERSION = 1


def store_key(spec: Dict[str, Any]) -> str:
    """Stable BLAKE2 content address of one canonical point spec.

    ``spec`` is :meth:`~repro.sim.sweep.SweepRunner.point_spec` output (or
    anything JSON-stable); the digest covers the spec *and*
    :data:`STORE_SCHEMA_VERSION`, rendered as canonical JSON (sorted keys,
    no whitespace) so dict ordering can never move the address.
    """
    payload = json.dumps({"schema": STORE_SCHEMA_VERSION, "spec": spec},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


@dataclass
class StoreStats:
    """On-disk footprint plus this-process session counters of one store.

    ``entries``/``total_bytes`` come from a directory scan at call time;
    the session counters count what *this* :class:`SweepStore` instance
    served since construction (the CI store leg asserts a warm run is
    all hits through them).
    """

    directory: str
    entries: int
    total_bytes: int
    hits: int
    misses: int
    puts: int
    invalid: int

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON dumps in the CI store leg)."""
        return {
            "directory": self.directory,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "invalid": self.invalid,
        }


class SweepStore:
    """Content-addressed sweep-record store rooted at one directory.

    Args:
        directory: Store root; created (with parents) if missing.

    Counters ``hits`` / ``misses`` / ``puts`` / ``invalid`` accumulate per
    instance; ``invalid`` counts entries that existed but could not be
    served (unparsable, truncated, mis-keyed, schema or point mismatch) —
    every invalid get is also a miss.
    """

    def __init__(self, directory: Union[str, os.PathLike]) -> None:
        self._directory = pathlib.Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.invalid = 0

    @property
    def directory(self) -> pathlib.Path:
        """Root directory of the store."""
        return self._directory

    def key_for(self, runner: SweepRunner, point: SweepPoint) -> str:
        """Content address of one point under one runner configuration."""
        return store_key(runner.point_spec(point))

    def entry_path(self, key: str) -> pathlib.Path:
        """On-disk path of one entry (whether or not it exists)."""
        return self._directory / key[:2] / f"{key}.json"

    # -- lookup / insert -----------------------------------------------------

    def get(self, key: str,
            point: Optional[SweepPoint] = None) -> Optional[SweepRecord]:
        """Rehydrated record for ``key``, or ``None`` on any kind of miss.

        A present-but-unusable entry (garbage bytes, truncated JSON, wrong
        embedded key/schema, or — when ``point`` is given — a rehydrated
        record whose point spec does not match the query) counts as
        ``invalid`` and is reported as a miss; the caller re-simulates and
        :meth:`put` overwrites the bad entry.
        """
        path = self.entry_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry["schema"] != STORE_SCHEMA_VERSION or entry["key"] != key:
                raise ConfigurationError("store entry key/schema mismatch")
            record = SweepRecord.from_snapshot(entry["record"])
            if point is not None and record.point != point:
                raise ConfigurationError("store entry point mismatch")
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Treat every malformed entry as a (counted) miss, never an
            # error: the store is a cache, and re-simulation repairs it.
            self.invalid += 1
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: SweepRecord) -> pathlib.Path:
        """Persist one record under ``key`` (atomic replace); returns its path."""
        path = self.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": STORE_SCHEMA_VERSION,
            "key": key,
            "record": record.snapshot(include_timeline=True),
        }
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, sort_keys=True, separators=(",", ":"))
        os.replace(tmp, path)
        self.puts += 1
        return path

    # -- management ----------------------------------------------------------

    def _entries(self) -> List[pathlib.Path]:
        """Every entry file in the store (stray temp files excluded)."""
        return sorted(self._directory.glob("??/*.json"))

    def stats(self) -> StoreStats:
        """Scan the directory and combine with the session counters."""
        entries = self._entries()
        return StoreStats(
            directory=str(self._directory),
            entries=len(entries),
            total_bytes=sum(path.stat().st_size for path in entries),
            hits=self.hits,
            misses=self.misses,
            puts=self.puts,
            invalid=self.invalid,
        )

    def gc(self, max_entries: Optional[int] = None,
           max_bytes: Optional[int] = None) -> int:
        """Prune oldest-first (by mtime) until within the given budgets.

        Either budget may be ``None`` (unbounded); with both ``None`` this
        is a no-op.  Returns the number of entries removed.
        """
        if max_entries is not None and max_entries < 0:
            raise ConfigurationError("max_entries must be >= 0")
        if max_bytes is not None and max_bytes < 0:
            raise ConfigurationError("max_bytes must be >= 0")
        stats: List[Tuple[float, int, pathlib.Path]] = []
        for path in self._entries():
            meta = path.stat()
            stats.append((meta.st_mtime, meta.st_size, path))
        stats.sort()  # oldest first
        entries = len(stats)
        total = sum(size for _, size, _ in stats)
        removed = 0
        for _, size, path in stats:
            over_entries = max_entries is not None and entries > max_entries
            over_bytes = max_bytes is not None and total > max_bytes
            if not (over_entries or over_bytes):
                break
            path.unlink(missing_ok=True)
            entries -= 1
            total -= size
            removed += 1
        return removed

    def invalidate(self, prefix: str = "") -> int:
        """Remove every entry whose key starts with ``prefix`` (default: all).

        Returns the number of entries removed.  Invalidation is how a user
        forces re-simulation after changing something the key does not
        cover (the simulator's own code, most importantly).
        """
        removed = 0
        for path in self._entries():
            if path.stem.startswith(prefix):
                path.unlink(missing_ok=True)
                removed += 1
        return removed


#: What :func:`resolve_store` accepts (and, transitively, the ``store=``
#: argument of every sweep-backed ``run``): an open store, a directory
#: path, ``None`` for the environment default, ``False`` to disable.
StoreArg = Union["SweepStore", str, os.PathLike, None, bool]


def resolve_store(store: StoreArg) -> Optional[SweepStore]:
    """Normalise a user-facing ``store=`` argument to an open store.

    * :class:`SweepStore` — returned as-is;
    * a path — opened (created if missing);
    * ``None`` — the :data:`STORE_ENV_VAR` environment default (no store
      when unset/empty);
    * ``False`` — explicitly no store, even when the variable is set.
    """
    if isinstance(store, SweepStore):
        return store
    if store is None:
        env = os.environ.get(STORE_ENV_VAR, "").strip()
        return SweepStore(env) if env else None
    if store is False:
        return None
    if isinstance(store, (str, os.PathLike)):
        return SweepStore(store)
    raise ConfigurationError(
        f"store must be a SweepStore, a path, None or False, "
        f"not {type(store).__name__}")
