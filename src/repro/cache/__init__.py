"""Cache substrate: LRU / OS page cache, MinIO, and partitioned caching."""

from repro.cache.base import Cache
from repro.cache.lru import LRUCache
from repro.cache.minio import MinIOCache
from repro.cache.page_cache import PageCache
from repro.cache.partitioned import (
    LookupSource,
    PartitionedCacheGroup,
    PartitionedLookup,
)
from repro.cache.stats import CacheStats
from repro.cache.warm_kernel import (
    WARM_KERNEL_ENV_VAR,
    SegmentedLRUResult,
    simulate_segmented_lru,
)

__all__ = [
    "Cache",
    "CacheStats",
    "LRUCache",
    "PageCache",
    "MinIOCache",
    "PartitionedCacheGroup",
    "PartitionedLookup",
    "LookupSource",
    "SegmentedLRUResult",
    "simulate_segmented_lru",
    "WARM_KERNEL_ENV_VAR",
]
