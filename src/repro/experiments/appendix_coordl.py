"""Appendix D/E CoorDL evaluation experiments: Figs. 17-23.

* Fig. 17 — HP search on ImageNet-22K (smaller images, lower fetch stalls).
* Fig. 18 — partitioned-cache scalability across 1-4 HDD servers, plus the
  per-server disk-I/O table.
* Fig. 19/20 — CPU utilisation and staging-area memory overhead.
* Fig. 21 — "Py-CoorDL": the MinIO policy plugged into the native PyTorch
  DataLoader, on HDD and SSD, versus the stock PyTorch DL (cache sweep).
* Fig. 22 — Py-CoorDL's coordinated prep with 4 and 8 jobs (cached dataset).
* Fig. 23 — end-to-end Ray-Tune-style HP search on HDD and SSD showing the
  separate contributions of coordinated prep and MinIO.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cluster.configs import config_hdd_1080ti, config_ssd_v100
from repro.compute.model_zoo import ALEXNET, IMAGE_MODELS, RESNET18, RESNET50, ModelSpec
from repro.experiments.base import ExperimentResult, SWEEP_SCALE, scaled_dataset
from repro.sim.hp_search import HPSearchScenario
from repro.sim.single_server import SingleServerTraining
from repro.sim.sweep import SweepPoint, SweepRunner
from repro.units import safe_div, speedup
from repro.store import PersistentPool, StoreArg


def run_fig17(scale: float = SWEEP_SCALE, num_jobs: int = 8,
              cache_fraction: float = 0.35,
              models: Sequence[ModelSpec] = IMAGE_MODELS, seed: int = 0,
              workers: Optional[int] = None,
              store: StoreArg = None,
              pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Fig. 17 — HP search speedups with the ImageNet-22K dataset."""
    runner = SweepRunner(config_ssd_v100, scale=scale, seed=seed)
    sweep = runner.run(SweepRunner.grid(
        models=list(models), loaders=["hp-baseline", "hp-coordl"],
        cache_fractions=[cache_fraction], dataset="imagenet-22k",
        num_jobs=num_jobs, gpus_per_job=1), workers=workers, store=store, pool=pool)
    result = ExperimentResult(
        experiment_id="fig17",
        title="Fig. 17 — 8-job HP search on ImageNet-22K (Config-SSD-V100)",
        columns=["model", "dali_job_throughput", "coordl_job_throughput", "speedup"],
        notes=["paper: up to 2.5x speedup; smaller per-image size keeps fetch stalls "
               "lower than OpenImages"],
    )
    for model in models:
        baseline = sweep.one(model=model, loader="hp-baseline").hp
        coordl = sweep.one(model=model, loader="hp-coordl").hp
        result.add_row(
            model=model.name,
            dali_job_throughput=baseline.per_job_throughput,
            coordl_job_throughput=coordl.per_job_throughput,
            speedup=speedup(baseline.epoch_time_s, coordl.epoch_time_s),
        )
    return result


def run_fig18(scale: float = SWEEP_SCALE, cache_fraction_per_server: float = 0.65,
              node_counts: Sequence[int] = (2, 3, 4), seed: int = 0,
              workers: Optional[int] = None,
              store: StoreArg = None,
              pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Fig. 18 — partitioned caching as the job spans 2-4 HDD servers."""
    runner = SweepRunner(config_hdd_1080ti, scale=scale, seed=seed)
    sweep = runner.run([
        SweepPoint(model=RESNET50, loader=kind, dataset="openimages",
                   cache_fraction=cache_fraction_per_server, num_servers=nodes)
        for nodes in node_counts
        for kind in ("dist-baseline", "dist-coordl")
    ], workers=workers, store=store, pool=pool)
    result = ExperimentResult(
        experiment_id="fig18",
        title="Fig. 18 — ResNet50/OpenImages distributed scaling (HDD servers)",
        columns=["num_servers", "dali_throughput", "coordl_throughput", "speedup",
                 "dali_disk_gb_per_server", "coordl_disk_gb_per_server"],
        notes=["paper: DALI stays IO-bound (disk IO per server shrinks but GPUs grow "
               "proportionally); CoorDL has no disk IO beyond the first epoch",
               "disk GB at full dataset scale"],
    )
    for nodes in node_counts:
        b_epoch = sweep.one(loader="dist-baseline", num_servers=nodes).dist_steady
        c_epoch = sweep.one(loader="dist-coordl", num_servers=nodes).dist_steady
        result.add_row(
            num_servers=nodes,
            dali_throughput=b_epoch.throughput,
            coordl_throughput=c_epoch.throughput,
            speedup=speedup(b_epoch.epoch_time_s, c_epoch.epoch_time_s),
            dali_disk_gb_per_server=b_epoch.total_disk_bytes / nodes / scale / 1e9,
            coordl_disk_gb_per_server=c_epoch.total_disk_bytes / nodes / scale / 1e9,
        )
    return result


def run_fig19_20(scale: float = SWEEP_SCALE, cache_fraction: float = 0.65,
                 num_jobs: int = 8, seed: int = 0) -> ExperimentResult:
    """Figs. 19/20 — CPU utilisation and staging-memory overhead with CoorDL."""
    dataset = scaled_dataset("openimages", scale, seed)
    server = config_ssd_v100(cache_bytes=dataset.total_bytes * cache_fraction)

    # CPU utilisation proxy (Fig. 19): fraction of the epoch the prep workers
    # are doing useful work rather than blocked behind storage.
    training = SingleServerTraining(RESNET18, dataset, server, num_epochs=2)
    result = ExperimentResult(
        experiment_id="fig19_20",
        title="Figs. 19/20 — CPU utilisation and coordinated-prep memory overhead",
        columns=["metric", "dali", "coordl"],
        notes=["CPU utilisation = useful prep time / epoch time",
               "paper: CoorDL uses ~5 GB of staging memory, repaid by shrinking the "
               "cache budget by the same amount"],
    )
    dali_epoch = training.run("dali-shuffle", seed=seed).run.steady_epoch()
    coordl_epoch = training.run("coordl", seed=seed).run.steady_epoch()
    dali_cpu_util = safe_div(dali_epoch.prep_limited_time_s - dali_epoch.gpu_time_s
                             + dali_epoch.gpu_time_s, dali_epoch.epoch_time_s)
    coordl_cpu_util = safe_div(coordl_epoch.prep_limited_time_s - coordl_epoch.gpu_time_s
                               + coordl_epoch.gpu_time_s, coordl_epoch.epoch_time_s)
    result.add_row(metric="cpu_utilisation_pct", dali=100.0 * dali_cpu_util,
                   coordl=100.0 * coordl_cpu_util)
    result.add_row(metric="epoch_time_s", dali=dali_epoch.epoch_time_s,
                   coordl=coordl_epoch.epoch_time_s)

    # Memory overhead (Fig. 20): peak staging bytes of a coordinated HP epoch.
    # The staging area holds only the in-flight minibatches, so its size does
    # not grow with the dataset and needs no re-scaling.
    scenario = HPSearchScenario(ALEXNET, dataset, server, num_jobs=num_jobs,
                                gpus_per_job=1, seed=seed)
    coordl_hp = scenario.run_coordl()
    result.add_row(metric="staging_peak_gb", dali=0.0,
                   coordl=coordl_hp.staging_peak_bytes / 1e9)
    return result


def _pycoordl_rows(dataset_name: str, server_factory, cache_fractions: Sequence[float],
                   scale: float, seed: int,
                   workers: Optional[int] = None,
                   store: StoreArg = None,
                   pool: Optional[PersistentPool] = None) -> List[dict]:
    """Rows for Fig. 21: PyTorch DL vs Py-CoorDL (MinIO policy) per cache size."""
    runner = SweepRunner(server_factory, scale=scale, seed=seed)
    # Py-CoorDL keeps the (slow) Pillow prep path but swaps in MinIO.
    sweep = runner.run(SweepRunner.grid(
        models=[RESNET18], loaders=["pytorch", "pycoordl"],
        cache_fractions=list(cache_fractions), dataset=dataset_name),
        workers=workers, store=store, pool=pool)
    storage_name = server_factory().storage.name
    rows: List[dict] = []
    for fraction in cache_fractions:
        pytorch = sweep.one(loader="pytorch", cache_fraction=fraction).steady
        pycoordl = sweep.one(loader="pycoordl", cache_fraction=fraction).steady
        rows.append({
            "storage": storage_name,
            "cache_pct": 100.0 * fraction,
            "pytorch_epoch_s": pytorch.epoch_time_s,
            "pycoordl_epoch_s": pycoordl.epoch_time_s,
            "speedup": speedup(pytorch.epoch_time_s, pycoordl.epoch_time_s),
        })
    return rows


def run_fig21(scale: float = SWEEP_SCALE,
              cache_fractions: Sequence[float] = (0.4, 0.6, 0.75),
              seed: int = 0, workers: Optional[int] = None,
              store: StoreArg = None,
              pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Fig. 21 — Py-CoorDL's MinIO policy in the native PyTorch DataLoader."""
    result = ExperimentResult(
        experiment_id="fig21",
        title="Fig. 21 — Py-CoorDL (MinIO in PyTorch DL) vs PyTorch DL, HDD and SSD",
        columns=["storage", "cache_pct", "pytorch_epoch_s", "pycoordl_epoch_s", "speedup"],
        notes=["paper: 2.1-3.3x on HDD; marginal gains on SSD because Pillow prep is "
               "the bottleneck there"],
    )
    for row in _pycoordl_rows("imagenet-1k", config_hdd_1080ti, cache_fractions,
                              scale, seed, workers, store, pool):
        result.add_row(**row)
    for row in _pycoordl_rows("imagenet-1k", config_ssd_v100, cache_fractions,
                              scale, seed, workers, store, pool):
        result.add_row(**row)
    return result


def run_fig22(scale: float = SWEEP_SCALE, job_counts: Sequence[int] = (4, 8),
              seed: int = 0) -> ExperimentResult:
    """Fig. 22 — Py-CoorDL coordinated prep with 4 and 8 jobs (cached dataset)."""
    dataset = scaled_dataset("imagenet-1k", scale, seed)
    server = config_ssd_v100(cache_bytes=dataset.total_bytes * 1.2)
    result = ExperimentResult(
        experiment_id="fig22",
        title="Fig. 22 — Py-CoorDL coordinated prep vs PyTorch DL (HP search, cached)",
        columns=["num_jobs", "pytorch_epoch_s", "pycoordl_epoch_s", "speedup"],
        notes=["paper: 1.8x lower training time with 8 concurrent jobs"],
    )
    for jobs in job_counts:
        scenario = HPSearchScenario(RESNET18, dataset, server, num_jobs=jobs,
                                    gpus_per_job=1, seed=seed)
        baseline = scenario.run_baseline(library="pytorch")
        coordl = scenario.run_coordl()
        result.add_row(
            num_jobs=jobs,
            pytorch_epoch_s=baseline.epoch_time_s,
            pycoordl_epoch_s=coordl.epoch_time_s,
            speedup=speedup(baseline.epoch_time_s, coordl.epoch_time_s),
        )
    return result


def run_fig23(scale: float = SWEEP_SCALE, cache_fraction: float = 0.75,
              num_jobs: int = 8, seed: int = 0) -> ExperimentResult:
    """Fig. 23 — end-to-end HP search (Ray-Tune style) on HDD and SSD.

    Reports the three configurations of the appendix: the PyTorch DL baseline,
    coordinated prep alone, and coordinated prep + MinIO (full Py-CoorDL).
    """
    result = ExperimentResult(
        experiment_id="fig23",
        title="Fig. 23 — end-to-end HP search time: baseline vs coordinated prep vs "
              "Py-CoorDL",
        columns=["storage", "configuration", "epoch_time_s", "speedup_vs_baseline"],
        notes=["paper: ~2.5x from coordinated prep alone and ~5.5x with MinIO on HDD; "
               "on SSD most of the gain comes from coordinated prep"],
    )
    dataset = scaled_dataset("imagenet-1k", scale, seed)
    for factory in (config_hdd_1080ti, config_ssd_v100):
        server = factory(cache_bytes=dataset.total_bytes * cache_fraction)
        scenario = HPSearchScenario(RESNET18, dataset, server, num_jobs=num_jobs,
                                    gpus_per_job=1, seed=seed)
        baseline = scenario.run_baseline(library="pytorch")
        full = scenario.run_coordl()
        # "Coordinated prep alone" keeps the page cache's disk traffic but
        # shares one prep sweep across the jobs.
        coordinated_only_time = max(
            baseline.disk_bytes_per_epoch / server.storage.random_read_bw,
            len(dataset) / scenario._best_prep_rate(float(server.physical_cores),
                                                    server.num_gpus),
            len(dataset) / scenario._gpu_rate_per_job(),
        )
        for name, epoch_time in (("pytorch-dl", baseline.epoch_time_s),
                                 ("coordinated-prep", coordinated_only_time),
                                 ("py-coordl", full.epoch_time_s)):
            result.add_row(
                storage=server.storage.name,
                configuration=name,
                epoch_time_s=epoch_time,
                speedup_vs_baseline=speedup(baseline.epoch_time_s, epoch_time),
            )
    return result
