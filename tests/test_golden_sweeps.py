"""Golden regression tests for the sweep executor.

Each committed file under ``tests/golden/`` is the byte-exact snapshot
(:meth:`~repro.sim.sweep.SweepResult.snapshot`, ``float.hex`` floats) of a
small reference grid — Fig. 3 (single-server training points), Fig. 9(b)
(distributed points), Tab. 7 (HP-search points), a warm multi-epoch Fig. 3
grid, a thrashing-regime Fig. 9(d) grid (the last two exercise the
segmented-LRU warm kernel), and two failure-scenario grids
(crash/multi-tenant and elastic/straggler points, whose deterministic
``FailureEvent`` traces are part of the committed bytes; these two are
additionally driven cold-then-warm through both result-store backends
with a zero-simulation warm-pass gate).  The tests assert that
:class:`~repro.sim.sweep.SweepRunner` reproduces every one of them
bit-for-bit serially (``workers=0``) and through the spawn worker pool
(``workers=1`` and ``workers=4``): parallel execution must not change a
single float bit, I/O counter or cache statistic.  The warm-kernel grids
are additionally reproduced with the kernel disabled
(``REPRO_WARM_KERNEL=0`` — spawned workers inherit it), pinning the kernel
≡ per-item-walk equivalence to the committed bytes at every worker count.

Regenerate the files with ``python tools/make_golden.py`` only when a
deliberate simulation change moves the numbers.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.cache.warm_kernel import WARM_KERNEL_ENV_VAR
from repro.sim.harness import (
    GOLDEN_GRIDS,
    golden_path,
    load_golden,
    run_golden_grid,
    snapshot_diff,
    snapshot_to_json,
)

#: The committed snapshots live next to this test module.
GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

GRID_NAMES = sorted(GOLDEN_GRIDS)

#: Grids whose warm/thrashing epochs run through the segmented-LRU kernel.
WARM_KERNEL_GRIDS = ("fig3_warm", "fig9d_small")

#: Grids made of failure/elasticity points — their deterministic
#: ``FailureEvent`` traces are part of the committed bytes.
FAILURE_GRIDS = ("fig_crash_small", "fig_elastic_small")


@pytest.mark.parametrize("name", GRID_NAMES)
def test_golden_file_exists_and_parses(name):
    assert golden_path(name, GOLDEN_DIR).exists(), (
        f"missing committed snapshot for {name}; run tools/make_golden.py")
    expected = load_golden(name, GOLDEN_DIR)
    assert len(expected["records"]) == len(GOLDEN_GRIDS[name].points())


@pytest.mark.parametrize("workers", [0, 1, 4])
@pytest.mark.parametrize("name", GRID_NAMES)
def test_sweep_reproduces_golden_snapshot(name, workers):
    """Serial and pooled runs reproduce the committed bytes exactly."""
    expected = load_golden(name, GOLDEN_DIR)
    actual = run_golden_grid(name, workers=workers)
    diffs = snapshot_diff(expected, actual)
    assert not diffs, (
        f"{name} at workers={workers} diverged from the committed snapshot "
        f"(first differences: {diffs}); if the simulation legitimately "
        "changed, regenerate with tools/make_golden.py")


@pytest.mark.parametrize("workers", [0, 1, 4])
@pytest.mark.parametrize("name", WARM_KERNEL_GRIDS)
def test_warm_kernel_off_reproduces_golden_snapshot(name, workers, monkeypatch):
    """The per-item warm walk must reproduce the kernel's committed bytes.

    The snapshots were generated with the kernel enabled; disabling it
    (the environment variable is inherited by spawned workers) must not
    move a single bit — the kernel is a fast path, not an approximation.
    """
    monkeypatch.setenv(WARM_KERNEL_ENV_VAR, "0")
    expected = load_golden(name, GOLDEN_DIR)
    actual = run_golden_grid(name, workers=workers)
    diffs = snapshot_diff(expected, actual)
    assert not diffs, (
        f"{name} with the warm kernel disabled (workers={workers}) diverged "
        f"from the committed snapshot (first differences: {diffs})")


def test_fig9d_dali_side_reproduces_golden_without_fast_path():
    """The fully per-item reference stack agrees on the thrashing side.

    Training points are compared through the vectorised stack only (their
    epoch timelines reassociate float sums), and so are the MinIO/coordl
    points (their analytic epoch sums bytes pairwise).  The page-cache
    baseline points, however, reduce the warm kernel's walk with the same
    left-to-right accumulation the reference uses, so the Fig. 9(d) dali
    side must be byte-identical even against ``fast_path=False``.
    """
    expected = load_golden("fig9d_small", GOLDEN_DIR)
    actual = run_golden_grid("fig9d_small", fast_path=False)
    compared = 0
    for exp_record, act_record in zip(expected["records"], actual["records"]):
        if exp_record["point"]["loader"] == "hp-baseline":
            compared += 1
            assert exp_record == act_record, (
                "fig9d_small: HP-search baseline point diverged between "
                "the kernel and the per-item reference scenario")
    assert compared, "fig9d grid lost its dali side"


@pytest.mark.parametrize("backend", ["json", "sqlite"])
@pytest.mark.parametrize("name", FAILURE_GRIDS)
def test_failure_grid_cold_then_warm_through_store(name, backend, tmp_path,
                                                   monkeypatch):
    """Failure traces survive the content-addressed store bit for bit.

    A cold store-backed run must match the committed snapshot (all misses),
    and a warm second run must rehydrate every record — events included —
    without a single simulation, on both store backends.
    """
    from repro.sim.sweep import SweepRunner

    location = (f"sqlite://{tmp_path / 'store.db'}" if backend == "sqlite"
                else str(tmp_path / "store"))
    expected = load_golden(name, GOLDEN_DIR)
    grid = GOLDEN_GRIDS[name]

    simulations = []
    original = SweepRunner._run_point

    def counting(self, point):
        simulations.append(point)
        return original(self, point)

    monkeypatch.setattr(SweepRunner, "_run_point", counting)
    cold = grid.build_runner().run(grid.points(), store=location).snapshot()
    assert not snapshot_diff(expected, cold)
    assert len(simulations) == len(grid.points())

    simulations.clear()
    warm = grid.build_runner().run(grid.points(), store=location).snapshot()
    assert not snapshot_diff(expected, warm)
    assert simulations == [], (
        f"{name}: warm store pass re-simulated {len(simulations)} points")


@pytest.mark.parametrize("name", GRID_NAMES)
def test_golden_file_is_in_canonical_form(name):
    """Committed files carry the canonical serialisation, not a stale dump.

    Guards against hand-edits and against the serialisation drifting away
    from what ``tools/make_golden.py`` writes.
    """
    text = golden_path(name, GOLDEN_DIR).read_text(encoding="utf-8")
    assert text == snapshot_to_json(load_golden(name, GOLDEN_DIR))
