"""Benchmarks regenerating Fig. 9: CoorDL vs DALI across training scenarios."""

from __future__ import annotations

from repro.experiments import registry
from repro.experiments.base import SWEEP_SCALE


def test_fig9a_single_server_ssd(run_once):
    """Fig. 9(a): MinIO speeds single-server training by up to ~1.4-2x."""
    result = run_once(registry.get_experiment("fig9a"), scale=SWEEP_SCALE,
                      server_name="ssd-v100")
    speedups_seq = result.column("speedup_vs_seq")
    speedups_shuffle = result.column("speedup_vs_shuffle")
    assert all(s >= 0.95 for s in speedups_shuffle)
    assert max(speedups_seq) >= 1.3
    assert max(speedups_shuffle) >= 1.2


def test_fig9a_single_server_hdd(run_once):
    """Fig. 9(a), HDD servers: the miss penalty is larger, so gains grow."""
    result = run_once(registry.get_experiment("fig9a"), scale=SWEEP_SCALE,
                      server_name="hdd-1080ti")
    resnet50 = result.row_for("model", "resnet50")
    assert resnet50["speedup_vs_seq"] >= 1.3
    assert all(row["speedup_vs_shuffle"] >= 0.95 for row in result.rows)


def test_fig9b_distributed_hdd(run_once):
    """Fig. 9(b): partitioned caching gives order-of-magnitude gains on HDD."""
    result = run_once(registry.get_experiment("fig9b"), scale=SWEEP_SCALE,
                      server_name="hdd-1080ti")
    alexnet = result.row_for("model", "alexnet")
    assert alexnet["speedup"] >= 5.0
    assert all(row["coordl_disk_gb_per_server"] <= 1e-6 for row in result.rows)


def test_fig9c_distributed_ssd(run_once):
    """Fig. 9(c): on SSD servers the distributed gains are smaller (1.3-3x)."""
    result = run_once(registry.get_experiment("fig9b"), scale=SWEEP_SCALE,
                      server_name="ssd-v100")
    speedups = result.column("speedup")
    assert all(s >= 0.95 for s in speedups)
    assert 1.2 <= max(speedups) <= 6.0


def test_fig9d_hp_search_eight_jobs(run_once):
    """Fig. 9(d): coordinated prep + MinIO give 1.2-5.6x for 8-job HP search."""
    result = run_once(registry.get_experiment("fig9d"), scale=SWEEP_SCALE)
    speedups = {row["model"]: row["speedup"] for row in result.rows}
    assert speedups["audio-m5"] >= 2.0
    assert speedups["alexnet"] >= 1.5
    assert all(s >= 0.95 for s in speedups.values())
    assert all(row["coordl_disk_gb"] <= row["dali_disk_gb"] for row in result.rows)


def test_fig9e_hp_search_job_shapes(run_once):
    """Fig. 9(e): the benefit grows with the number of concurrent jobs."""
    result = run_once(registry.get_experiment("fig9e"), scale=SWEEP_SCALE)
    by_jobs = {row["num_jobs"]: row["speedup"] for row in result.rows}
    assert by_jobs[8] >= by_jobs[4] >= by_jobs[2] * 0.95
    assert by_jobs[8] > 1.5
