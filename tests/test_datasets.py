"""Unit tests for the dataset catalog and synthetic datasets."""

import pytest

from repro import units
from repro.datasets.catalog import (
    FMA,
    IMAGENET_1K,
    IMAGENET_22K,
    OPENIMAGES,
    DatasetSpec,
    dataset_names,
    get_dataset_spec,
)
from repro.datasets.dataset import SyntheticDataset
from repro.exceptions import ConfigurationError, UnknownItemError


class TestCatalog:
    def test_catalog_contains_the_paper_datasets(self):
        names = dataset_names()
        for expected in ("imagenet-1k", "imagenet-22k", "openimages",
                         "openimages-detection", "fma"):
            assert expected in names

    def test_lookup_by_name(self):
        assert get_dataset_spec("openimages") is OPENIMAGES

    def test_unknown_dataset_raises(self):
        with pytest.raises(ConfigurationError):
            get_dataset_spec("cifar-10")

    def test_total_sizes_match_paper_magnitudes(self):
        # Table 1: ImageNet-1K 146 GB, ImageNet-22K 1.3 TB, OpenImages 645 GB,
        # FMA 950 GB.  Allow 15% slack on the synthetic approximations.
        assert IMAGENET_1K.total_bytes == pytest.approx(units.GiB(146), rel=0.15)
        assert IMAGENET_22K.total_bytes == pytest.approx(1.3e12, rel=0.15)
        assert OPENIMAGES.total_bytes == pytest.approx(645e9, rel=0.15)
        assert FMA.total_bytes == pytest.approx(950e9, rel=0.15)

    def test_scaled_spec_shrinks_items_only(self):
        scaled = OPENIMAGES.scaled(0.01)
        assert scaled.num_items == pytest.approx(OPENIMAGES.num_items * 0.01, rel=0.01)
        assert scaled.mean_item_bytes == OPENIMAGES.mean_item_bytes
        assert scaled.task == OPENIMAGES.task

    def test_scaled_spec_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            OPENIMAGES.scaled(0.0)
        with pytest.raises(ConfigurationError):
            OPENIMAGES.scaled(1.5)


class TestSyntheticDataset:
    def test_len_and_iteration(self, tiny_dataset):
        assert len(tiny_dataset) == 200
        assert list(tiny_dataset)[:3] == [0, 1, 2]

    def test_item_sizes_are_positive_and_deterministic(self, tiny_spec):
        a = SyntheticDataset(tiny_spec, seed=42)
        b = SyntheticDataset(tiny_spec, seed=42)
        assert all(a.item_size(i) >= 1024 for i in range(len(a)))
        assert [a.item_size(i) for i in range(20)] == [b.item_size(i) for i in range(20)]

    def test_different_seeds_give_different_sizes(self, tiny_spec):
        a = SyntheticDataset(tiny_spec, seed=1)
        b = SyntheticDataset(tiny_spec, seed=2)
        assert [a.item_size(i) for i in range(10)] != [b.item_size(i) for i in range(10)]

    def test_mean_item_size_matches_spec(self, tiny_spec):
        ds = SyntheticDataset(tiny_spec, seed=0)
        assert ds.mean_item_bytes == pytest.approx(tiny_spec.mean_item_bytes, rel=0.2)

    def test_out_of_range_item_raises(self, tiny_dataset):
        with pytest.raises(UnknownItemError):
            tiny_dataset.item_size(len(tiny_dataset))
        with pytest.raises(UnknownItemError):
            tiny_dataset.item_size(-1)

    def test_items_size_sums_individual_sizes(self, tiny_dataset):
        ids = [0, 5, 7]
        expected = sum(tiny_dataset.item_size(i) for i in ids)
        assert tiny_dataset.items_size(ids) == pytest.approx(expected)

    def test_items_size_rejects_bad_ids(self, tiny_dataset):
        with pytest.raises(UnknownItemError):
            tiny_dataset.items_size([0, 10_000])

    def test_cache_capacity_for_fraction(self, tiny_dataset):
        assert tiny_dataset.cache_capacity_for_fraction(0.5) == pytest.approx(
            tiny_dataset.total_bytes * 0.5)
        with pytest.raises(ConfigurationError):
            tiny_dataset.cache_capacity_for_fraction(1.5)

    def test_scale_argument_builds_smaller_dataset(self, tiny_spec):
        full = SyntheticDataset(tiny_spec, seed=0)
        half = SyntheticDataset(tiny_spec, seed=0, scale=0.5)
        assert len(half) == 100
        assert half.total_bytes < full.total_bytes

    def test_empty_spec_rejected(self):
        spec = DatasetSpec(name="empty", task="image_classification",
                           num_items=0, mean_item_bytes=1000.0)
        with pytest.raises(ConfigurationError):
            SyntheticDataset(spec)
