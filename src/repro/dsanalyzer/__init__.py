"""DS-Analyzer: differential data-stall profiling and what-if prediction."""

from repro.dsanalyzer.predictor import Bottleneck, DataStallPredictor, Prediction
from repro.dsanalyzer.profiler import DSAnalyzerProfiler, PipelineProfile
from repro.dsanalyzer.report import (
    format_prediction,
    format_profile,
    format_recommendation,
    format_sweep,
    summarize,
)
from repro.dsanalyzer.whatif import (
    CacheSizeRecommendation,
    cores_needed_per_gpu,
    optimal_cache_fraction,
    sweep_cache_fractions,
    with_faster_gpu,
)

__all__ = [
    "DSAnalyzerProfiler",
    "PipelineProfile",
    "DataStallPredictor",
    "Prediction",
    "Bottleneck",
    "optimal_cache_fraction",
    "sweep_cache_fractions",
    "cores_needed_per_gpu",
    "with_faster_gpu",
    "CacheSizeRecommendation",
    "format_profile",
    "format_prediction",
    "format_sweep",
    "format_recommendation",
    "summarize",
]
