#!/usr/bin/env python3
"""Capacity planning with DS-Analyzer's what-if analysis (Sec. 3.4, App. C).

Answers, for AlexNet on a Config-SSD-V100 server, the three questions the
paper built DS-Analyzer for — without running a single full training job:

* How much DRAM cache does the model need before more DRAM stops helping?
* How many CPU cores per GPU are needed to mask prep stalls?
* What happens to data stalls if the GPUs get 2x or 4x faster?

Run with ``python examples/whatif_capacity_planning.py``.
"""

from __future__ import annotations

from repro.cluster import config_ssd_v100
from repro.compute import ALEXNET, RESNET18, RESNET50
from repro.datasets import SyntheticDataset, get_dataset_spec
from repro.dsanalyzer import (
    DataStallPredictor,
    DSAnalyzerProfiler,
    cores_needed_per_gpu,
    format_recommendation,
    format_sweep,
    optimal_cache_fraction,
    sweep_cache_fractions,
    with_faster_gpu,
)

SCALE = 1.0 / 100.0


def main() -> None:
    dataset = SyntheticDataset(get_dataset_spec("imagenet-1k"), scale=SCALE)
    server = config_ssd_v100()
    model = ALEXNET

    profiler = DSAnalyzerProfiler(model, dataset, server, gpu_prep=True)
    profile = profiler.profile()
    predictor = DataStallPredictor(profile)

    # --- 1. How much cache is enough? ---------------------------------------
    print("Q1. How much DRAM cache does AlexNet need on Config-SSD-V100?\n")
    print(format_sweep(sweep_cache_fractions(predictor, [0.0, 0.25, 0.5, 0.75, 1.0])))
    recommendation = optimal_cache_fraction(predictor, dataset)
    print()
    print(format_recommendation(recommendation))
    print()

    # --- 2. How many CPU cores per GPU? -------------------------------------
    print("Q2. CPU cores per GPU needed to mask prep stalls (CPU-only prep):\n")
    for candidate in (RESNET50, RESNET18, ALEXNET):
        needed = cores_needed_per_gpu(candidate, dataset, server)
        note = " (cannot be masked on this server)" if needed >= 24 else ""
        print(f"  {candidate.name:<12} {needed:>3} cores/GPU{note}")
    print()

    # --- 3. What if GPUs get faster? ----------------------------------------
    # ResNet50 is GPU-bound today; the question is what a faster accelerator
    # buys if the storage and CPUs stay the same.
    print("Q3. ResNet50: what happens to data stalls if GPUs get faster?\n")
    r50_profile = DSAnalyzerProfiler(RESNET50, dataset, server, gpu_prep=False).profile()
    print(f"{'GPU speed':<12}{'training speed':>16}{'fetch stall':>13}{'prep stall':>13}")
    base_speed = DataStallPredictor(r50_profile).predict(0.55).training_speed
    for factor in (1.0, 2.0, 4.0):
        prediction = DataStallPredictor(with_faster_gpu(r50_profile, factor)).predict(0.55)
        print(f"{factor:>6.1f}x     {prediction.training_speed:>16,.0f}"
              f"{prediction.fetch_stall_fraction:>12.0%}"
              f"{prediction.prep_stall_fraction:>12.0%}")
    final = DataStallPredictor(with_faster_gpu(r50_profile, 4.0)).predict(0.55)
    print(f"\nA 4x faster GPU yields only {final.training_speed / base_speed:.1f}x more "
          "throughput: the data pipeline absorbs the rest —")
    print("the paper's argument for why data stalls will only get worse.")


if __name__ == "__main__":
    main()
