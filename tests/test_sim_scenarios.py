"""Tests for the scenario drivers: single-server, distributed, HP search, accuracy."""

import pytest

from repro.cluster.configs import config_hdd_1080ti, config_ssd_v100
from repro.compute.model_zoo import ALEXNET, AUDIO_M5, RESNET18, RESNET50
from repro.exceptions import ConfigurationError
from repro.sim.accuracy import AccuracyCurve, resnet50_imagenet_curve, time_to_accuracy
from repro.sim.distributed import DistributedTraining
from repro.sim.hp_search import HPSearchScenario
from repro.sim.single_server import LOADER_KINDS, SingleServerTraining, build_loader


class TestSingleServerTraining:
    def test_all_loader_kinds_build(self, small_dataset, ssd_server):
        from repro.sim.single_server import effective_batch_size
        expected = effective_batch_size(small_dataset,
                                        RESNET18.batch_size * ssd_server.num_gpus)
        for kind in LOADER_KINDS:
            loader = build_loader(kind, small_dataset, ssd_server, RESNET18)
            assert loader.batch_size() == expected
        explicit = build_loader("dali-shuffle", small_dataset, ssd_server, RESNET18,
                                batch_size=128)
        assert explicit.batch_size() == 128

    def test_unknown_loader_kind_rejected(self, small_dataset, ssd_server):
        with pytest.raises(ConfigurationError):
            build_loader("tf-data", small_dataset, ssd_server, RESNET18)

    def test_coordl_at_least_as_fast_as_dali_when_partially_cached(self, small_dataset,
                                                                   ssd_server):
        server = ssd_server.with_cache_bytes(small_dataset.total_bytes * 0.5)
        training = SingleServerTraining(RESNET18, small_dataset, server, num_epochs=2)
        dali = training.run("dali-shuffle").steady_epoch_time_s
        coordl = training.run("coordl").steady_epoch_time_s
        assert coordl <= dali * 1.01

    def test_coordl_reduces_disk_io_to_capacity_misses(self, small_dataset, ssd_server):
        fraction = 0.6
        server = ssd_server.with_cache_bytes(small_dataset.total_bytes * fraction)
        training = SingleServerTraining(RESNET18, small_dataset, server, num_epochs=2)
        epoch = training.run("coordl").run.steady_epoch()
        assert epoch.cache_miss_ratio == pytest.approx(1 - fraction, abs=0.08)

    def test_requires_warmup_plus_measured_epoch(self, small_dataset, ssd_server):
        with pytest.raises(ConfigurationError):
            SingleServerTraining(RESNET18, small_dataset, ssd_server, num_epochs=1)

    def test_fully_cached_run_has_no_fetch_stall(self, small_dataset, ssd_server):
        server = ssd_server.with_cache_bytes(small_dataset.total_bytes * 1.5)
        training = SingleServerTraining(RESNET50, small_dataset, server, num_epochs=2)
        epoch = training.run("coordl").run.steady_epoch()
        assert epoch.fetch_stall_fraction < 0.02


class TestDistributedTraining:
    def _servers(self, dataset, fraction, n=2):
        return [config_hdd_1080ti(cache_bytes=dataset.total_bytes * fraction)
                for _ in range(n)]

    def test_partitioned_cache_eliminates_disk_io_when_covered(self, small_dataset):
        servers = self._servers(small_dataset, 0.6)
        training = DistributedTraining(RESNET18, small_dataset, servers, num_epochs=2)
        coordl = training.run_coordl()
        steady = coordl.steady_epochs()[-1]
        assert steady.total_disk_bytes == 0.0
        assert steady.total_remote_bytes > 0.0

    def test_coordl_beats_baseline_on_hdd(self, small_dataset):
        servers = self._servers(small_dataset, 0.6)
        training = DistributedTraining(ALEXNET, small_dataset, servers, num_epochs=2)
        baseline = training.run_baseline()
        coordl = training.run_coordl()
        assert coordl.steady_epoch_time_s < baseline.steady_epoch_time_s / 2

    def test_job_epoch_time_is_slowest_server(self, small_dataset):
        servers = self._servers(small_dataset, 0.5)
        training = DistributedTraining(RESNET18, small_dataset, servers, num_epochs=2)
        epoch = training.run_baseline().epochs[-1]
        assert epoch.epoch_time_s == max(s.epoch_time_s for s in epoch.per_server)

    def test_validation(self, small_dataset, hdd_server):
        with pytest.raises(ConfigurationError):
            DistributedTraining(RESNET18, small_dataset, [hdd_server], num_epochs=2)
        with pytest.raises(ConfigurationError):
            DistributedTraining(RESNET18, small_dataset, [hdd_server, hdd_server],
                                num_epochs=1)


class TestHPSearchScenario:
    def test_coordl_faster_than_baseline_with_partial_cache(self, small_dataset,
                                                            ssd_server):
        scenario = HPSearchScenario(ALEXNET, small_dataset, ssd_server, num_jobs=8,
                                    gpus_per_job=1,
                                    cache_bytes=small_dataset.total_bytes * 0.5)
        assert scenario.speedup() > 1.2

    def test_coordinated_prep_removes_redundant_fetches(self, small_dataset, ssd_server):
        scenario = HPSearchScenario(ALEXNET, small_dataset, ssd_server, num_jobs=8,
                                    gpus_per_job=1,
                                    cache_bytes=small_dataset.total_bytes * 0.5)
        baseline = scenario.run_baseline()
        coordl = scenario.run_coordl()
        # The baseline reads (several times) more bytes from disk per epoch.
        assert baseline.disk_bytes_per_epoch > 3 * coordl.disk_bytes_per_epoch
        assert coordl.staging_peak_bytes > 0

    def test_fully_cached_speedup_comes_from_prep_only(self, small_dataset, ssd_server):
        scenario = HPSearchScenario(ALEXNET, small_dataset, ssd_server, num_jobs=8,
                                    gpus_per_job=1,
                                    cache_bytes=small_dataset.total_bytes * 1.5)
        baseline = scenario.run_baseline()
        coordl = scenario.run_coordl()
        assert baseline.disk_bytes_per_epoch == 0.0
        assert baseline.prep_bound or baseline.gpu_bound
        assert coordl.epoch_time_s <= baseline.epoch_time_s

    def test_gpu_oversubscription_rejected(self, small_dataset, ssd_server):
        with pytest.raises(ConfigurationError):
            HPSearchScenario(ALEXNET, small_dataset, ssd_server, num_jobs=8,
                             gpus_per_job=2)

    def test_audio_model_is_io_bound_then_fixed_by_coordl(self, ssd_server):
        from repro.datasets.catalog import FMA
        from repro.datasets.dataset import SyntheticDataset
        fma = SyntheticDataset(FMA, seed=0, scale=1 / 500)
        scenario = HPSearchScenario(AUDIO_M5, fma, ssd_server, num_jobs=8,
                                    gpus_per_job=1,
                                    cache_bytes=fma.total_bytes * 0.45)
        baseline = scenario.run_baseline()
        assert baseline.fetch_bound
        assert scenario.speedup() > 2.0


class TestAccuracyModel:
    def test_curve_is_monotone_and_saturating(self):
        curve = resnet50_imagenet_curve()
        accuracies = [curve.accuracy_at_epoch(e) for e in range(0, 120, 10)]
        assert accuracies == sorted(accuracies)
        assert accuracies[-1] < curve.max_accuracy

    def test_target_reached_in_reasonable_epochs(self):
        curve = resnet50_imagenet_curve()
        epochs = curve.epochs_to_accuracy(0.759)
        assert 60 <= epochs <= 120
        assert curve.accuracy_at_epoch(epochs) == pytest.approx(0.759, abs=1e-6)

    def test_unreachable_target_rejected(self):
        with pytest.raises(ConfigurationError):
            resnet50_imagenet_curve().epochs_to_accuracy(0.99)

    def test_time_to_accuracy_scales_with_epoch_time(self):
        curve = resnet50_imagenet_curve()
        slow = time_to_accuracy("dali", 3600.0, curve, 0.759)
        fast = time_to_accuracy("coordl", 900.0, curve, 0.759)
        assert slow.epochs_needed == pytest.approx(fast.epochs_needed)
        assert slow.time_to_accuracy_s == pytest.approx(4 * fast.time_to_accuracy_s)
        assert len(fast.trajectory) >= int(fast.epochs_needed)

    def test_curve_validation(self):
        with pytest.raises(ConfigurationError):
            AccuracyCurve(max_accuracy=1.5)
        with pytest.raises(ConfigurationError):
            AccuracyCurve(tau_epochs=0)
