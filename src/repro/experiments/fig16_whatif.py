"""Figure 16 — estimating the optimal cache size with DS-Analyzer.

Appendix C.2's example: sweep the cache fraction for AlexNet on
Config-SSD-V100, predict the effective fetch rate and the resulting training
speed, and find the smallest cache at which the job stops being IO-bound
(~55 % of ImageNet-1K); beyond that more DRAM buys nothing because the job is
CPU-bound on prep.  The experiment also reports the empirical (simulated)
speed at each point so the two curves can be compared.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import ALEXNET, ModelSpec
from repro.dsanalyzer.predictor import DataStallPredictor
from repro.dsanalyzer.profiler import DSAnalyzerProfiler
from repro.dsanalyzer.whatif import optimal_cache_fraction
from repro.experiments.base import ExperimentResult, SWEEP_SCALE
from repro.sim.sweep import SweepRunner
from repro.store import PersistentPool, StoreArg

DEFAULT_FRACTIONS = (0.0, 0.2, 0.4, 0.55, 0.7, 0.85, 1.0)


def run(scale: float = SWEEP_SCALE, model: ModelSpec = ALEXNET,
        dataset_name: str = "imagenet-1k",
        fractions: Sequence[float] = DEFAULT_FRACTIONS,
        seed: int = 0, workers: Optional[int] = None,
        store: StoreArg = None,
        pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Reproduce the cache-size what-if sweep of Fig. 16."""
    runner = SweepRunner(config_ssd_v100, scale=scale, seed=seed)
    dataset = runner.dataset(dataset_name)
    server = config_ssd_v100()
    profiler = DSAnalyzerProfiler(model, dataset, server, gpu_prep=False)
    predictor = DataStallPredictor(profiler.profile())
    recommendation = optimal_cache_fraction(predictor, dataset)
    # The empirical curve is a plain cache-fraction sweep of the simulator.
    sweep = runner.run(SweepRunner.grid(
        models=[model], loaders=["coordl"], cache_fractions=fractions,
        dataset=dataset_name, gpu_prep=False), workers=workers, store=store, pool=pool)

    result = ExperimentResult(
        experiment_id="fig16",
        title=f"Fig. 16 — optimal cache size estimation ({model.name}, Config-SSD-V100)",
        columns=["cache_pct", "predicted_speed", "empirical_speed", "bottleneck"],
        notes=[f"DS-Analyzer recommendation: cache {recommendation.optimal_cache_fraction:.0%} "
               f"of the dataset; beyond that the job is "
               f"{recommendation.bottleneck_beyond_optimum.value}",
               "paper: ~55% of the dataset suffices; more DRAM has no benefit"],
    )
    for fraction in fractions:
        prediction = predictor.predict(fraction)
        empirical = sweep.one(cache_fraction=fraction).steady.throughput
        result.add_row(
            cache_pct=100.0 * fraction,
            predicted_speed=prediction.training_speed,
            empirical_speed=empirical,
            bottleneck=prediction.bottleneck.value,
        )
    return result
