#!/usr/bin/env python3
"""Fail if any public ``__all__`` symbol is missing from docs/API.md.

Checked surfaces: ``repro.__all__`` (the top-level re-exports) plus the
subsystem surfaces ``repro.sim.__all__``, ``repro.coordl.__all__``,
``repro.cache.__all__``, ``repro.store.__all__``, ``repro.serve.__all__``,
``repro.resilience.__all__``, ``repro.dist.__all__`` and
``repro.experiments.failures.__all__``.

Run as ``make docs-check`` (or ``PYTHONPATH=src python tools/docs_check.py``).
The check is textual on purpose: a symbol counts as documented when its name
appears anywhere in docs/API.md, so tables, prose and code snippets all
qualify, and renames/removals surface immediately.
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro  # noqa: E402  (path bootstrap above)
import repro.cache  # noqa: E402
import repro.coordl  # noqa: E402
import repro.dist  # noqa: E402
import repro.experiments.failures  # noqa: E402
import repro.resilience  # noqa: E402
import repro.serve  # noqa: E402
import repro.sim  # noqa: E402
import repro.store  # noqa: E402

#: (label, module) pairs whose ``__all__`` must be covered by docs/API.md.
CHECKED_SURFACES = (
    ("repro", repro),
    ("repro.sim", repro.sim),
    ("repro.coordl", repro.coordl),
    ("repro.cache", repro.cache),
    ("repro.store", repro.store),
    ("repro.serve", repro.serve),
    ("repro.resilience", repro.resilience),
    ("repro.dist", repro.dist),
    ("repro.experiments.failures", repro.experiments.failures),
)


def main() -> int:
    api_doc = REPO_ROOT / "docs" / "API.md"
    if not api_doc.exists():
        print(f"docs-check: {api_doc} does not exist", file=sys.stderr)
        return 1
    text = api_doc.read_text(encoding="utf-8")
    failed = False
    total = 0
    for label, module in CHECKED_SURFACES:
        symbols = list(module.__all__)
        total += len(symbols)
        missing = [name for name in symbols if name not in text]
        if missing:
            failed = True
            print(f"docs-check: symbols in {label}.__all__ missing from "
                  "docs/API.md:", file=sys.stderr)
            for name in missing:
                print(f"  - {name}", file=sys.stderr)
    if failed:
        return 1
    print(f"docs-check: all {total} public symbols across "
          f"{len(CHECKED_SURFACES)} surfaces documented in docs/API.md")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
