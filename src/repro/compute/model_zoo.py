"""Model zoo: the nine DNNs analysed by the paper (Table 1).

For data-stall analysis a DNN is fully characterised by

* ``gpu_rate_v100`` — the maximum ingestion rate G at which one V100 can
  consume pre-processed samples when the data pipeline never stalls it
  (samples/second, at the paper's batch size, mixed precision).  These values
  are calibrated from Table 7 (per-job DALI speed x CoorDL speedup recovers G
  for the cached-dataset HP-search experiment) and Fig. 1.
* the task, which selects the prep pipeline, and
* the per-GPU batch size used in the paper's experiments (Sec. 3.1).

GPU-compute-bound language models (BERT-Large, GNMT) are included so that the
"no data stalls for these models" finding can be reproduced; they consume tiny
raw items at modest sample rates, so min(F, P) >> G.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro import units
from repro.compute.gpu import GPUSpec
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ModelSpec:
    """Static description of one DNN for pipeline analysis.

    Attributes:
        name: Model name as used in the paper's figures.
        task: Task family; selects dataset type and prep pipeline.
        gpu_rate_v100: Samples/second one V100 sustains with no data stalls.
        batch_size: Per-GPU batch size used on Config-SSD-V100 (Sec. 3.1).
        batch_size_small_gpu: Per-GPU batch size on the 11 GB 1080Ti.
        gpu_prep_interference: Fractional slowdown of GPU compute when DALI's
            GPU-prep mode shares the device (significant for compute-heavy
            models like ResNet50/VGG11, Appendix B.2).
        comm_overhead_per_gpu: Fractional per-step overhead added per
            additional GPU participating in gradient synchronisation.
        default_dataset: Dataset the paper pairs this model with in Sec. 5.
    """

    name: str
    task: str
    gpu_rate_v100: float
    batch_size: int
    batch_size_small_gpu: int
    gpu_prep_interference: float = 0.0
    comm_overhead_per_gpu: float = 0.004
    default_dataset: str = "openimages"

    def __post_init__(self) -> None:
        if self.gpu_rate_v100 <= 0:
            raise ConfigurationError("GPU ingestion rate must be positive")
        if self.batch_size <= 0 or self.batch_size_small_gpu <= 0:
            raise ConfigurationError("batch sizes must be positive")
        if not 0.0 <= self.gpu_prep_interference < 1.0:
            raise ConfigurationError("interference must be in [0, 1)")

    def gpu_rate(self, gpu: GPUSpec, gpu_prep_active: bool = False) -> float:
        """Ingestion rate of one GPU of the given type for this model."""
        rate = self.gpu_rate_v100 * gpu.compute_scale
        if gpu_prep_active:
            rate *= 1.0 - self.gpu_prep_interference
        return rate

    def aggregate_gpu_rate(self, gpu: GPUSpec, num_gpus: int,
                           gpu_prep_active: bool = False) -> float:
        """Ingestion rate of ``num_gpus`` data-parallel GPUs (with sync cost)."""
        if num_gpus <= 0:
            raise ConfigurationError("need at least one GPU")
        per_gpu = self.gpu_rate(gpu, gpu_prep_active=gpu_prep_active)
        sync_penalty = 1.0 + self.comm_overhead_per_gpu * (num_gpus - 1)
        return per_gpu * num_gpus / sync_penalty

    def batch_size_for(self, gpu: GPUSpec) -> int:
        """Per-GPU batch size used on this GPU type."""
        return self.batch_size if gpu.supports_mixed_precision else self.batch_size_small_gpu

    @property
    def is_gpu_bound_language_model(self) -> bool:
        """Models the paper excludes from stall analysis (no data stalls)."""
        return self.task == "language_modeling"

    def raw_bytes_rate_demand(self, gpu: GPUSpec, num_gpus: int,
                              mean_item_bytes: float) -> float:
        """Raw-data bandwidth (bytes/s) the GPUs demand (Fig. 1's 2283 MB/s)."""
        return self.aggregate_gpu_rate(gpu, num_gpus) * mean_item_bytes


# ---------------------------------------------------------------------------
# Calibrated model entries.
#
# gpu_rate_v100 calibration: Table 7 gives per-job throughput under DALI with
# 3 cores/GPU and the speedup CoorDL achieves once redundant prep is removed
# (at which point the job runs at G).  E.g. ShuffleNet 1441 x 1.81 = 2608,
# ResNet18 1056 x 1.53 = 1616, ResNet50 569 x 1.21 = 688.
# ---------------------------------------------------------------------------

SHUFFLENET_V2 = ModelSpec("shufflenetv2", "image_classification", 2608.0, 512, 256,
                          gpu_prep_interference=0.02)
ALEXNET = ModelSpec("alexnet", "image_classification", 2616.0, 512, 256,
                    gpu_prep_interference=0.02)
RESNET18 = ModelSpec("resnet18", "image_classification", 1616.0, 512, 256,
                     gpu_prep_interference=0.04)
SQUEEZENET = ModelSpec("squeezenet", "image_classification", 1253.0, 512, 256,
                       gpu_prep_interference=0.05)
MOBILENET_V2 = ModelSpec("mobilenetv2", "image_classification", 1015.0, 512, 256,
                         gpu_prep_interference=0.05)
RESNET50 = ModelSpec("resnet50", "image_classification", 688.0, 512, 184,
                     gpu_prep_interference=0.15, default_dataset="imagenet-1k")
VGG11 = ModelSpec("vgg11", "image_classification", 673.0, 512, 128,
                  gpu_prep_interference=0.15, default_dataset="imagenet-1k")
SSD_RES18 = ModelSpec("ssd-res18", "object_detection", 360.0, 128, 64,
                      gpu_prep_interference=0.08,
                      default_dataset="openimages-detection")
AUDIO_M5 = ModelSpec("audio-m5", "audio_classification", 1500.0, 16, 16,
                     gpu_prep_interference=0.02, default_dataset="fma")

# GPU-compute-bound language models: included to reproduce the finding that
# they show no data stalls (Sec. 3.1).  Raw text items are ~1.5 KB, GPU rates
# are low, so the data pipeline trivially keeps up.
BERT_LARGE = ModelSpec("bert-large", "language_modeling", 52.0, 8, 4,
                       default_dataset="imagenet-1k")
GNMT = ModelSpec("gnmt", "language_modeling", 310.0, 128, 64,
                 default_dataset="imagenet-1k")

IMAGE_MODELS: Tuple[ModelSpec, ...] = (
    SHUFFLENET_V2, ALEXNET, RESNET18, SQUEEZENET, MOBILENET_V2, RESNET50, VGG11,
)

ALL_STALL_MODELS: Tuple[ModelSpec, ...] = IMAGE_MODELS + (SSD_RES18, AUDIO_M5)

_ZOO: Dict[str, ModelSpec] = {
    m.name: m for m in ALL_STALL_MODELS + (BERT_LARGE, GNMT)
}


def model_names() -> Tuple[str, ...]:
    """Names of every model in the zoo."""
    return tuple(sorted(_ZOO))


def get_model(name: str) -> ModelSpec:
    """Look up a model by name.

    Raises:
        ConfigurationError: if the name is not in the zoo.
    """
    try:
        return _ZOO[name]
    except KeyError:
        known = ", ".join(model_names())
        raise ConfigurationError(f"unknown model {name!r}; known models: {known}") from None
