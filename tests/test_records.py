"""Unit tests for the TFRecord-style chunked layout."""

import numpy as np
import pytest

from repro.datasets.records import RecordLayout
from repro.exceptions import ConfigurationError


@pytest.fixture
def layout(tiny_dataset):
    # ~10 items per chunk at 120 KB mean item size.
    return RecordLayout(tiny_dataset, chunk_bytes=1.2e6, shuffle_seed=0)


class TestRecordLayout:
    def test_every_item_maps_to_exactly_one_chunk(self, layout, tiny_dataset):
        chunk_ids = {layout.chunk_of_item(i) for i in range(len(tiny_dataset))}
        assert chunk_ids <= set(range(layout.num_chunks))
        covered = sum(c.num_items for c in layout.chunks)
        assert covered == len(tiny_dataset)

    def test_chunk_sizes_sum_to_dataset_size(self, layout, tiny_dataset):
        total = sum(layout.chunk_size(c.chunk_id) for c in layout.chunks)
        assert total == pytest.approx(tiny_dataset.total_bytes, rel=1e-6)

    def test_chunks_respect_target_size(self, layout):
        # Every chunk except possibly the last reaches the target size.
        for chunk in layout.chunks[:-1]:
            assert chunk.size_bytes >= 1.2e6

    def test_sequential_order_covers_all_chunks(self, layout):
        order = layout.sequential_chunk_order()
        assert sorted(order.tolist()) == list(range(layout.num_chunks))

    def test_interleaved_order_is_a_permutation_of_chunks(self, layout):
        order = layout.interleaved_chunk_order(num_readers=4, seed=1)
        assert sorted(order.tolist()) == list(range(layout.num_chunks))

    def test_interleaved_rejects_bad_reader_count(self, layout):
        with pytest.raises(ConfigurationError):
            layout.interleaved_chunk_order(0)

    def test_bad_chunk_size_rejected(self, tiny_dataset):
        with pytest.raises(ConfigurationError):
            RecordLayout(tiny_dataset, chunk_bytes=0)
