"""Content-addressed sweep result store and persistent worker pool.

The subsystem that turns the reproduction from recompute-everything into
serve-many-queries:

* :class:`SweepStore` — an on-disk, content-addressed store of
  :class:`~repro.sim.sweep.SweepRecord` snapshots, keyed by a BLAKE2
  digest (:func:`store_key`) of the canonical (runner, point, env-flag)
  identity (:meth:`~repro.sim.sweep.SweepRunner.point_spec`) plus the
  store schema version.  A hit rehydrates a byte-identical record
  (:meth:`~repro.sim.sweep.SweepRecord.from_snapshot`); corruption of any
  entry degrades to a miss, never to a wrong answer.
* :class:`PersistentPool` — a spawn worker pool that outlives individual
  ``run()`` calls, with per-worker dataset/sampler caches shared across
  runner configurations.
* :func:`resolve_store` — the ``store=`` argument normaliser every
  sweep-backed ``run`` uses (:data:`STORE_ENV_VAR` supplies the ambient
  default; ``False`` opts out).

Both halves plug into :meth:`repro.sim.sweep.SweepRunner.run` via its
``store=`` / ``pool=`` arguments and are surfaced on the command line as
``--store`` / ``--no-store`` plus the ``repro store`` management
subcommands (``stats`` / ``gc`` / ``invalidate``).
"""

from repro.store.pool import PersistentPool
from repro.store.store import (
    STORE_ENV_VAR,
    STORE_SCHEMA_VERSION,
    StoreArg,
    StoreStats,
    StoreTraceEvent,
    SweepStore,
    resolve_store,
    store_key,
    verify_store_trace,
)

__all__ = [
    "SweepStore",
    "StoreStats",
    "StoreArg",
    "StoreTraceEvent",
    "PersistentPool",
    "resolve_store",
    "store_key",
    "verify_store_trace",
    "STORE_ENV_VAR",
    "STORE_SCHEMA_VERSION",
]
