"""Least-recently-used cache.

This is the textbook LRU eviction policy over variable-sized items.  It is the
building block for the OS page-cache model
(:class:`~repro.cache.page_cache.PageCache`) and is also useful on its own as
the policy the paper contrasts MinIO against.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro.cache.base import Cache


class LRUCache(Cache):
    """Variable-size LRU cache keyed by item id."""

    def __init__(self, capacity_bytes: float) -> None:
        super().__init__(capacity_bytes)
        self._entries: "OrderedDict[int, float]" = OrderedDict()
        self._used = 0.0

    @property
    def used_bytes(self) -> float:
        return self._used

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._entries

    def cached_items(self) -> Iterable[int]:
        return list(self._entries.keys())

    def lookup(self, item_id: int) -> bool:
        entry = self._entries.get(item_id)
        if entry is None:
            self._stats.record_miss()
            return False
        self._entries.move_to_end(item_id)
        self._stats.record_hit(entry)
        return True

    def admit(self, item_id: int, size_bytes: float) -> bool:
        if size_bytes > self._capacity:
            self._stats.rejected += 1
            return False
        if item_id in self._entries:
            # Size refresh: treat as a re-insertion at MRU position.
            self._used -= self._entries[item_id]
            del self._entries[item_id]
        self._evict_until(size_bytes)
        self._entries[item_id] = size_bytes
        self._used += size_bytes
        self._stats.insertions += 1
        return True

    def _evict_until(self, needed_bytes: float) -> None:
        while self._entries and self._used + needed_bytes > self._capacity:
            _evicted_id, evicted_size = self._entries.popitem(last=False)
            self._used -= evicted_size
            self._stats.evictions += 1

    def evict(self, item_id: int) -> bool:
        """Explicitly drop one item; returns True if it was present."""
        size = self._entries.pop(item_id, None)
        if size is None:
            return False
        self._used -= size
        self._stats.evictions += 1
        return True

    def clear(self) -> None:
        """Drop every cached item (echo 3 > drop_caches)."""
        self._entries.clear()
        self._used = 0.0
