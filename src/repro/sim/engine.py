"""Pipelined epoch simulation engine.

DNN training overlaps data fetch, pre-processing and GPU compute (Sec. 2).
The engine models one epoch as a three-stage pipeline with a bounded prefetch
queue between the data stages and the GPU:

* stage F — fetch batch ``b`` (cache + storage times from the loader),
* stage P — pre-process batch ``b`` (worker-pool time from the loader),
* stage G — GPU compute on batch ``b``.

Completion-time recurrence (per batch ``b``)::

    done_F[b] = max(done_F[b-1], done_G[b-depth]) + t_F(b)
    done_P[b] = max(done_P[b-1], done_F[b])       + t_P(b)
    done_G[b] = max(done_G[b-1], done_P[b])       + t_G(b)

The bounded depth is what gives DALI its characteristic behaviour of racing
ahead early in an epoch while the cache is still hitting and then throttling
to storage speed (Fig. 11).

Stall attribution follows DS-Analyzer's differential method: the same
per-batch time arrays are re-run with (a) fetch at DRAM speed to obtain the
prep-limited epoch time and (b) GPU-only time; fetch stall and prep stall are
the successive differences.

Two fast paths keep multi-epoch, multi-configuration sweeps out of the
Python interpreter:

* :func:`pipeline_makespan` evaluates the recurrence above with a vectorised
  numpy kernel on the ``(num_stages, num_batches)`` stage-time matrix
  (:func:`pipeline_makespan_reference` keeps the straightforward per-batch
  loop as the executable specification);
* :meth:`PipelineSimulator.collect_batch_times` asks the loader for whole
  per-batch time *arrays* (:meth:`repro.pipeline.base.DataLoader.batch_time_arrays`)
  whenever the cache can apply the epoch in bulk — a MinIO cache in any
  state, a cold page cache's closed form, and warm/thrashing page caches
  through the segmented-LRU bulk kernel
  (:mod:`repro.cache.warm_kernel`) — and only falls back to the per-batch
  ``fetch_batch`` loop for custom fetch policies, repeated items or a
  declined kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.compute.gpu import GPUSpec
from repro.compute.model_zoo import ModelSpec
from repro.exceptions import ConfigurationError, SimulationError
from repro.pipeline.base import DataLoader
from repro.pipeline.stats import EpochStats

#: Below this many (stage, batch) cells the scalar recurrence outruns the
#: numpy kernel, whose cost is dominated by per-chunk call overhead when the
#: queue depth (= chunk length) is small.
_SCALAR_KERNEL_CUTOFF = 8192


@dataclass
class BatchTimes:
    """Per-batch stage durations collected while simulating an epoch.

    ``batch_sizes`` (samples per minibatch) is filled by both collection
    paths of :meth:`PipelineSimulator.collect_batch_times`; it is optional so
    that hand-built instances in older call sites keep working.
    """

    fetch_s: Sequence[float]
    cached_fetch_s: Sequence[float]
    prep_s: Sequence[float]
    gpu_s: Sequence[float]
    batch_sizes: Optional[Sequence[int]] = None

    def num_batches(self) -> int:
        """Number of batches in the epoch."""
        return len(self.gpu_s)

    def num_samples(self) -> Optional[int]:
        """Samples in the epoch, when the collection path recorded them."""
        if self.batch_sizes is None:
            return None
        return int(np.sum(self.batch_sizes))


def pipeline_makespan_reference(stage_times: Sequence[Sequence[float]],
                                queue_depth: int = 4) -> float:
    """Pure-Python reference for :func:`pipeline_makespan`.

    Evaluates the completion-time recurrence one ``(stage, batch)`` cell at a
    time, exactly as written in the module docstring.  Kept as the executable
    specification the vectorised kernel is property-tested against, and used
    directly for small epochs where it is faster than the numpy kernel.
    """
    stages = [s.tolist() for s in _validated_stage_times(stage_times, queue_depth)]
    num_stages = len(stages)
    num_batches = len(stages[0])
    if num_batches == 0:
        return 0.0
    done = [[0.0] * num_batches for _ in range(num_stages)]
    last = done[num_stages - 1]
    for b in range(num_batches):
        for s in range(num_stages):
            prev_same_stage = done[s][b - 1] if b > 0 else 0.0
            prev_stage = done[s - 1][b] if s > 0 else 0.0
            backpressure = 0.0
            if s == 0 and b >= queue_depth:
                backpressure = last[b - queue_depth]
            start = max(prev_same_stage, prev_stage, backpressure)
            done[s][b] = start + stages[s][b]
    return last[num_batches - 1]


def pipeline_makespan(stage_times: Sequence[Sequence[float]],
                      queue_depth: int = 4, kernel: str = "auto") -> float:
    """Makespan of an N-stage pipeline with a bounded prefetch queue.

    Args:
        stage_times: One sequence of per-batch durations per stage, ordered
            from the first (producer) stage to the last (consumer) stage;
            accepts a ``(num_stages, num_batches)`` array directly.
        queue_depth: How many batches the first stage may run ahead of the
            last stage (the prefetch queue size of DALI / PyTorch DL).
            Batch ``b`` of the first stage cannot *start* before batch
            ``b - queue_depth`` has left the last stage — the backpressure
            term ``done_G[b - depth]`` in the recurrence — so at most
            ``queue_depth`` batches are ever fetched-but-unconsumed.  Depth 1
            serialises fetch against consumption; a depth of ``num_batches``
            or more never throttles the producer (unbounded prefetch).
        kernel: ``"numpy"`` forces the vectorised kernel, ``"scalar"`` the
            per-batch reference loop, ``"auto"`` (default) picks by problem
            size: the numpy kernel processes ``queue_depth``-long batch
            chunks with O(1) vector operations each, so it wins when the
            stage-time matrix is large or the queue is deep, while tiny
            epochs are cheaper in the plain loop.

    Returns:
        Completion time of the last batch in the last stage.
    """
    if kernel not in ("auto", "numpy", "scalar"):
        raise ConfigurationError(f"unknown makespan kernel {kernel!r}")
    stages = _validated_stage_times(stage_times, queue_depth)
    num_stages = len(stages)
    num_batches = len(stages[0])
    if num_batches == 0:
        return 0.0
    if kernel == "scalar" or (kernel == "auto"
                              and num_stages * num_batches < _SCALAR_KERNEL_CUTOFF
                              and queue_depth < num_batches):
        return pipeline_makespan_reference(stages, queue_depth)
    return _makespan_numpy(np.asarray(stages, dtype=np.float64), queue_depth)


def _validated_stage_times(stage_times, queue_depth: int) -> list:
    """Shared validation: positive depth, ≥1 stage, rectangular matrix."""
    if queue_depth < 1:
        raise ConfigurationError("queue depth must be at least 1")
    stages = [np.asarray(s, dtype=np.float64) for s in stage_times]
    if not stages:
        raise ConfigurationError("need at least one stage")
    num_batches = len(stages[0])
    if any(len(s) != num_batches for s in stages):
        raise SimulationError("all stages must have the same number of batches")
    return stages


def _makespan_numpy(times: np.ndarray, queue_depth: int) -> float:
    """Vectorised bounded-queue makespan kernel.

    Processes batches in chunks of ``queue_depth``: the backpressure term for
    every batch of a chunk refers to last-stage completions in *earlier*
    chunks only, so within a chunk each stage's recurrence
    ``d[i] = max(d[i-1], a[i]) + t[i]`` collapses to the closed form
    ``d[i] = C[i] + max(p, running_max(a - C_excl)[i])`` (``C`` the inclusive
    chunk-local cumsum of ``t``, ``p`` the stage's completion at the chunk
    boundary) — one ``cumsum`` plus one ``maximum.accumulate`` per stage per
    chunk, with no per-batch Python work.
    """
    num_stages, num_batches = times.shape
    done_last = np.empty(num_batches, dtype=np.float64)
    boundary = np.zeros(num_stages, dtype=np.float64)  # done[s] at chunk edge
    for start in range(0, num_batches, queue_depth):
        stop = min(start + queue_depth, num_batches)
        stage_t = times[0, start:stop]
        cum = np.cumsum(stage_t)
        if start == 0:
            ahead = np.zeros(stop - start, dtype=np.float64)
        else:
            ahead = done_last[start - queue_depth:stop - queue_depth]
        running = np.maximum.accumulate(ahead - (cum - stage_t))
        done_stage = cum + np.maximum(running, boundary[0])
        boundary[0] = done_stage[-1]
        for s in range(1, num_stages):
            stage_t = times[s, start:stop]
            cum = np.cumsum(stage_t)
            running = np.maximum.accumulate(done_stage - (cum - stage_t))
            done_stage = cum + np.maximum(running, boundary[s])
            boundary[s] = done_stage[-1]
        done_last[start:stop] = done_stage
    return float(done_last[-1])


class PipelineSimulator:
    """Simulates epochs of one training job driven by a data loader.

    Args:
        model: The DNN being trained (supplies the GPU ingestion rate).
        gpu: GPU type of the server.
        queue_depth: Prefetch queue size between the data pipeline and GPU.
        fast_path: Allow the vectorised epoch collection when the loader's
            cache trajectory is analytic (identical results up to float
            round-off; disable to force the per-batch reference path, e.g.
            in equivalence tests and benchmarks).
    """

    def __init__(self, model: ModelSpec, gpu: GPUSpec, queue_depth: int = 4,
                 fast_path: bool = True) -> None:
        self._model = model
        self._gpu = gpu
        self._queue_depth = queue_depth
        self._fast_path = fast_path

    @property
    def model(self) -> ModelSpec:
        """The DNN being trained."""
        return self._model

    @property
    def gpu(self) -> GPUSpec:
        """GPU type of the server."""
        return self._gpu

    def gpu_batch_time(self, loader: DataLoader, batch_size: int) -> float:
        """GPU compute seconds for one batch of the given size."""
        rate = self._model.aggregate_gpu_rate(
            self._gpu, loader.num_gpus, gpu_prep_active=loader.uses_gpu_prep)
        return batch_size / rate

    def collect_batch_times(self, loader: DataLoader, epoch_index: int) -> BatchTimes:
        """Run the fetch path for one epoch and collect per-batch durations.

        Fetching mutates the loader's cache, so the cache state after this
        call reflects having trained the epoch (warm cache for the next one).
        Uses the loader's vectorised epoch arrays when available (same
        mutations, no per-item Python loop) and the per-batch ``fetch_batch``
        walk otherwise.
        """
        if self._fast_path:
            arrays = loader.batch_time_arrays(epoch_index)
            if arrays is not None:
                fetch_s, cached_fetch_s, prep_s, batch_sizes = arrays
                rate = self._model.aggregate_gpu_rate(
                    self._gpu, loader.num_gpus,
                    gpu_prep_active=loader.uses_gpu_prep)
                gpu_s = batch_sizes / rate
                return BatchTimes(fetch_s, cached_fetch_s, prep_s, gpu_s,
                                  batch_sizes=batch_sizes)
        fetch_s: List[float] = []
        cached_fetch_s: List[float] = []
        prep_s: List[float] = []
        gpu_s: List[float] = []
        batch_sizes: List[int] = []
        clock = 0.0
        for batch in loader.batches(epoch_index):
            result = loader.fetch_batch(batch, at_time=clock)
            fetch_s.append(result.duration_s)
            cached_fetch_s.append(loader.cached_fetch_time(batch))
            prep_s.append(loader.prep_batch_time(batch))
            gpu_s.append(self.gpu_batch_time(loader, len(batch)))
            batch_sizes.append(len(batch))
            clock += result.duration_s
        return BatchTimes(fetch_s, cached_fetch_s, prep_s, gpu_s,
                          batch_sizes=batch_sizes)

    def run_epoch(self, loader: DataLoader, epoch_index: int) -> EpochStats:
        """Simulate one epoch and return its timing/IO breakdown."""
        loader.reset_io()
        hits_before = loader.cache.stats.hits
        misses_before = loader.cache.stats.misses
        times = self.collect_batch_times(loader, epoch_index)
        samples = times.num_samples()
        if samples is None:
            samples = sum(len(b) for b in loader.batches(epoch_index))

        epoch_time = pipeline_makespan(
            [times.fetch_s, times.prep_s, times.gpu_s], self._queue_depth)
        prep_limited = pipeline_makespan(
            [times.cached_fetch_s, times.prep_s, times.gpu_s], self._queue_depth)
        gpu_time = float(np.sum(times.gpu_s))

        io = loader.io.copy()

        return EpochStats(
            epoch_time_s=epoch_time,
            gpu_time_s=gpu_time,
            prep_limited_time_s=min(prep_limited, epoch_time),
            samples=samples,
            io=io,
            cache_hits=loader.cache.stats.hits - hits_before,
            cache_misses=loader.cache.stats.misses - misses_before,
        )

    def run_epochs(self, loader: DataLoader, num_epochs: int,
                   start_epoch: int = 0) -> List[EpochStats]:
        """Simulate several consecutive epochs (cache state carries over)."""
        if num_epochs <= 0:
            raise ConfigurationError("need at least one epoch")
        return [self.run_epoch(loader, start_epoch + e) for e in range(num_epochs)]
