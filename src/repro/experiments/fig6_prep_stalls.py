"""Figure 6 — prep stalls across DNNs (8 GPUs, 3 CPU cores per GPU).

With the dataset cached and each of the eight GPUs fed by three cores plus
DALI's GPU-assisted prep, the paper measures prep stalls of 5–65 % of epoch
time depending on how compute-light the model is.  The per-model grid runs
through :class:`~repro.sim.sweep.SweepRunner` on Config-SSD-V100.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import ALL_STALL_MODELS, ModelSpec
from repro.experiments.base import ExperimentResult, SWEEP_SCALE
from repro.sim.sweep import SweepRunner
from repro.store import PersistentPool, StoreArg


def run(scale: float = SWEEP_SCALE, models: Optional[Sequence[ModelSpec]] = None,
        cores_per_gpu: int = 3, seed: int = 0,
        workers: Optional[int] = None,
        store: StoreArg = None,
        pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Reproduce the per-model prep-stall percentages of Fig. 6."""
    chosen = list(models) if models is not None else list(ALL_STALL_MODELS)
    server = config_ssd_v100()
    cores = float(min(cores_per_gpu * server.num_gpus, server.physical_cores))
    runner = SweepRunner(config_ssd_v100, scale=scale, seed=seed)
    sweep = runner.run(SweepRunner.grid(
        models=chosen, loaders=["dali-shuffle"], cache_fractions=[1.2],
        cores=[cores]), workers=workers, store=store, pool=pool)
    result = ExperimentResult(
        experiment_id="fig6",
        title="Fig. 6 — prep stall as % of epoch time (8 GPUs, 3 cores/GPU, cached)",
        columns=["model", "dataset", "prep_stall_pct", "throughput", "gpu_rate"],
        notes=["paper: DNNs spend 5-65% of epoch time on blocking prep"],
    )
    for model in chosen:
        record = sweep.one(model=model)
        epoch = record.steady
        result.add_row(
            model=model.name,
            dataset=record.dataset_name,
            prep_stall_pct=100.0 * epoch.prep_stall_fraction,
            throughput=epoch.throughput,
            gpu_rate=model.aggregate_gpu_rate(server.gpu, server.num_gpus),
        )
    return result
