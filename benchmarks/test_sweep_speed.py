"""Benchmarks: vectorised Fig. 3 sweep vs reference, the warm/thrashing
segmented-LRU kernel vs the per-item reference, parallel vs serial, the
content-addressed result store (cold vs warm), and the kernel core's
per-access cost.

The first benchmark runs the identical sweep grid (ResNet18, DALI-shuffle +
CoorDL, the six cache fractions of Fig. 3, two epochs each) twice through
:class:`~repro.sim.sweep.SweepRunner` — once with the vectorised epoch fast
path, once forced onto the per-batch ``fetch_batch`` loop — and asserts that

* every simulated epoch time agrees within 1e-9 (the fast path is a
  numerical fast path, not an approximation), and
* the vectorised sweep is at least 3x faster end to end.

The warm-regime gate does the same for the two regimes the segmented-LRU
bulk kernel closed: a warm multi-epoch Fig. 3 grid (epochs 2+ replay the
kernel) and the Fig. 9(d) dali thrashing side (the interleaved multi-job
stream over a page cache below the dataset).  Together they must run at
least 3x faster than the per-item reference — with epoch times within
1e-9, the Fig. 9(d) side byte-identical to the per-item reference, and the
kernel-on vs kernel-off snapshots byte-identical (epoch times, I/O
counters and cache stats; see ``tests/golden/``).

The parallel benchmark runs a 16-point grid serially and through the
``workers=4`` spawn pool, asserts the two results are **byte-identical**
(snapshot comparison — the pool is not allowed to change a single bit),
and that the pooled run is at least 2x faster when the machine actually
has 4 cores.

The store benchmark stands in for a warm ``report`` run: it executes
three real sweep-backed experiment modules end to end against a cold
content-addressed store, then again against the warm store, asserts the
warm pass simulated nothing (all store hits) yet produced identical
tables, and gates the warm run at >= 5x over the cold one.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from typing import Dict, List, Tuple

import numpy as np

from repro.cache.warm_kernel import WARM_KERNEL_ENV_VAR, simulate_segmented_lru
from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import ALEXNET, RESNET18
from repro.experiments import fig3_cache_sweep, fig9d_hp_search, tab7_hp_cached
from repro.experiments.base import SWEEP_SCALE
from repro.experiments.fig3_cache_sweep import DEFAULT_FRACTIONS
from repro.sim.harness import snapshot_diff
from repro.sim.sweep import SweepPoint, SweepRunner
from repro.store import SweepStore

#: Wall-clock advantage the vectorised sweep must demonstrate.  Overridable
#: so shared CI runners (noisy neighbours, throttled cores) can keep the
#: exactness gate hard while softening the timing gate.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))

#: Best-of repetitions per path (damps scheduler noise in the ratio).
REPEATS = 2

#: Wall-clock advantage the ``workers=4`` pool must demonstrate over the
#: serial run of the same grid (env-overridable like MIN_SPEEDUP; only
#: asserted on machines with at least PARALLEL_WORKERS cores).
MIN_PARALLEL_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_PARALLEL_SPEEDUP", "2.0"))

#: Pool size of the parallel-sweep benchmark.
PARALLEL_WORKERS = 4

#: Dataset scale of the parallel benchmark grid — heavy enough per point
#: that the sweep dominates worker spawn + per-worker dataset rebuild.
PARALLEL_SCALE = 1.0 / 10.0

#: Combined wall-clock advantage the segmented-LRU warm kernel must show
#: over the per-item reference across the warm Fig. 3 + thrashing Fig. 9d
#: grids (env-overridable for noisy CI runners, like MIN_SPEEDUP).
MIN_WARM_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_WARM_SPEEDUP", "3.0"))

#: Per-grid floor within the warm gate: neither regime may fall back to
#: reference-level speed even when the combined gate would still pass.
MIN_WARM_GRID_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_WARM_GRID_SPEEDUP", "1.5"))

#: Wall-clock advantage a warm (all-hits) store-backed experiment run must
#: show over the cold run that populated the store (env-overridable for
#: noisy CI runners, like the other gates).
MIN_STORE_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_STORE_SPEEDUP", "5.0"))


def _fig3_sweep(fast_path: bool) -> Tuple[float, Dict[tuple, List[float]]]:
    """Run the Fig. 3 grid; return (elapsed seconds, per-point epoch times)."""
    runner = SweepRunner(config_ssd_v100, scale=SWEEP_SCALE, seed=0,
                         fast_path=fast_path)
    points = SweepRunner.grid(models=[RESNET18],
                              loaders=["dali-shuffle", "coordl"],
                              cache_fractions=DEFAULT_FRACTIONS,
                              dataset="openimages", num_epochs=2)
    start = time.perf_counter()
    # workers=0 pins the serial executor: this benchmark isolates the
    # vectorised-vs-reference ratio, even when REPRO_SWEEP_WORKERS is set.
    sweep = runner.run(points, workers=0)
    elapsed = time.perf_counter() - start
    epoch_times = {
        (record.point.loader, record.point.cache_fraction):
            [epoch.epoch_time_s for epoch in record.run.epochs]
        for record in sweep
    }
    return elapsed, epoch_times


def test_vectorized_fig3_sweep_is_3x_faster_and_exact(benchmark, bench_report):
    slow_elapsed = float("inf")
    for _ in range(REPEATS):
        elapsed, slow_times = _fig3_sweep(fast_path=False)
        slow_elapsed = min(slow_elapsed, elapsed)

    fast_runs = [_fig3_sweep(fast_path=True) for _ in range(REPEATS - 1)]
    fast_times = benchmark.pedantic(
        lambda: _fig3_sweep(fast_path=True), rounds=1, iterations=1)[1]
    fast_elapsed = min([r[0] for r in fast_runs]
                       + [benchmark.stats.stats.min])

    assert set(fast_times) == set(slow_times)
    worst = max(abs(a - b)
                for key in slow_times
                for a, b in zip(slow_times[key], fast_times[key]))
    assert worst <= 1e-9, f"fast path diverged from reference by {worst}"

    speedup = slow_elapsed / fast_elapsed
    print(f"\nFig. 3 sweep: per-batch {slow_elapsed * 1e3:.0f} ms, "
          f"vectorized {fast_elapsed * 1e3:.0f} ms -> {speedup:.2f}x "
          f"(max epoch-time deviation {worst:.2e})")
    bench_report.record("fig3_vectorized", points=len(fast_times),
                        reference_s=slow_elapsed, fast_s=fast_elapsed)
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized sweep only {speedup:.2f}x faster (need {MIN_SPEEDUP}x)")


def _warm_fig3_points() -> List[SweepPoint]:
    """Multi-epoch Fig. 3 grid: five warm epochs follow the cold one."""
    return SweepRunner.grid(models=[RESNET18],
                            loaders=["dali-shuffle", "coordl"],
                            cache_fractions=(0.35, 0.65),
                            dataset="openimages", num_epochs=6)


def _fig9d_dali_points() -> List[SweepPoint]:
    """The Fig. 9(d) dali thrashing side: eight jobs interleaving over one
    page cache that holds 65 % of the dataset."""
    return SweepRunner.grid(models=[ALEXNET, RESNET18],
                            loaders=["hp-baseline"],
                            cache_fractions=(0.65,), num_jobs=8)


def _timed_points(points: List[SweepPoint], fast_path: bool):
    """Run one grid serially; return (elapsed s, byte-exact snapshot)."""
    runner = SweepRunner(config_ssd_v100, scale=SWEEP_SCALE, seed=0,
                         fast_path=fast_path)
    start = time.perf_counter()
    sweep = runner.run(points, workers=0)
    return time.perf_counter() - start, sweep.snapshot()


def _epoch_times(snapshot: Dict) -> List[float]:
    """Every simulated epoch/HP epoch time in a snapshot, in order."""
    times: List[float] = []
    for record in snapshot["records"]:
        for epoch in record.get("epochs", ()):
            times.append(float.fromhex(epoch["epoch_time_s"]))
        if "hp" in record:
            times.append(float.fromhex(record["hp"]["epoch_time_s"]))
    return times


def test_warm_kernel_fig3_and_fig9d_thrashing_3x_and_exact(
        benchmark, bench_report, monkeypatch):
    """The segmented-LRU warm-kernel gate (see the module docstring)."""
    grids = {"fig3_warm": _warm_fig3_points(),
             "fig9d_dali": _fig9d_dali_points()}
    reference = {name: min((_timed_points(points, fast_path=False)
                            for _ in range(REPEATS)), key=lambda r: r[0])
                 for name, points in grids.items()}

    def _kernel_runs():
        return {name: _timed_points(points, fast_path=True)
                for name, points in grids.items()}

    warm_runs = [_kernel_runs() for _ in range(REPEATS - 1)]
    warm_runs.append(benchmark.pedantic(_kernel_runs, rounds=1, iterations=1))
    fast = {name: min((run[name] for run in warm_runs), key=lambda r: r[0])
            for name in grids}

    # Exactness, tier 1 — against the fully per-item reference: epoch
    # times within 1e-9 everywhere, and the Fig. 9(d) dali side (a pure
    # reduction of the cache walk, no timeline reassociation) bit-exact.
    for name in grids:
        ref_times = _epoch_times(reference[name][1])
        fast_times = _epoch_times(fast[name][1])
        worst = max(abs(a - b) for a, b in zip(ref_times, fast_times))
        assert len(ref_times) == len(fast_times)
        assert worst <= 1e-9, (
            f"{name}: warm kernel diverged from the reference by {worst}")
    assert not snapshot_diff(reference["fig9d_dali"][1], fast["fig9d_dali"][1]), (
        "fig9d dali side is not byte-identical to the per-item reference")

    # Exactness, tier 2 — kernel on vs kernel off inside the vectorised
    # stack is byte-identical: same epoch times, I/O counters/timeline
    # digests and cache stats, for both grids.
    monkeypatch.setenv(WARM_KERNEL_ENV_VAR, "0")
    kernel_off = {name: _timed_points(points, fast_path=True)
                  for name, points in grids.items()}
    monkeypatch.delenv(WARM_KERNEL_ENV_VAR)
    for name in grids:
        diffs = snapshot_diff(kernel_off[name][1], fast[name][1])
        assert not diffs, (
            f"{name}: kernel on/off snapshots differ (first: {diffs})")

    # Speed: each regime beats the per-item reference, and combined the
    # warm/thrashing sweeps are >= MIN_WARM_SPEEDUP faster.
    for name in grids:
        grid_speedup = reference[name][0] / fast[name][0]
        bench_report.record(name, points=len(grids[name]),
                            reference_s=reference[name][0],
                            fast_s=fast[name][0],
                            kernel_off_s=round(kernel_off[name][0], 6))
        print(f"\n{name}: per-item {reference[name][0] * 1e3:.0f} ms, "
              f"warm kernel {fast[name][0] * 1e3:.0f} ms -> "
              f"{grid_speedup:.2f}x (kernel off: "
              f"{kernel_off[name][0] * 1e3:.0f} ms)")
        assert grid_speedup >= MIN_WARM_GRID_SPEEDUP, (
            f"{name} only {grid_speedup:.2f}x faster than the per-item "
            f"reference (need {MIN_WARM_GRID_SPEEDUP}x)")
    combined_ref = sum(reference[name][0] for name in grids)
    combined_fast = sum(fast[name][0] for name in grids)
    combined = combined_ref / combined_fast
    bench_report.record("warm_kernel_combined",
                        points=sum(len(p) for p in grids.values()),
                        reference_s=combined_ref, fast_s=combined_fast)
    print(f"warm kernel combined: {combined_ref * 1e3:.0f} ms -> "
          f"{combined_fast * 1e3:.0f} ms = {combined:.2f}x")
    assert combined >= MIN_WARM_SPEEDUP, (
        f"warm kernel only {combined:.2f}x faster overall "
        f"(need {MIN_WARM_SPEEDUP}x)")


def _parallel_grid():
    """A 16-point training grid (2 models x 2 loaders x 4 cache sizes)."""
    return SweepRunner.grid(models=[RESNET18, ALEXNET],
                            loaders=["dali-shuffle", "coordl"],
                            cache_fractions=(0.25, 0.5, 0.75, 1.0),
                            dataset="openimages", num_epochs=3)


def _timed_sweep(workers: int):
    """Run the parallel-benchmark grid; return (elapsed s, snapshot)."""
    runner = SweepRunner(config_ssd_v100, scale=PARALLEL_SCALE, seed=0)
    start = time.perf_counter()
    sweep = runner.run(_parallel_grid(), workers=workers)
    return time.perf_counter() - start, sweep.snapshot()


def test_parallel_sweep_is_byte_identical_and_2x_faster(benchmark, bench_report):
    serial_elapsed, serial_snapshot = _timed_sweep(workers=0)
    # Compare sweep time to sweep time: _timed_sweep measures run() alone,
    # so the pooled leg must use the same clock — the pedantic wall time
    # would also charge the (identical, ~2x-the-sweep) snapshot
    # serialisation to the pooled side only.
    parallel_elapsed, parallel_snapshot = benchmark.pedantic(
        lambda: _timed_sweep(workers=PARALLEL_WORKERS), rounds=1, iterations=1)

    # The exactness gate is unconditional: pooled results must be
    # bit-for-bit the serial ones, reassembled in input order.
    assert parallel_snapshot == serial_snapshot, (
        "workers=4 sweep diverged from the serial bytes")

    speedup = serial_elapsed / parallel_elapsed
    cores = os.cpu_count() or 1
    bench_report.record("parallel_16pt", points=len(_parallel_grid()),
                        reference_s=serial_elapsed, fast_s=parallel_elapsed,
                        workers=PARALLEL_WORKERS, cores=cores)
    print(f"\n16-point sweep: serial {serial_elapsed:.2f} s, "
          f"workers={PARALLEL_WORKERS} {parallel_elapsed:.2f} s -> "
          f"{speedup:.2f}x on {cores} cores (exact)")
    if cores < PARALLEL_WORKERS:
        print(f"(speedup gate skipped: {cores} < {PARALLEL_WORKERS} cores)")
        return
    assert speedup >= MIN_PARALLEL_SPEEDUP, (
        f"parallel sweep only {speedup:.2f}x faster "
        f"(need {MIN_PARALLEL_SPEEDUP}x on {cores} cores)")


def _report_slice(store: SweepStore) -> List[dict]:
    """A representative slice of ``report`` generation, store-backed.

    Three real experiment modules end to end — the Fig. 3 cache sweep
    (multi-epoch training points), a two-model Fig. 9(d) HP-search column
    and the Tab. 7 fully-cached HP grid — so the warm timing includes
    everything a warm report pays besides the simulations: key
    derivation, store reads, rehydration and the tidy reduction into
    experiment tables.
    """
    results = [
        fig3_cache_sweep.run(scale=SWEEP_SCALE, store=store),
        fig9d_hp_search.run(scale=SWEEP_SCALE, models=[ALEXNET, RESNET18],
                            store=store),
        tab7_hp_cached.run(scale=SWEEP_SCALE, store=store),
    ]
    return [result.to_dict() for result in results]


def test_store_warm_report_run_is_5x_and_identical(benchmark, bench_report,
                                                   tmp_path):
    """A warm store turns the experiment slice into near-pure store reads.

    Cold pass: every sweep point simulates and is written to the store.
    Warm pass: every point must be served from the store (zero
    simulations, asserted through the store counters), the resulting
    tables must be **identical** (the rehydrated records are bit-exact,
    so every derived table value matches), and the whole slice must run
    at least :data:`MIN_STORE_SPEEDUP` times faster.
    """
    directory = tmp_path / "sweep-store"

    cold_store = SweepStore(directory)
    start = time.perf_counter()
    cold_tables = _report_slice(cold_store)
    cold_elapsed = time.perf_counter() - start
    assert cold_store.hits == 0 and cold_store.puts == cold_store.misses > 0

    warm_store = SweepStore(directory)
    warm_tables = benchmark.pedantic(
        lambda: _report_slice(warm_store), rounds=1, iterations=1)
    warm_elapsed = benchmark.stats.stats.min

    assert warm_store.misses == 0, (
        f"warm report run simulated {warm_store.misses} points "
        "(expected all store hits)")
    assert warm_store.hits == cold_store.puts
    assert warm_tables == cold_tables, (
        "store-rehydrated experiment tables diverged from the cold run")

    speedup = cold_elapsed / warm_elapsed
    bench_report.record("store_warm_report", points=cold_store.puts,
                        reference_s=cold_elapsed, fast_s=warm_elapsed,
                        store_entries=warm_store.stats().entries)
    print(f"\nstore-backed report slice: cold {cold_elapsed * 1e3:.0f} ms, "
          f"warm {warm_elapsed * 1e3:.0f} ms -> {speedup:.2f}x "
          f"({cold_store.puts} points, all hits on the warm pass)")
    assert speedup >= MIN_STORE_SPEEDUP, (
        f"warm store-backed run only {speedup:.2f}x faster "
        f"(need {MIN_STORE_SPEEDUP}x)")


def test_warm_kernel_core_per_access_cost(benchmark, bench_report):
    """Track the segmented-LRU integer core's per-access cost across PRs.

    Informational (no speedup gate — absolute ns/access is machine-bound;
    the regression gate for the kernel is the warm-grid benchmark above):
    a multi-pass thrashing stream is replayed through
    :func:`simulate_segmented_lru` and the per-access wall clock lands in
    ``BENCH_sweep.json``.  Micro-opt log: converting the recency queues
    from lazily-consumed list iterators to deques with hoisted bound
    ``popleft``/``append`` methods and bulk pre-seeded initial state took
    the dev-box cost from ~298 to ~281 ns/access on this workload
    (best-of-9, interleaved A/B); ``next()``-builtin-to-``__next__``
    binding and count-based liveness measured neutral-to-negative under
    CPython 3.11's specialising interpreter and were not kept.
    """
    rng = np.random.default_rng(0)
    num_items = 4000
    page = 4096.0
    item_pages = rng.integers(20, 80, num_items)
    stream = np.concatenate([rng.permutation(num_items) for _ in range(10)])
    sizes = (item_pages * page)[stream]
    capacity = float(int(item_pages.sum() * 0.6) * page)

    def replay():
        return simulate_segmented_lru(
            stream, sizes, capacity_bytes=capacity, page_bytes=page,
            active_limit_bytes=capacity / 2, inactive=OrderedDict(),
            active=OrderedDict(), inactive_bytes=0.0, active_bytes=0.0)

    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        result = replay()
        best = min(best, time.perf_counter() - start)
    benchmark.pedantic(replay, rounds=1, iterations=1)
    best = min(best, benchmark.stats.stats.min)
    assert result is not None and result.misses > 0

    ns_per_access = best / stream.size * 1e9
    bench_report.record("warm_kernel_core", points=int(stream.size),
                        fast_s=best, ns_per_access=round(ns_per_access, 1))
    print(f"\nwarm-kernel core: {stream.size} thrashing accesses in "
          f"{best * 1e3:.2f} ms -> {ns_per_access:.1f} ns/access")
