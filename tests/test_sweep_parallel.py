"""Tests for the process-parallel sweep executor.

Covers the worker pool's determinism contract (serial ≡ ``workers=N`` at
the byte level, for any N, chunking and input ordering — hypothesis
property tests), the fast-path fallback inside worker processes, worker
error propagation, and the ``workers=`` knob plumbing (argument, env-var
default, validation).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import ALEXNET, RESNET18
from repro.exceptions import ConfigurationError, SweepPointError
from repro.sim.sweep import WORKERS_ENV_VAR, SweepPoint, SweepRunner

SCALE = 1 / 500.0


def _mixed_grid():
    """A small grid exercising all three point kinds."""
    points = SweepRunner.grid(models=[RESNET18],
                              loaders=["coordl", "dali-shuffle"],
                              cache_fractions=(0.35, 0.8),
                              dataset="openimages")
    points += SweepRunner.grid(models=[ALEXNET], loaders=["hp-coordl"],
                               cache_fractions=(0.65,), num_jobs=4)
    points += SweepRunner.grid(models=[RESNET18], loaders=["dist-coordl"],
                               cache_fractions=(0.6,), dataset="openimages",
                               num_servers=2, num_epochs=2)
    return points


def _snapshot(points, workers, **runner_kwargs):
    runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0, **runner_kwargs)
    return runner.run(points, workers=workers).snapshot()


class TestParallelExecution:
    def test_pool_matches_serial_bytes(self, monkeypatch):
        """workers=2 reproduces the serial bytes on all three point kinds.

        ``os.cpu_count`` is pinned to 2 so a real pool spawns even on a
        one-core box (where the clamp would otherwise degrade the run to
        the serial executor and the comparison would be vacuous)."""
        monkeypatch.setattr("os.cpu_count", lambda: 2)
        points = _mixed_grid()
        assert _snapshot(points, workers=2) == _snapshot(points, workers=0)

    def test_explicit_chunksize_does_not_change_results(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 2)  # force a real pool
        points = _mixed_grid()
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        chunked = runner.run(points, workers=2, chunksize=1).snapshot()
        assert chunked == _snapshot(points, workers=0)

    def test_single_point_grid_never_spawns_a_pool(self, monkeypatch):
        """One-point grids run in-process even when workers are requested."""
        def boom(method):  # pragma: no cover - would mean a pool was built
            raise AssertionError("pool spawned for a single-point grid")

        # Every pool (per-call and persistent) is built by the supervised
        # executor, so patching its context factory catches any spawn.
        import repro.resilience.supervise as supervise_module
        monkeypatch.setattr(supervise_module.multiprocessing,
                            "get_context", boom)
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        (record,) = runner.run([SweepPoint(model=RESNET18, loader="coordl",
                                           dataset="openimages",
                                           cache_fraction=0.5)],
                               workers=4).records
        assert record.steady.epoch_time_s > 0

    def test_env_var_supplies_the_default_worker_count(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        points = _mixed_grid()[:3]
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        pooled = runner.run(points).snapshot()  # workers=None -> env
        assert pooled == _snapshot(points, workers=0)

    def test_explicit_workers_beats_the_env_var(self, monkeypatch):
        """workers=0 forces serial execution even when the env var is set."""
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")

        def boom(method):  # pragma: no cover
            raise AssertionError("pool spawned despite workers=0")

        import repro.resilience.supervise as supervise_module
        monkeypatch.setattr(supervise_module.multiprocessing,
                            "get_context", boom)
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        assert len(runner.run(_mixed_grid()[:2], workers=0)) == 2

    def test_rejects_bad_worker_and_chunk_settings(self, monkeypatch):
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        point = SweepPoint(model=RESNET18, loader="coordl",
                           dataset="openimages", cache_fraction=0.5)
        with pytest.raises(ConfigurationError):
            runner.run([point], workers=-1)
        with pytest.raises(ConfigurationError):
            runner.run([point, point], workers=2, chunksize=0)
        monkeypatch.setenv(WORKERS_ENV_VAR, "two")
        with pytest.raises(ConfigurationError):
            runner.run([point])

    def test_point_seed_pairs_same_dataset_points(self):
        """Seeds derive from (runner seed, dataset) only: points walking the
        same dataset share permutations (paired loader comparisons), labels
        and configuration knobs never perturb the sampling."""
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        a = SweepPoint(model=RESNET18, loader="coordl", cache_fraction=0.5)
        b = SweepPoint(model=RESNET18, loader="dali-shuffle", cache_fraction=0.8,
                       label="same dataset, different knobs")
        c = SweepPoint(model=RESNET18, loader="coordl", dataset="imagenet-1k",
                       cache_fraction=0.5)
        assert runner.point_seed(a) == runner.point_seed(b)
        assert runner.point_seed(a) != runner.point_seed(c)
        other = SweepRunner(config_ssd_v100, scale=SCALE, seed=11)
        assert runner.point_seed(a) != other.point_seed(a)


class TestWorkerFallback:
    """Fast-path fallback must behave identically inside a worker process."""

    def _fallback_points(self):
        # A half-size page cache goes warm after the first epoch, at which
        # point DALI-shuffle's loader declines the vectorised epoch arrays
        # and the engine falls back to the per-batch fetch walk — here,
        # inside the child process.
        return [SweepPoint(model=RESNET18, loader="dali-shuffle",
                           dataset="openimages", cache_fraction=0.5,
                           num_epochs=3)]

    def test_fallback_in_child_matches_serial_bytes(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 2)  # force a real pool
        points = self._fallback_points()
        # A one-point grid runs in-process by design, so pad with a second
        # point to keep the fallback inside an actual worker process.
        points = points + [SweepPoint(model=RESNET18, loader="coordl",
                                      dataset="openimages",
                                      cache_fraction=0.5)]
        assert _snapshot(points, workers=2) == _snapshot(points, workers=0)

    def test_fallback_in_child_does_not_corrupt_io_accounting(
            self, monkeypatch):
        """Pooled fast-path I/O totals equal the per-batch reference walk.

        Catches double-counted or dropped aggregated I/O stats when a point
        declines the vectorised path mid-run in a worker.
        """
        monkeypatch.setattr("os.cpu_count", lambda: 2)  # force a real pool
        points = self._fallback_points()
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        (pooled,) = runner.run(points, workers=2).records
        reference_runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0,
                                       fast_path=False)
        (reference,) = reference_runner.run(points, workers=0).records
        for fast_epoch, slow_epoch in zip(pooled.run.epochs,
                                          reference.run.epochs):
            assert fast_epoch.io.disk_requests == slow_epoch.io.disk_requests
            assert fast_epoch.io.cache_requests == slow_epoch.io.cache_requests
            assert fast_epoch.cache_hits == slow_epoch.cache_hits
            assert fast_epoch.cache_misses == slow_epoch.cache_misses
            assert fast_epoch.io.disk_bytes == pytest.approx(
                slow_epoch.io.disk_bytes, rel=1e-12)
            assert fast_epoch.samples == slow_epoch.samples


class TestWorkerClamp:
    """Requested worker counts clamp to the machine's core count.

    Oversubscribing a small machine only adds spawn cost and contention
    (the 1-core CI box measured a 0.4x parallel 'speedup' before the
    clamp), so both executors cap ``workers`` at ``os.cpu_count()``.
    """

    def test_resolve_workers_clamps_to_one_core(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        assert runner._resolve_workers(8) == 1
        assert runner._resolve_workers(1) == 1

    def test_serial_stays_serial_under_clamp(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        assert runner._resolve_workers(0) == 0

    def test_clamp_respects_larger_machines(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 16)
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        assert runner._resolve_workers(8) == 8
        assert runner._resolve_workers(32) == 16

    def test_persistent_pool_clamps_to_one_core(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        from repro.store import PersistentPool
        pool = PersistentPool(8)
        assert pool.workers == 1

    def test_env_var_workers_are_clamped_too(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        monkeypatch.setenv(WORKERS_ENV_VAR, "8")
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        assert runner._resolve_workers(None) == 1

    def test_workers_one_degrades_to_serial(self, monkeypatch):
        """A one-worker 'pool' never spawns: workers<=1 (requested or
        clamped) dispatches to the serial executor, skipping the per-run
        process spawn cost that buys zero parallelism."""
        def boom(method):  # pragma: no cover - would mean a pool was built
            raise AssertionError("pool spawned for workers<=1")

        import repro.resilience.supervise as supervise_module
        monkeypatch.setattr(supervise_module.multiprocessing,
                            "get_context", boom)
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        points = _mixed_grid()[:2]
        assert len(runner.run(points, workers=1)) == 2
        # A clamped request degrades the same way.
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        assert len(runner.run(points, workers=8)) == 2


class TestWorkerErrorPropagation:
    """A failing point surfaces its label and the original exception."""

    def _failing_grid(self):
        # Valid as a point spec, but HPSearchScenario rejects 64 jobs on an
        # 8-GPU server when the point is actually simulated.
        good = SweepPoint(model=RESNET18, loader="coordl",
                          dataset="openimages", cache_fraction=0.5)
        bad = SweepPoint(model=ALEXNET, loader="hp-baseline", num_jobs=64,
                         label="overcommitted-hp-point")
        return [good, bad]

    def test_child_failure_carries_label_and_original_exception(
            self, monkeypatch):
        # Pin the core count so workers=2 survives the clamp: on a one-core
        # box the run would degrade to the serial executor, which records no
        # child traceback (covered by the serial test below).
        monkeypatch.setattr("os.cpu_count", lambda: 2)
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        with pytest.raises(SweepPointError) as excinfo:
            # store=False pins the pool path: with an ambient result store
            # (the CI store leg) the good point would be a hit, leaving a
            # single miss that runs in-process instead of in a worker.
            runner.run(self._failing_grid(), workers=2, store=False)
        error = excinfo.value
        assert "overcommitted-hp-point" in str(error)
        assert error.point_label == "overcommitted-hp-point"
        assert isinstance(error.__cause__, ConfigurationError)
        assert "exceed" in str(error.__cause__)
        # The child traceback is preserved for debugging, not lost to a
        # bare multiprocessing RemoteTraceback.
        assert error.child_traceback is not None
        assert "ConfigurationError" in error.child_traceback

    def test_serial_failure_is_labelled_the_same_way(self):
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        with pytest.raises(SweepPointError) as excinfo:
            runner.run(self._failing_grid(), workers=0)
        error = excinfo.value
        assert "overcommitted-hp-point" in str(error)
        assert isinstance(error.__cause__, ConfigurationError)
        assert error.child_traceback is None

    def test_unlabelled_points_get_a_synthesised_description(self):
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        bad = SweepPoint(model=ALEXNET, loader="hp-baseline", num_jobs=64)
        with pytest.raises(SweepPointError) as excinfo:
            runner.run([bad, bad], workers=2)
        assert "alexnet/hp-baseline" in str(excinfo.value)

    def test_multiple_failures_report_the_first_in_input_order(
            self, monkeypatch):
        """The raised point does not depend on pool scheduling order."""
        monkeypatch.setattr("os.cpu_count", lambda: 2)  # force a real pool
        runner = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
        first = SweepPoint(model=ALEXNET, loader="hp-baseline", num_jobs=64,
                           label="first-bad")
        second = SweepPoint(model=ALEXNET, loader="hp-coordl", num_jobs=64,
                            label="second-bad")
        with pytest.raises(SweepPointError) as excinfo:
            runner.run([first, second], workers=2)
        assert excinfo.value.point_label == "first-bad"


# -- property tests ----------------------------------------------------------

def _make_point(model, loader, fraction):
    if loader in ("hp-baseline", "hp-coordl"):
        return SweepPoint(model=model, loader=loader, dataset="openimages",
                          cache_fraction=fraction, num_jobs=4)
    if loader in ("dist-baseline", "dist-coordl"):
        return SweepPoint(model=model, loader=loader, dataset="openimages",
                          cache_fraction=fraction, num_servers=2, num_epochs=2)
    return SweepPoint(model=model, loader=loader, dataset="openimages",
                      cache_fraction=fraction, num_epochs=2)


_POINTS = st.lists(
    st.builds(_make_point,
              model=st.sampled_from([RESNET18, ALEXNET]),
              loader=st.sampled_from(["coordl", "dali-shuffle", "pytorch",
                                      "hp-coordl", "dist-coordl"]),
              fraction=st.sampled_from([0.3, 0.5, 0.8, 1.1])),
    min_size=1, max_size=4)


@st.composite
def _grid_and_permutation(draw):
    points = draw(_POINTS)
    permuted = draw(st.permutations(points))
    return points, permuted


def _record_map(snapshot):
    """point-config -> record bytes, for order-independent comparison."""
    return {json.dumps(r["point"], sort_keys=True): json.dumps(r, sort_keys=True)
            for r in snapshot["records"]}


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(grid=_grid_and_permutation(), seed=st.integers(min_value=0, max_value=3))
def test_results_are_invariant_to_point_ordering(grid, seed):
    """Permuting the input grid permutes — never changes — the records."""
    points, permuted = grid
    base = SweepRunner(config_ssd_v100, scale=SCALE, seed=seed)
    base_map = _record_map(base.run(points, workers=0).snapshot())
    other = SweepRunner(config_ssd_v100, scale=SCALE, seed=seed)
    permuted_snapshot = other.run(permuted, workers=0).snapshot()
    # Records come back in input order...
    for point, record in zip(permuted, permuted_snapshot["records"]):
        assert record["point"]["model"] == point.model.name
        assert record["point"]["loader"] == point.loader
    # ...and each point's result is byte-identical to its unpermuted run.
    assert _record_map(permuted_snapshot) == base_map


@settings(max_examples=3, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(grid=_grid_and_permutation(), workers=st.integers(min_value=1, max_value=3))
def test_results_are_invariant_to_worker_count(grid, workers):
    """Pooled runs of a permuted grid reproduce the serial bytes per point."""
    points, permuted = grid
    serial = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
    serial_map = _record_map(serial.run(points, workers=0).snapshot())
    pooled = SweepRunner(config_ssd_v100, scale=SCALE, seed=0)
    pooled_map = _record_map(pooled.run(permuted, workers=workers).snapshot())
    assert pooled_map == serial_map
