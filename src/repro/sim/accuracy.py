"""Accuracy-versus-epoch model for time-to-accuracy experiments (Fig. 10).

CoorDL does not change what the learning algorithm sees — sampling and random
augmentation are unmodified — so the accuracy-vs-*epoch* curve is identical
for the baseline and CoorDL; only the wall-clock time per epoch differs
(Sec. 5.4).  We therefore model accuracy as a deterministic saturating
function of the epoch index, calibrated so ResNet50 on ImageNet-1K reaches
the paper's 75.9 % top-1 target in the usual ~90 epochs, and obtain
time-to-accuracy by combining the curve with the simulated epoch duration of
each data-loading configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class AccuracyCurve:
    """Saturating accuracy-vs-epoch curve: ``acc(e) = a_max (1 - exp(-e/tau))``.

    Attributes:
        max_accuracy: Asymptotic top-1 accuracy of the model/dataset pair.
        tau_epochs: Time constant of the learning curve, in epochs.
        warmup_epochs: Epochs of LR warm-up during which accuracy stays near
            zero (matches the large-minibatch warm-up schedules the paper uses).
    """

    max_accuracy: float = 0.775
    tau_epochs: float = 28.0
    warmup_epochs: float = 3.0

    def __post_init__(self) -> None:
        if not 0 < self.max_accuracy <= 1:
            raise ConfigurationError("max accuracy must be in (0, 1]")
        if self.tau_epochs <= 0:
            raise ConfigurationError("tau must be positive")

    def accuracy_at_epoch(self, epoch: float) -> float:
        """Top-1 accuracy after ``epoch`` epochs of training."""
        effective = max(0.0, epoch - self.warmup_epochs)
        return self.max_accuracy * (1.0 - math.exp(-effective / self.tau_epochs))

    def epochs_to_accuracy(self, target: float) -> float:
        """Epochs needed to reach a target accuracy.

        Raises:
            ConfigurationError: if the target exceeds the asymptotic accuracy.
        """
        if target >= self.max_accuracy:
            raise ConfigurationError(
                f"target {target} is unreachable (max {self.max_accuracy})")
        if target <= 0:
            return 0.0
        return self.warmup_epochs - self.tau_epochs * math.log(1.0 - target / self.max_accuracy)


def resnet50_imagenet_curve() -> AccuracyCurve:
    """Curve calibrated to reach 75.9 % top-1 in roughly 90 epochs."""
    return AccuracyCurve(max_accuracy=0.775, tau_epochs=22.5, warmup_epochs=5.0)


@dataclass
class TimeToAccuracyResult:
    """Wall-clock accuracy trajectory of one data-loading configuration."""

    loader_name: str
    epoch_time_s: float
    target_accuracy: float
    epochs_needed: float
    trajectory: List[Tuple[float, float]]

    @property
    def time_to_accuracy_s(self) -> float:
        """Wall-clock seconds to reach the target accuracy."""
        return self.epochs_needed * self.epoch_time_s


def time_to_accuracy(loader_name: str, epoch_time_s: float,
                     curve: AccuracyCurve, target_accuracy: float,
                     sample_epochs: int | None = None) -> TimeToAccuracyResult:
    """Combine an epoch-time measurement with the accuracy curve.

    Args:
        loader_name: Label for the configuration ("dali", "coordl").
        epoch_time_s: Simulated steady-state epoch duration.
        curve: Accuracy-vs-epoch model (identical across configurations).
        target_accuracy: Accuracy defining "time to accuracy".
        sample_epochs: Number of (time, accuracy) samples to include in the
            trajectory (defaults to the epochs needed, rounded up).
    """
    epochs_needed = curve.epochs_to_accuracy(target_accuracy)
    horizon = sample_epochs if sample_epochs is not None else int(math.ceil(epochs_needed))
    trajectory = [
        (epoch * epoch_time_s, curve.accuracy_at_epoch(epoch))
        for epoch in range(horizon + 1)
    ]
    return TimeToAccuracyResult(
        loader_name=loader_name,
        epoch_time_s=epoch_time_s,
        target_accuracy=target_accuracy,
        epochs_needed=epochs_needed,
        trajectory=trajectory,
    )
