"""Wire protocol of the what-if sweep service.

Everything the serve daemon (:mod:`repro.serve.server`) and client
(:mod:`repro.serve.client`) exchange is JSON, and every payload shape is
defined here so the two sides (and the tests) cannot drift:

* a **runner spec** names the :class:`~repro.sim.sweep.SweepRunner`
  configuration a query runs under — the server factory by registry name
  or ``module:qualname`` token, plus scale / seed / queue depth /
  fast-path (:func:`runner_to_wire` / :func:`runner_from_wire`);
* a **point** is one :class:`~repro.sim.sweep.SweepPoint` with the model
  by zoo name (:func:`point_to_wire` / :func:`point_from_wire`) — the
  same rendering :meth:`~repro.sim.sweep.SweepRecord.snapshot` uses.
  Schedule-valued fields of the failure kinds (``crash_schedule``,
  ``membership_schedule``, ``straggler_factors``) arrive as JSON arrays;
  ``SweepPoint.__post_init__`` normalises them back to the canonical
  sorted tuples, so wire points and native points hash/compare equal;
* a **result record** travels as the fully-invertible snapshot form
  (:meth:`~repro.sim.sweep.SweepRecord.snapshot` with embedded
  timelines), so a client rehydrates byte-identical records with
  :meth:`~repro.sim.sweep.SweepRecord.from_snapshot` — the golden
  round-trip gate (``tools/store_check.py --serve``) pins exactly that.

Factory resolution is deliberately narrow: a request may only name
factories inside :data:`ALLOWED_FACTORY_MODULES` (the server-SKU catalog),
because the token is resolved by import + ``getattr`` and *called* —
accepting arbitrary ``module:qualname`` tokens from the network would be
remote code execution by configuration.
"""

from __future__ import annotations

import importlib
from dataclasses import fields
from typing import Any, Callable, Dict, List

from repro.cluster.server import ServerConfig
from repro.compute.model_zoo import get_model
from repro.exceptions import ConfigurationError
from repro.sim.sweep import SweepPoint, SweepRecord, SweepRunner

#: Modules a wire runner spec may resolve its server factory from.  The
#: cluster-config catalog is the only SKU source today; extend the tuple if
#: factories ever live elsewhere (never accept arbitrary modules).
ALLOWED_FACTORY_MODULES = ("repro.cluster.configs",)

#: Version tag carried in every response envelope, bumped on breaking
#: protocol changes so a stale client fails loudly instead of misparsing.
PROTOCOL_VERSION = 1

#: Header carried by 503 responses (admission rejection, draining): how
#: many seconds the client should wait before retrying.  The client's
#: retry loop honours it, capped by its own backoff ceiling.
RETRY_AFTER_HEADER = "Retry-After"

#: Statuses a 503 response's ``reason`` field may carry: the daemon is
#: either over its in-flight admission limit or draining towards close.
BUSY_REASONS = ("over_capacity", "draining")


def runner_to_wire(runner: SweepRunner) -> Dict[str, Any]:
    """Wire form of one runner configuration.

    The factory travels as the same ``module:qualname`` token the result
    store keys on (:meth:`~repro.sim.sweep.SweepRunner._factory_identity`),
    so a runner that cannot be soundly named cannot be queried remotely
    either — the same closures/lambdas the store rejects.
    """
    factory_token = runner._factory_identity()
    server_factory, scale, seed, queue_depth, fast_path = runner.spec()
    return {
        "server_factory": factory_token,
        "scale": float(scale),
        "seed": int(seed),
        "queue_depth": int(queue_depth),
        "fast_path": bool(fast_path),
    }


def _resolve_factory(token: str) -> Callable[..., ServerConfig]:
    """Resolve a ``module:qualname`` factory token, whitelist-checked."""
    module_name, _, qualname = token.partition(":")
    if not qualname or module_name not in ALLOWED_FACTORY_MODULES:
        raise ConfigurationError(
            f"server factory {token!r} is not servable; expected "
            f"'<module>:<name>' with module in {ALLOWED_FACTORY_MODULES}")
    module = importlib.import_module(module_name)
    factory = module
    for part in qualname.split("."):
        factory = getattr(factory, part, None)
    if not callable(factory):
        raise ConfigurationError(
            f"server factory {token!r} does not resolve to a callable")
    return factory


def runner_from_wire(data: Dict[str, Any]) -> SweepRunner:
    """Build the runner a wire spec describes (inverse of
    :func:`runner_to_wire`)."""
    if not isinstance(data, dict):
        raise ConfigurationError("runner spec must be a JSON object")
    try:
        factory = _resolve_factory(str(data["server_factory"]))
        return SweepRunner(factory,
                           scale=float(data.get("scale", 1.0)),
                           seed=int(data.get("seed", 0)),
                           queue_depth=int(data.get("queue_depth", 4)),
                           fast_path=bool(data.get("fast_path", True)))
    except KeyError as exc:
        raise ConfigurationError(f"runner spec is missing {exc}") from None


def point_to_wire(point: SweepPoint) -> Dict[str, Any]:
    """Wire form of one sweep point (model by zoo name, like snapshots)."""
    return {f.name: (point.model.name if f.name == "model"
                     else getattr(point, f.name))
            for f in fields(SweepPoint)}


def point_from_wire(data: Dict[str, Any]) -> SweepPoint:
    """Build the point a wire dict describes (inverse of
    :func:`point_to_wire`; unknown fields are rejected, and
    :class:`~repro.sim.sweep.SweepPoint` validation applies as usual)."""
    if not isinstance(data, dict):
        raise ConfigurationError("each point must be a JSON object")
    values = dict(data)
    try:
        model = get_model(str(values.pop("model")))
    except KeyError:
        raise ConfigurationError("each point needs a 'model' name") from None
    known = {f.name for f in fields(SweepPoint)}
    unknown = set(values) - known
    if unknown:
        raise ConfigurationError(
            f"unknown point fields {sorted(unknown)}; known: {sorted(known)}")
    return SweepPoint(model=model, **values)


def points_from_wire(data: Any) -> List[SweepPoint]:
    """Decode a request's point list (must be a non-empty JSON array)."""
    if not isinstance(data, list) or not data:
        raise ConfigurationError("'points' must be a non-empty JSON array")
    return [point_from_wire(item) for item in data]


def record_to_wire(record: SweepRecord) -> Dict[str, Any]:
    """Wire form of one result record: the fully-invertible snapshot."""
    return record.snapshot(include_timeline=True)


def record_from_wire(data: Dict[str, Any]) -> SweepRecord:
    """Rehydrate a served record, bit-for-bit (see
    :meth:`~repro.sim.sweep.SweepRecord.from_snapshot`)."""
    return SweepRecord.from_snapshot(data)
