"""Tests for the content-addressed sweep result store (``repro.store``).

Four contracts:

* **key derivation** — every input that can move a simulated bit moves the
  key (runner spec, point spec incl. label, the warm-kernel kill-switch,
  the schema version), and proven-bit-neutral knobs (worker count) do not;
* **exact rehydration** — ``SweepRecord.from_snapshot`` inverts
  ``snapshot(include_timeline=True)`` bit for bit for all three record
  kinds, pinned against the committed golden grids at workers=0/1/4 with
  the warm pass fenced off from simulating anything;
* **corruption degrades to misses** — truncated/garbage/mis-keyed/
  wrong-point entries are re-simulated and repaired, never served;
* **management** — stats/gc/invalidate and the ``store=`` argument
  resolution (explicit > environment default > ``False`` opt-out).
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cache.warm_kernel import WARM_KERNEL_ENV_VAR
from repro.cluster.configs import config_hdd_1080ti, config_ssd_v100
from repro.compute.model_zoo import ALEXNET, RESNET18
from repro.exceptions import ConfigurationError, SweepPointError
from repro.sim.harness import GOLDEN_GRIDS, load_golden, snapshot_diff
from repro.sim.sweep import WORKERS_ENV_VAR, SweepPoint, SweepRecord, SweepRunner
from repro.store import (
    STORE_ENV_VAR,
    SweepStore,
    resolve_store,
    store_key,
)

SCALE = 1 / 500.0

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"


def _runner(**overrides) -> SweepRunner:
    settings = dict(scale=SCALE, seed=0)
    settings.update(overrides)
    return SweepRunner(settings.pop("server_factory", config_ssd_v100),
                       **settings)


def _points():
    return [
        SweepPoint(model=RESNET18, loader="coordl", dataset="openimages",
                   cache_fraction=0.5),
        SweepPoint(model=RESNET18, loader="dali-shuffle", dataset="openimages",
                   cache_fraction=0.5),
    ]


class TestKeyDerivation:
    def test_key_is_stable_across_runner_instances(self):
        point = _points()[0]
        assert (_runner().point_spec(point) == _runner().point_spec(point))
        assert (store_key(_runner().point_spec(point))
                == store_key(_runner().point_spec(point)))

    @pytest.mark.parametrize("override", [
        dict(seed=1), dict(scale=SCALE / 2), dict(queue_depth=8),
        dict(fast_path=False), dict(server_factory=config_hdd_1080ti),
    ])
    def test_runner_spec_participates(self, override):
        point = _points()[0]
        assert (store_key(_runner().point_spec(point))
                != store_key(_runner(**override).point_spec(point)))

    def test_point_fields_participate_including_label(self):
        runner = _runner()
        base = SweepPoint(model=RESNET18, loader="coordl",
                          dataset="openimages", cache_fraction=0.5)
        variants = [
            SweepPoint(model=ALEXNET, loader="coordl", dataset="openimages",
                       cache_fraction=0.5),
            SweepPoint(model=RESNET18, loader="dali-shuffle",
                       dataset="openimages", cache_fraction=0.5),
            SweepPoint(model=RESNET18, loader="coordl", dataset="openimages",
                       cache_fraction=0.25),
            SweepPoint(model=RESNET18, loader="coordl", dataset="openimages",
                       cache_fraction=0.5, num_epochs=3),
            # label is part of the byte-exact snapshot, so it must key too
            SweepPoint(model=RESNET18, loader="coordl", dataset="openimages",
                       cache_fraction=0.5, label="tagged"),
        ]
        keys = {store_key(runner.point_spec(p)) for p in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_warm_kernel_kill_switch_changes_the_key(self, monkeypatch):
        """REPRO_WARM_KERNEL=0 must produce a different key: a store must
        never answer one configuration with bytes computed under another,
        even when the two are proven byte-identical."""
        runner, point = _runner(), _points()[0]
        monkeypatch.delenv(WARM_KERNEL_ENV_VAR, raising=False)
        enabled = store_key(runner.point_spec(point))
        monkeypatch.setenv(WARM_KERNEL_ENV_VAR, "0")
        disabled = store_key(runner.point_spec(point))
        assert enabled != disabled

    def test_worker_count_does_not_change_the_key(self, monkeypatch):
        """Serial and pooled runs are byte-identical, so they share entries."""
        runner, point = _runner(), _points()[0]
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        serial = store_key(runner.point_spec(point))
        monkeypatch.setenv(WORKERS_ENV_VAR, "4")
        pooled = store_key(runner.point_spec(point))
        assert serial == pooled

    def test_schema_version_participates(self, monkeypatch):
        import repro.store.store as store_module
        runner, point = _runner(), _points()[0]
        current = store_key(runner.point_spec(point))
        monkeypatch.setattr(store_module, "STORE_SCHEMA_VERSION", 999)
        assert store_module.store_key(runner.point_spec(point)) != current

    def test_custom_model_reusing_a_zoo_name_keys_differently(self):
        """The address covers every ModelSpec field, not just the name: a
        custom spec named like a zoo model must never share an entry with
        it (nor be *served* one — the point guard backstops below)."""
        from dataclasses import replace
        runner = _runner()
        impostor = replace(RESNET18, gpu_rate_v100=3200.0)
        zoo_point = SweepPoint(model=RESNET18, loader="coordl",
                               dataset="openimages", cache_fraction=0.5)
        impostor_point = SweepPoint(model=impostor, loader="coordl",
                                    dataset="openimages", cache_fraction=0.5)
        assert (store_key(runner.point_spec(zoo_point))
                != store_key(runner.point_spec(impostor_point)))

    def test_custom_model_sweeps_are_correct_but_never_served_hits(
            self, tmp_path):
        """Records of a custom zoo-named model rehydrate to the zoo spec,
        so the point guard rejects them: re-simulated every time, never
        wrong."""
        from dataclasses import replace
        impostor = replace(RESNET18, gpu_rate_v100=3200.0)
        point = SweepPoint(model=impostor, loader="coordl",
                           dataset="openimages", cache_fraction=0.5)
        store = SweepStore(tmp_path / "store")
        first = _runner().run([point], store=store).snapshot()
        second_store = SweepStore(tmp_path / "store")
        second = _runner().run([point], store=second_store).snapshot()
        assert second_store.hits == 0 and second_store.invalid == 1
        assert second == first  # re-simulated, deterministic

    def test_unresolvable_server_factory_is_rejected_for_store_use(
            self, tmp_path):
        """Closures/lambdas share qualified names, so naming them would be
        an unsound content address: store-backed runs reject them loudly
        (store-less runs still work)."""
        factory = lambda **kw: config_ssd_v100(**kw)  # noqa: E731
        runner = SweepRunner(factory, scale=SCALE, seed=0)
        point = _points()[0]
        assert len(runner.run([point], store=False)) == 1
        with pytest.raises(ConfigurationError, match="module-level"):
            runner.run([point], store=SweepStore(tmp_path / "store"))

    def test_ambient_store_bypasses_unkeyable_factories(self, tmp_path,
                                                        monkeypatch):
        """An ambient REPRO_SWEEP_STORE must not break runners the store
        cannot key: closure factories simulated fine before the store
        existed, so they silently skip it (only an *explicit* store=
        request fails loudly — previous test)."""
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "ambient"))
        factory = lambda **kw: config_ssd_v100(**kw)  # noqa: E731
        runner = SweepRunner(factory, scale=SCALE, seed=0)
        sweep = runner.run([_points()[0]])
        assert len(sweep) == 1
        assert not (tmp_path / "ambient").exists() or (
            SweepStore(tmp_path / "ambient").stats().entries == 0)


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("point", [
        SweepPoint(model=RESNET18, loader="coordl", dataset="openimages",
                   cache_fraction=0.5, num_epochs=3),
        SweepPoint(model=ALEXNET, loader="hp-baseline",
                   dataset="imagenet-1k", cache_fraction=1.2, num_jobs=4),
        SweepPoint(model=RESNET18, loader="dist-coordl", dataset="openimages",
                   cache_fraction=0.6, num_servers=2),
    ], ids=["training", "hp-search", "distributed"])
    def test_from_snapshot_is_exact_for_every_record_kind(self, point):
        record = _runner().run([point]).records[0]
        rehydrated = SweepRecord.from_snapshot(
            record.snapshot(include_timeline=True))
        assert rehydrated.snapshot() == record.snapshot()
        assert (rehydrated.snapshot(include_timeline=True)
                == record.snapshot(include_timeline=True))
        assert rehydrated.point == record.point

    def test_digest_only_snapshot_with_timeline_cannot_be_inverted(self):
        point = SweepPoint(model=RESNET18, loader="dali-shuffle",
                           dataset="openimages", cache_fraction=0.5)
        record = _runner().run([point]).records[0]
        assert any(len(e.io.timeline) for e in record.run.epochs)
        with pytest.raises(ConfigurationError):
            SweepRecord.from_snapshot(record.snapshot())


class TestHitMissFlow:
    def test_cold_then_warm_is_byte_identical_with_zero_simulations(
            self, tmp_path):
        store = SweepStore(tmp_path / "store")
        cold = _runner().run(_points(), store=store).snapshot()
        assert store.hits == 0 and store.misses == 2 and store.puts == 2

        warm_store = SweepStore(tmp_path / "store")
        simulated = []
        original = SweepRunner._run_point
        SweepRunner._run_point = lambda self, p: simulated.append(p) or original(self, p)
        try:
            warm = _runner().run(_points(), store=warm_store).snapshot()
        finally:
            SweepRunner._run_point = original
        assert not simulated
        assert warm_store.hits == 2 and warm_store.misses == 0
        assert warm == cold

    def test_environment_variable_supplies_the_default_store(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "env-store"))
        _runner().run(_points())
        assert SweepStore(tmp_path / "env-store").stats().entries == 2

    def test_store_false_disables_the_environment_default(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "env-store"))
        _runner().run(_points(), store=False)
        assert not (tmp_path / "env-store").exists() or (
            SweepStore(tmp_path / "env-store").stats().entries == 0)

    def test_store_accepts_a_directory_path(self, tmp_path, monkeypatch):
        directory = tmp_path / "by-path"
        _runner().run(_points(), store=str(directory))
        monkeypatch.setattr(
            SweepRunner, "_run_point",
            lambda self, p: (_ for _ in ()).throw(
                AssertionError("warm run simulated a point")))
        warm = _runner().run(_points(), store=str(directory))
        assert len(warm) == 2

    def test_failed_points_are_never_stored(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        bad = SweepPoint(model=ALEXNET, loader="hp-baseline", num_jobs=64,
                         label="overcommitted-hp-point")
        with pytest.raises(SweepPointError):
            _runner().run([bad], store=store)
        assert store.stats().entries == 0

    @pytest.mark.parametrize("workers", [0, 2])
    def test_points_finished_before_a_failure_are_kept(self, tmp_path,
                                                       workers):
        """Records commit as they complete, so a failing grid is resumable:
        the retry pays only for the points the first attempt never ran."""
        store = SweepStore(tmp_path / "store")
        good = _points()
        bad = SweepPoint(model=ALEXNET, loader="hp-baseline", num_jobs=64,
                         label="overcommitted-hp-point")
        with pytest.raises(SweepPointError):
            _runner().run(good + [bad], workers=workers, store=store)
        assert store.stats().entries == len(good)

        retry_store = SweepStore(tmp_path / "store")
        retry = _runner().run(good, workers=workers, store=retry_store)
        assert retry_store.hits == len(good) and retry_store.misses == 0
        assert len(retry) == len(good)

    def test_mixed_hits_and_misses_reassemble_in_input_order(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        points = _points()
        _runner().run([points[0]], store=store)  # prime one of two points
        warm_store = SweepStore(tmp_path / "store")
        sweep = _runner().run(points, store=warm_store)
        assert warm_store.hits == 1 and warm_store.misses == 1
        assert [r.point for r in sweep] == points


class TestCorruptionAndInvalidation:
    def _primed(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        runner = _runner()
        keys = [store.key_for(runner, p) for p in _points()]
        runner.run(_points(), store=store)
        return store, keys

    @pytest.mark.parametrize("corruption", [
        lambda path: path.write_text(path.read_text()[: path.stat().st_size // 2]),
        lambda path: path.write_text("not json at all {"),
        lambda path: path.write_bytes(b"\x00\xff\x00\xff"),
        lambda path: path.write_text("{}"),
    ], ids=["truncated", "garbage-json", "binary-garbage", "empty-object"])
    def test_corrupt_entries_are_misses_and_get_repaired(
            self, tmp_path, corruption):
        store, keys = self._primed(tmp_path)
        intact = store.entry_path(keys[0]).read_text(encoding="utf-8")
        corruption(store.entry_path(keys[0]))

        fresh = SweepStore(store.directory)
        assert fresh.get(keys[0], _points()[0]) is None
        assert fresh.invalid == 1 and fresh.misses == 1

        # A store-backed run re-simulates the corrupted point only, and the
        # rewrite restores the byte-exact entry.
        repair = SweepStore(store.directory)
        _runner().run(_points(), store=repair)
        assert repair.misses == 1 and repair.hits == 1 and repair.puts == 1
        assert (store.entry_path(keys[0]).read_text(encoding="utf-8")
                == intact)

    def test_entry_under_the_wrong_key_is_a_miss(self, tmp_path):
        store, keys = self._primed(tmp_path)
        # Swap the two entries on disk: both carry a key/point that does
        # not match the address they sit at.
        a, b = (store.entry_path(k) for k in keys)
        a_text, b_text = a.read_text(), b.read_text()
        a.write_text(b_text)
        b.write_text(a_text)
        fresh = SweepStore(store.directory)
        assert fresh.get(keys[0], _points()[0]) is None
        assert fresh.get(keys[1], _points()[1]) is None
        assert fresh.invalid == 2

    def test_point_mismatch_is_a_miss_even_with_a_valid_entry(self, tmp_path):
        store, keys = self._primed(tmp_path)
        entry = json.loads(store.entry_path(keys[0]).read_text())
        other = SweepStore(store.directory)
        # Force the stored bytes under a different point's key.
        entry["key"] = keys[1]
        store.entry_path(keys[1]).write_text(json.dumps(entry))
        assert other.get(keys[1], _points()[1]) is None
        assert other.invalid == 1

    def test_stats_gc_and_invalidate(self, tmp_path):
        store, keys = self._primed(tmp_path)
        stats = store.stats()
        assert stats.entries == 2 and stats.total_bytes > 0
        assert stats.puts == 2 and stats.misses == 2

        assert store.gc() == 0  # no budgets: no-op
        assert store.gc(max_entries=1) == 1
        assert store.stats().entries == 1
        assert store.gc(max_bytes=0) == 1
        assert store.stats().entries == 0

        self._primed(tmp_path)
        assert store.invalidate(prefix="no-such-prefix") == 0
        assert store.invalidate() == 2
        assert store.stats().entries == 0

    def test_gc_rejects_negative_budgets(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        with pytest.raises(ConfigurationError):
            store.gc(max_entries=-1)
        with pytest.raises(ConfigurationError):
            store.gc(max_bytes=-1)


class TestResolveStore:
    def test_none_without_environment_is_no_store(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        assert resolve_store(None) is None

    def test_none_with_environment_opens_it(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "ambient"))
        store = resolve_store(None)
        assert isinstance(store, SweepStore)
        assert store.directory == tmp_path / "ambient"

    def test_false_always_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "ambient"))
        assert resolve_store(False) is None

    def test_instances_and_paths_pass_through(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        assert resolve_store(store) is store
        assert resolve_store(str(tmp_path / "other")).directory == (
            tmp_path / "other")
        assert resolve_store(tmp_path / "third").directory == (
            tmp_path / "third")

    def test_everything_else_is_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_store(42)


class TestGoldenGridsThroughStore:
    """The acceptance gate: cold-then-warm reproduces every committed
    golden snapshot at every worker count, the warm pass all store hits."""

    @pytest.mark.parametrize("workers", [0, 1, 4])
    @pytest.mark.parametrize("name", sorted(GOLDEN_GRIDS))
    def test_cold_and_warm_match_the_committed_golden(
            self, name, workers, tmp_path):
        grid = GOLDEN_GRIDS[name]
        expected = load_golden(name, GOLDEN_DIR)

        cold_store = SweepStore(tmp_path / "store")
        cold = grid.build_runner().run(grid.points(), workers=workers,
                                       store=cold_store).snapshot()
        assert not snapshot_diff(expected, cold), (
            f"{name}: cold store-backed run diverged from the golden")
        assert cold_store.hits == 0
        assert cold_store.puts == len(grid.points())

        warm_store = SweepStore(tmp_path / "store")
        simulated = []
        original = SweepRunner._run_point
        SweepRunner._run_point = (
            lambda self, p: simulated.append(p) or original(self, p))
        try:
            warm = grid.build_runner().run(grid.points(), workers=workers,
                                           store=warm_store).snapshot()
        finally:
            SweepRunner._run_point = original
        assert not simulated, (
            f"{name}: warm run simulated {len(simulated)} points")
        assert warm_store.misses == 0
        assert warm_store.hits == len(grid.points())
        assert not snapshot_diff(expected, warm), (
            f"{name}: warm (rehydrated) run diverged from the golden")
