#!/usr/bin/env python3
"""CI gate for the runtime resilience layer (``repro.resilience``).

Replays every committed golden grid under the committed fault plan
(``tools/fault_plans/ci.json``) — per store backend, through a real
supervised worker pool — and enforces the resilience contract:

* the plan's faults actually fire: at least one worker is SIGKILLed and
  at least two transient store errors are injected *per grid* (a gate
  that injects nothing proves nothing);
* every grid completes **byte-identical** to its committed
  ``tests/golden`` snapshot despite the murdered workers and failing
  store — recovery re-runs are exact, retries are absorbed, and the
  store ends the grid healthy (``mode == "ok"``) with a read/write trace
  that still satisfies the write-once contract (``verify_store_trace``);
* the serve daemon run under the same plan answers correctly through an
  injected batch stall and reports its per-subsystem recovery counters
  on ``/v1/health``.

The pool is driven explicitly (``run(points, pool=...)``) so kills fire
on any machine: the sweep's serial fallback at clamped worker counts
would otherwise leave the kill schedule idle on single-core CI runners.

Delivered fault counts, respawn/re-run/retry counters and per-grid
timings land in ``BENCH_resilience.json`` at the repository root (the
CI artifact the ``resilience`` leg uploads).

Run as ``make chaos-check`` or ``PYTHONPATH=src python
tools/chaos_check.py [--backend json|sqlite|both] [--grids NAME ...]
[--plan FILE]``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.resilience import FaultInjector, FaultPlan  # noqa: E402
from repro.sim.harness import (  # noqa: E402
    GOLDEN_GRIDS,
    load_golden,
    snapshot_diff,
)
from repro.store import (  # noqa: E402
    PersistentPool,
    SweepStore,
    verify_store_trace,
)
from repro.store.backend import SQLITE_URI_PREFIX  # noqa: E402

#: Backends the gate replays (the acceptance bar covers both).
BACKENDS = ("json", "sqlite")

#: Where the committed golden snapshots live.
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

#: The committed chaos schedule the gate runs under by default.
DEFAULT_PLAN_PATH = REPO_ROOT / "tools" / "fault_plans" / "ci.json"

#: Where the chaos counters land (repo root, uploaded as a CI artifact).
REPORT_PATH = REPO_ROOT / "BENCH_resilience.json"

#: Worker processes per grid run (clamped to the machine's core count by
#: the pool; one worker still exercises kill -> respawn -> re-run).
POOL_WORKERS = 2


def backend_location(root: pathlib.Path, backend: str) -> str:
    """Store location string for one backend under a scratch root."""
    if backend == "sqlite":
        return f"{SQLITE_URI_PREFIX}{root / 'store.db'}"
    return str(root / "store")


def run_grid_under_chaos(name: str, location: str, backend: str,
                         plan: FaultPlan) -> dict:
    """One golden grid under the plan, through a supervised pool."""
    grid = GOLDEN_GRIDS[name]
    injector = FaultInjector(plan)
    store = SweepStore(location, trace=True, fault_injector=injector)
    start = time.perf_counter()
    with PersistentPool(POOL_WORKERS, chunksize=1,
                        fault_injector=injector) as pool:
        actual = grid.build_runner().run(grid.points(), pool=pool,
                                         store=store).snapshot()
        respawns, reruns = pool.respawns, pool.reruns
    elapsed = time.perf_counter() - start
    counters = injector.snapshot()

    diffs = snapshot_diff(load_golden(name, GOLDEN_DIR), actual)
    if diffs:
        raise AssertionError(
            f"[{backend}] {name}: chaos run diverged from the committed "
            f"golden (first differences: {diffs})")
    violations = verify_store_trace(store.trace_events)
    if violations:
        raise AssertionError(
            f"[{backend}] {name}: store trace violates the write-once "
            f"contract under faults: {violations}")
    if counters["worker_kills"] < 1:
        raise AssertionError(
            f"[{backend}] {name}: the plan delivered no worker kill — "
            f"the supervised-pool path was not exercised")
    if counters["transient_store_faults"] < 2:
        raise AssertionError(
            f"[{backend}] {name}: expected >= 2 injected transient store "
            f"errors, got {counters['transient_store_faults']}")
    if store.mode != "ok":
        raise AssertionError(
            f"[{backend}] {name}: transient-only plan degraded the store "
            f"to {store.mode!r} ({store.degraded_reason})")
    store.close()
    return {
        "points": len(grid.points()),
        "elapsed_s": round(elapsed, 6),
        "respawns": respawns,
        "reruns": reruns,
        "store_retries": store.retries,
        "store_mode": store.mode,
        "faults": counters,
    }


def run_serve_probe(location: str, plan: FaultPlan) -> dict:
    """One daemon under the plan: stalled batch, correct answer, counters."""
    from repro.serve import ServeClient, ServeDaemon

    grid = GOLDEN_GRIDS["fig3_small"]
    injector = FaultInjector(plan)
    with ServeDaemon(port=0, store=location,
                     fault_injector=injector) as daemon:
        client = ServeClient(daemon.url)
        results = client.whatif(grid.build_runner(), grid.points())
        bad = [r.status for r in results if r.status != "ok"]
        if bad:
            raise AssertionError(f"serve probe: non-ok statuses {bad}")
        served = {"records": [r.record.snapshot() for r in results]}
        diffs = snapshot_diff(load_golden("fig3_small", GOLDEN_DIR), served)
        if diffs:
            raise AssertionError(
                f"serve probe: served records diverge from the committed "
                f"golden under the fault plan (first: {diffs})")
        health = client.health()
    if plan.serve_stalls and health["faults"]["batch_stalls"] < 1:
        raise AssertionError("serve probe: the planned batch stall never "
                             "fired")
    if "subsystems" not in health or "admission" not in health["subsystems"]:
        raise AssertionError("serve probe: /v1/health lost its subsystem "
                             "report")
    return {
        "status": health["status"],
        "subsystems": health["subsystems"],
        "faults": health["faults"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=(*BACKENDS, "both"),
                        default="both", help="backend(s) to gate")
    parser.add_argument("--grids", nargs="+", metavar="NAME",
                        choices=sorted(GOLDEN_GRIDS), default=None,
                        help="restrict the gate to these golden grids "
                             "(default: all committed grids)")
    parser.add_argument("--plan", type=pathlib.Path,
                        default=DEFAULT_PLAN_PATH,
                        help="fault plan JSON file (default: the committed "
                             "CI plan)")
    args = parser.parse_args()
    plan = FaultPlan.from_json(args.plan.read_text(encoding="utf-8"))
    selected = BACKENDS if args.backend == "both" else (args.backend,)
    grid_names = (tuple(sorted(args.grids)) if args.grids
                  else tuple(sorted(GOLDEN_GRIDS)))

    scratch = pathlib.Path(tempfile.mkdtemp(prefix="chaos-gate-"))
    per_backend = {}
    serve_probe = {}
    try:
        for backend in selected:
            grids = {}
            for name in grid_names:
                root = scratch / backend / name
                root.mkdir(parents=True, exist_ok=True)
                grids[name] = run_grid_under_chaos(
                    name, backend_location(root, backend), backend, plan)
            per_backend[backend] = {
                "grids": grids,
                "totals": {
                    "worker_kills": sum(g["faults"]["worker_kills"]
                                        for g in grids.values()),
                    "store_faults": sum(g["faults"]["store_faults"]
                                        for g in grids.values()),
                    "respawns": sum(g["respawns"] for g in grids.values()),
                    "reruns": sum(g["reruns"] for g in grids.values()),
                    "store_retries": sum(g["store_retries"]
                                         for g in grids.values()),
                    "elapsed_s": round(sum(g["elapsed_s"]
                                           for g in grids.values()), 6),
                },
            }
        serve_root = scratch / "serve"
        serve_root.mkdir(parents=True, exist_ok=True)
        serve_probe = run_serve_probe(str(serve_root / "store"), plan)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    payload = {
        "schema": "repro-chaos-gate/1",
        "plan": plan.to_dict(),
        "grids": list(grid_names),
        "backends": per_backend,
        "serve": serve_probe,
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n",
                           encoding="utf-8")
    for backend, result in per_backend.items():
        totals = result["totals"]
        print(f"chaos-check[{backend}]: {len(grid_names)} golden grids "
              f"byte-identical under {totals['worker_kills']} worker "
              f"kill(s), {totals['store_faults']} injected store error(s) "
              f"({totals['respawns']} respawns, {totals['reruns']} re-run "
              f"points, {totals['store_retries']} store retries; "
              f"{totals['elapsed_s']:.2f} s)")
    print(f"chaos-check[serve]: daemon answered byte-identical through a "
          f"stalled batch; health status {serve_probe['status']!r}; "
          f"counters -> {REPORT_PATH.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
