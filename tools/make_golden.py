#!/usr/bin/env python3
"""Regenerate the committed golden sweep snapshots under tests/golden/.

The snapshots are byte-exact (:meth:`float.hex` floats) serial-run outputs
of the small reference grids in :mod:`repro.sim.harness`.  The golden
regression tests assert that :class:`~repro.sim.sweep.SweepRunner`
reproduces them bit-for-bit at ``workers=0``, ``workers=1`` and
``workers=4``.

Run this (``PYTHONPATH=src python tools/make_golden.py``) only when a
deliberate simulation change legitimately moves the numbers, and commit
the refreshed files together with that change.
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.harness import GOLDEN_GRIDS, write_golden  # noqa: E402

GOLDEN_DIR = REPO_ROOT / "tests" / "golden"


def main() -> int:
    for name in GOLDEN_GRIDS:
        path = write_golden(name, GOLDEN_DIR)
        print(f"wrote {path.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
