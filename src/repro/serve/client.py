"""Thin stdlib HTTP client for the what-if sweep daemon.

:class:`ServeClient` wraps :mod:`urllib.request` around the endpoints of
:mod:`repro.serve.server` and decodes responses back into library types
where one exists — :meth:`ServeClient.whatif` rehydrates served records
into byte-identical :class:`~repro.sim.sweep.SweepRecord` objects via
:func:`repro.serve.protocol.record_from_wire`.  The golden round-trip
gate and ``repro query`` both drive the daemon through this client.

Idempotent requests retry transparently: every endpoint the client
exposes is safe to re-send (GETs trivially; the sweep POSTs because the
daemon's answers are content-addressed — re-asking a question computes
or re-reads the same records), so a connection reset, a refused connect
(daemon restarting) or a ``503`` admission rejection is retried with
capped exponential backoff before the error escapes.  ``503`` responses
honour the daemon's ``Retry-After`` suggestion, capped by
:data:`MAX_RETRY_AFTER_S` so a confused server cannot park the client.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.serve.protocol import (
    RETRY_AFTER_HEADER,
    point_to_wire,
    record_from_wire,
    runner_to_wire,
)
from repro.sim.sweep import SweepPoint, SweepRecord, SweepRunner

#: Default number of *re-sends* after a retryable failure (connection
#: reset / refused, 503).  Total attempts = retries + 1.
DEFAULT_CLIENT_RETRIES = 3

#: First backoff sleep; doubles per retry up to :data:`MAX_BACKOFF_S`.
DEFAULT_BACKOFF_S = 0.1

#: Ceiling on a single computed backoff sleep.
MAX_BACKOFF_S = 2.0

#: Ceiling on an honoured ``Retry-After`` header value (seconds).
MAX_RETRY_AFTER_S = 5.0


@dataclass
class WhatIfResult:
    """One point's answer from :meth:`ServeClient.whatif`.

    ``record`` is the rehydrated, byte-identical
    :class:`~repro.sim.sweep.SweepRecord` when ``status == "ok"``, else
    ``None``; ``error`` carries the daemon's failure text for ``status
    == "error"``; ``status == "timed_out"`` marks a point the request's
    deadline cut off (ask again — the simulation finished into the
    store).
    """

    status: str
    record: Optional[SweepRecord]
    error: Optional[str]


class ServeError(ConfigurationError):
    """An HTTP-level error response from the serve daemon.

    ``retry_after`` carries the parsed ``Retry-After`` header (seconds)
    when the daemon sent one (admission rejections do), else ``None``.
    """

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(f"serve daemon returned {status}: {message}")
        self.status = status
        self.retry_after = retry_after


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Seconds from a ``Retry-After`` header (delta form only), if sane."""
    if not value:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None
    return seconds if seconds >= 0 else None


def _is_retryable_url_error(exc: urllib.error.URLError) -> bool:
    """Connection-level failures worth re-sending: the request never
    reached (or never finished reaching) a healthy daemon."""
    reason = exc.reason
    return isinstance(reason, (ConnectionResetError, ConnectionRefusedError,
                               ConnectionAbortedError, BrokenPipeError))


class ServeClient:
    """Talk to one serve daemon at ``url`` (e.g. ``http://127.0.0.1:8421``).

    Args:
        url: Daemon base URL.
        timeout_s: Socket timeout per HTTP attempt.
        retries: Re-sends after a retryable failure (``0`` disables).
        backoff_s: First backoff sleep; doubles per retry, capped at
            :data:`MAX_BACKOFF_S` (a 503's ``Retry-After`` takes
            precedence, capped at :data:`MAX_RETRY_AFTER_S`).
    """

    def __init__(self, url: str, timeout_s: float = 600.0, *,
                 retries: int = DEFAULT_CLIENT_RETRIES,
                 backoff_s: float = DEFAULT_BACKOFF_S) -> None:
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if backoff_s < 0:
            raise ConfigurationError("backoff_s must be >= 0")
        self._url = url.rstrip("/")
        self._timeout_s = timeout_s
        self._retries = retries
        self._backoff_s = backoff_s
        #: Retried sends this client performed (observable for tests).
        self.retries_used = 0

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        data = None if body is None else json.dumps(body).encode("utf-8")
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, data)
            except ServeError as exc:
                if exc.status != 503 or attempt >= self._retries:
                    raise
                delay = exc.retry_after
                if delay is None:
                    delay = min(self._backoff_s * (2 ** attempt), MAX_BACKOFF_S)
                delay = min(delay, MAX_RETRY_AFTER_S)
            except ConfigurationError as exc:
                if getattr(exc, "_retryable", False) and attempt < self._retries:
                    delay = min(self._backoff_s * (2 ** attempt), MAX_BACKOFF_S)
                else:
                    raise
            attempt += 1
            self.retries_used += 1
            if delay > 0:
                time.sleep(delay)

    def _request_once(self, method: str, path: str,
                      data: Optional[bytes]) -> Dict[str, Any]:
        request = urllib.request.Request(
            self._url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self._timeout_s) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            retry_after = _parse_retry_after(
                exc.headers.get(RETRY_AFTER_HEADER) if exc.headers else None)
            try:
                message = json.loads(exc.read().decode("utf-8")).get(
                    "error", exc.reason)
            except Exception:
                message = str(exc.reason)
            raise ServeError(exc.code, message, retry_after) from None
        except urllib.error.URLError as exc:
            error = ConfigurationError(
                f"cannot reach serve daemon at {self._url}: {exc.reason}")
            error._retryable = _is_retryable_url_error(exc)
            raise error from None
        return payload

    def health(self) -> Dict[str, Any]:
        """``GET /v1/health`` — liveness + subsystem degradation report."""
        return self._request("GET", "/v1/health")

    def stats(self) -> Dict[str, Any]:
        """``GET /v1/stats`` — store / batcher / latency statistics."""
        return self._request("GET", "/v1/stats")

    def whatif(self, runner: SweepRunner, points: Sequence[SweepPoint],
               deadline_s: Optional[float] = None) -> List[WhatIfResult]:
        """Query the daemon for ``points`` under ``runner``'s configuration.

        Returns one :class:`WhatIfResult` per point, in input order.
        ``deadline_s`` bounds this request only (the daemon's default
        applies when ``None``); late points come back ``timed_out``.
        """
        body: Dict[str, Any] = {
            "runner": runner_to_wire(runner),
            "points": [point_to_wire(point) for point in points],
        }
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        payload = self._request("POST", "/v1/whatif", body)
        results = []
        for item in payload.get("results", []):
            record = item.get("record")
            results.append(WhatIfResult(
                status=item.get("status", "error"),
                record=None if record is None else record_from_wire(record),
                error=item.get("error")))
        return results

    def experiment(self, experiment_id: str,
                   scale: Optional[float] = None) -> Dict[str, Any]:
        """``POST /v1/experiment`` — run a registered experiment by id."""
        body: Dict[str, Any] = {"id": experiment_id}
        if scale is not None:
            body["scale"] = scale
        return self._request("POST", "/v1/experiment", body)

    def report(self, scale: Optional[float] = None,
               only: Optional[Sequence[str]] = None) -> str:
        """``POST /v1/report`` — EXPERIMENTS.md markdown for the grid."""
        body: Dict[str, Any] = {}
        if scale is not None:
            body["scale"] = scale
        if only is not None:
            body["only"] = list(only)
        return self._request("POST", "/v1/report", body)["markdown"]
