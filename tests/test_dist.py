"""Tests for the multi-host sweep fabric (``repro.dist``).

The scale-out contract this PR is pinned by:

* **frame protocol** — length-prefixed JSON round-trips over a real
  socket pair, oversized/unparsable/typeless frames are refused, the
  runner spec's wire form goes through the serve layer's factory
  whitelist *driver-side* (the RCE-by-configuration guard), and
  ``host:port`` list parsing fails loudly on malformed input;
* **byte identity at any topology** — a grid fanned out over 1 or 2
  in-process worker agents (serial or pooled inside each agent) is
  byte-identical to the serial run, work-stealing included;
* **the driver keeps the store** — store hits are resolved before
  dispatch (nothing framed onto the wire for them) and streamed records
  are written back into the shared store by the driver's commit hook;
* **the shared failure protocol** — a failing remote point raises the
  labelled :class:`~repro.exceptions.SweepPointError`; an unreachable
  fabric raises :class:`~repro.exceptions.HostLostError` at dispatch;
* **host death costs time, never bytes** — a real agent subprocess
  SIGKILLed mid-sweep (the ``host-death`` fault kind, scheduled by a
  :class:`~repro.resilience.FaultPlan`) loses a host, the chunk is
  reassigned, and the result is still byte-identical with zero lost or
  duplicated records;
* **serve integration** — a :class:`~repro.serve.ServeDaemon` built on
  ``hosts=`` serves byte-identical what-if answers through the fabric.
"""

from __future__ import annotations

import json
import socket
import struct
import threading

import pytest

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import ALEXNET, RESNET18
from repro.exceptions import (
    ConfigurationError,
    HostLostError,
    SweepPointError,
)
from repro.dist import (
    DIST_PROTOCOL_VERSION,
    HOSTS_ENV_VAR,
    MAX_FRAME_BYTES,
    DistExecutor,
    DistWorker,
    LocalWorkerFleet,
    parse_hosts,
    recv_frame,
    resolve_hosts,
    send_frame,
    spec_from_wire,
    spec_to_wire,
)
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.sim.sweep import SweepPoint, SweepRunner
from repro.store import SweepStore

SCALE = 1 / 500.0


def _runner(**overrides) -> SweepRunner:
    settings = dict(scale=SCALE, seed=0)
    settings.update(overrides)
    return SweepRunner(settings.pop("server_factory", config_ssd_v100),
                       **settings)


def _grid(cache_fractions=(0.4, 0.8)):
    return SweepRunner.grid(models=[RESNET18],
                            loaders=["coordl", "dali-shuffle"],
                            cache_fractions=cache_fractions,
                            dataset="openimages")


def _serial_snapshot(points):
    return _runner().run(points, workers=0, store=False).snapshot()


@pytest.fixture
def agent():
    """One in-process worker agent on a free port (serial execution)."""
    with DistWorker() as worker:
        yield worker


@pytest.fixture
def two_agents():
    with DistWorker() as first, DistWorker() as second:
        yield first, second


def _free_port() -> int:
    """A port that was just free — nothing listens on it afterwards."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class TestFrameProtocol:
    def test_frames_round_trip_over_a_socket(self):
        left, right = socket.socketpair()
        try:
            frames = [{"type": "ping"},
                      {"type": "record", "id": 3, "index": 7,
                       "snapshot": {"nested": [1, 2.5, "x"]}}]
            for frame in frames:
                send_frame(left, frame)
            for frame in frames:
                assert recv_frame(right) == frame
        finally:
            left.close()
            right.close()

    def test_clean_close_between_frames_raises_connection_error(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(ConnectionError):
                recv_frame(right)
        finally:
            right.close()

    def test_oversized_frame_announcement_is_refused_unread(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ConnectionError, match="refusing"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    @pytest.mark.parametrize("payload", [b"not json", b"[1, 2]", b"{}"])
    def test_unparsable_or_typeless_frames_are_refused(self, payload):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(ConnectionError):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_spec_wire_form_round_trips(self):
        spec = _runner(seed=3, queue_depth=8, fast_path=False).spec()
        wire = spec_to_wire(spec)
        assert spec_from_wire(json.loads(json.dumps(wire))) == spec

    def test_non_catalog_factory_fails_driver_side(self):
        """The whitelist check runs at submit time, before any network."""
        def rogue_factory():  # pragma: no cover - never called
            raise AssertionError("must not be invoked")

        with pytest.raises(ConfigurationError):
            spec_to_wire((rogue_factory, SCALE, 0, 4, True))


class TestHostParsing:
    def test_parse_hosts_accepts_comma_lists(self):
        assert parse_hosts("a:1, b:2,c:3") == [("a", 1), ("b", 2), ("c", 3)]

    @pytest.mark.parametrize("text", ["", ",,", "noport", ":5", "a:notint"])
    def test_parse_hosts_rejects_malformed_lists(self, text):
        with pytest.raises(ConfigurationError):
            parse_hosts(text)

    def test_resolve_hosts_falls_back_to_the_environment(self, monkeypatch):
        monkeypatch.delenv(HOSTS_ENV_VAR, raising=False)
        assert resolve_hosts(None) is None
        monkeypatch.setenv(HOSTS_ENV_VAR, "127.0.0.1:8501,127.0.0.1:8502")
        assert resolve_hosts(None) == [("127.0.0.1", 8501),
                                       ("127.0.0.1", 8502)]
        # An explicit argument wins over the environment.
        assert resolve_hosts("h:9") == [("h", 9)]


class TestExecutorValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            DistExecutor([])
        with pytest.raises(ConfigurationError):
            DistExecutor("h:1", chunksize=0)
        with pytest.raises(ConfigurationError):
            DistExecutor("h:1", max_reassigns=-1)
        with pytest.raises(ConfigurationError):
            DistExecutor("h:1", steal_delay_s=-0.1)

    def test_accepts_every_host_list_form(self):
        for hosts in ("a:1,b:2", ["a:1", "b:2"], [("a", 1), ("b", 2)]):
            executor = DistExecutor(hosts)
            assert executor.hosts == ["a:1", "b:2"]
            assert executor.workers == 2  # host count before any connection

    def test_empty_point_list_is_a_noop(self):
        executor = DistExecutor("127.0.0.1:1")
        assert executor.run_points(_runner().spec(), []) == []
        assert executor.runs == 0

    def test_unreachable_fabric_raises_host_lost_error(self):
        executor = DistExecutor(f"127.0.0.1:{_free_port()}")
        with pytest.raises(HostLostError, match="no worker agent reachable"):
            executor.run_points(_runner().spec(),
                                list(enumerate(_grid())))


class TestWorkerAgent:
    def test_rejects_negative_workers(self):
        with pytest.raises(ConfigurationError):
            DistWorker(workers=-1)

    def test_hello_protocol_mismatch_is_refused(self, agent):
        sock = socket.create_connection(agent.address, timeout=5)
        try:
            send_frame(sock, {"type": "hello", "protocol": 999})
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            assert "protocol" in reply["error"]
        finally:
            sock.close()

    def test_ping_pong_and_orderly_shutdown(self, agent):
        sock = socket.create_connection(agent.address, timeout=5)
        try:
            send_frame(sock, {"type": "hello",
                              "protocol": DIST_PROTOCOL_VERSION})
            hello = recv_frame(sock)
            assert hello["type"] == "hello"
            assert hello["protocol"] == DIST_PROTOCOL_VERSION
            assert isinstance(hello["pid"], int)
            send_frame(sock, {"type": "ping"})
            assert recv_frame(sock)["type"] == "pong"
            send_frame(sock, {"type": "shutdown"})
            assert recv_frame(sock)["type"] == "bye"
        finally:
            sock.close()


class TestByteIdentity:
    def test_single_host_matches_serial(self, agent):
        points = _grid()
        serial = _serial_snapshot(points)
        with DistExecutor([agent.endpoint]) as executor:
            distributed = _runner().run(points, pool=executor,
                                        store=False).snapshot()
            assert distributed == serial
            assert executor.runs == 1
            assert executor.points_sent == len(points)
            assert executor.hosts_lost == 0

    def test_two_hosts_match_serial(self, two_agents):
        first, second = two_agents
        points = _grid()
        serial = _serial_snapshot(points)
        with DistExecutor([first.endpoint, second.endpoint],
                          chunksize=1) as executor:
            distributed = _runner().run(points, pool=executor,
                                        store=False).snapshot()
        assert distributed == serial
        # Four single-point chunks over two agents: both served some.
        assert first.chunks_served + second.chunks_served >= len(points)

    def test_pooled_agent_matches_serial(self):
        """An agent fanning chunks over its own local pool changes nothing."""
        points = _grid()
        serial = _serial_snapshot(points)
        with DistWorker(workers=2) as agent:
            with DistExecutor([agent.endpoint],
                              chunksize=len(points)) as executor:
                distributed = _runner().run(points, pool=executor,
                                            store=False).snapshot()
        assert distributed == serial

    def test_stolen_chunks_stay_byte_identical(self, two_agents):
        """One chunk, two hosts: the idle host steals the whole chunk and
        the duplicate deliveries are deduped by input index."""
        first, second = two_agents
        points = _grid()
        serial = _serial_snapshot(points)
        with DistExecutor([first.endpoint, second.endpoint],
                          chunksize=len(points),
                          steal_delay_s=0.0) as executor:
            distributed = _runner().run(points, pool=executor,
                                        store=False).snapshot()
            assert distributed == serial
            assert executor.steals >= 1
            # Stealing re-ships points; dedup means the result never grows.
            assert executor.points_sent >= len(points)

    def test_on_record_streams_each_index_exactly_once(self, agent):
        points = _grid()
        seen = []
        lock = threading.Lock()

        def on_record(index, record):
            with lock:
                seen.append(index)

        with DistExecutor([agent.endpoint]) as executor:
            results = executor.run_points(
                _runner().spec(), list(enumerate(points)),
                on_record=on_record)
        assert sorted(seen) == list(range(len(points)))
        assert [index for index, _ in results] == list(range(len(points)))


class TestStoreIntegration:
    def test_store_hits_never_reach_the_wire(self, agent, tmp_path):
        points = _grid()
        store = SweepStore(tmp_path / "store")
        with DistExecutor([agent.endpoint]) as executor:
            cold = _runner().run(points, pool=executor,
                                 store=store).snapshot()
            sent_after_cold = executor.points_sent
            assert sent_after_cold == len(points)

            warm_store = SweepStore(tmp_path / "store")
            warm = _runner().run(points, pool=executor,
                                 store=warm_store).snapshot()
            assert warm == cold
            assert warm_store.hits == len(points)
            assert warm_store.misses == 0
            # The warm run framed nothing onto the wire.
            assert executor.points_sent == sent_after_cold

    def test_streamed_records_are_committed_by_the_driver(self, agent,
                                                          tmp_path):
        points = _grid()
        store = SweepStore(tmp_path / "store")
        with DistExecutor([agent.endpoint]) as executor:
            _runner().run(points, pool=executor, store=store)
        assert store.puts == len(points)
        assert store.stats().entries == len(points)


class TestFailureProtocol:
    def test_remote_point_failure_keeps_the_labelled_protocol(self, agent):
        good = SweepPoint(model=RESNET18, loader="coordl",
                          dataset="openimages", cache_fraction=0.5)
        bad = SweepPoint(model=ALEXNET, loader="hp-baseline", num_jobs=64,
                         label="overcommitted-hp-point")
        with DistExecutor([agent.endpoint]) as executor:
            with pytest.raises(SweepPointError) as excinfo:
                _runner().run([good, bad], pool=executor, store=False)
        error = excinfo.value
        assert error.point_label == "overcommitted-hp-point"
        assert "remote point failure" in str(error.__cause__)

    def test_surviving_points_are_still_streamed(self, agent):
        good = SweepPoint(model=RESNET18, loader="coordl",
                          dataset="openimages", cache_fraction=0.5)
        bad = SweepPoint(model=ALEXNET, loader="hp-baseline", num_jobs=64,
                         label="bad-point")
        delivered = []
        with DistExecutor([agent.endpoint], chunksize=1) as executor:
            with pytest.raises(SweepPointError):
                executor.run_points(
                    _runner().spec(), [(0, good), (1, bad)],
                    on_record=lambda i, r: delivered.append(i))
        assert delivered == [0]


class TestFaultPlanHostKills:
    def test_plan_round_trips_host_kills(self):
        plan = FaultPlan(host_kills=(1, 3))
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_plan_rejects_non_positive_thresholds(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(host_kills=(0,))

    def test_injector_counts_delivered_kills(self):
        injector = FaultInjector(FaultPlan(host_kills=(1,)))
        schedule = injector.host_kill_schedule()
        assert schedule.due(1)
        assert not schedule.due(2)
        injector.note_host_kill()
        assert injector.counters.host_kills == 1


class TestHostDeath:
    def test_agent_killed_mid_sweep_is_byte_identical(self):
        """A real agent subprocess SIGKILLed after the first delivered
        record: the dead host's chunk is reassigned and the result is
        byte-identical — host death costs time, never bytes."""
        points = _grid()
        serial = _serial_snapshot(points)
        injector = FaultInjector(FaultPlan(host_kills=(1,)))
        with LocalWorkerFleet(2) as fleet:
            with DistExecutor(fleet.endpoints, chunksize=1,
                              fault_injector=injector,
                              kill_hook=fleet.kill_one) as executor:
                distributed = _runner().run(points, pool=executor,
                                            store=False).snapshot()
                assert distributed == serial
                assert executor.hosts_lost == 1
                assert injector.counters.host_kills == 1
                assert len(fleet.alive) == 1


class TestServeIntegration:
    def test_daemon_rejects_hosts_plus_workers(self):
        from repro.serve import ServeDaemon
        with pytest.raises(ConfigurationError, match="not both"):
            ServeDaemon(port=0, hosts=["127.0.0.1:1"], workers=2)

    def test_daemon_serves_byte_identical_over_the_fabric(self, agent,
                                                          tmp_path):
        from repro.serve import ServeClient, ServeDaemon
        points = _grid()
        serial = _runner().run(points, store=False)
        with ServeDaemon(port=0, store=tmp_path / "store",
                         hosts=[agent.endpoint]) as daemon:
            client = ServeClient(daemon.url)
            health = client.health()
            assert health["status"] == "ok"
            served = client.whatif(_runner(), points)
            assert [r.status for r in served] == ["ok"] * len(points)
            for got, expected in zip(served, serial.records):
                assert (got.record.snapshot(include_timeline=True)
                        == expected.snapshot(include_timeline=True))
        assert agent.points_served == len(points)
