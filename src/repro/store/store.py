"""Content-addressed store of sweep results, over pluggable backends.

Every figure/table in the reproduction is a :class:`~repro.sim.sweep.SweepRunner`
grid, and every grid point is a pure function of its configuration: the
runner spec, the point spec and the result-affecting environment flags
(:meth:`~repro.sim.sweep.SweepRunner.point_spec` renders exactly that
identity).  :class:`SweepStore` memoises those functions on disk — the
serve-many-queries discipline of DS-Analyzer-style what-if tooling — so a
repeated ``report`` run, a re-run of one changed experiment, or a what-if
query over an already-simulated grid reduces to store reads.

Storage is delegated to a :class:`~repro.store.backend.StoreBackend`
(:class:`~repro.store.backend.JsonDirBackend` for plain directory
locations — byte-for-byte the original one-JSON-file-per-entry layout —
or :class:`~repro.store.backend.SqliteBackend` for ``sqlite://PATH``
locations: one WAL-mode database whose SQL index answers ``stats`` /
``gc`` / ``invalidate`` without directory scans and whose payloads are
compressed snapshot bytes).  This frontend owns everything that must not
drift between backends: session counters, the operation trace,
rehydration (:meth:`~repro.sim.sweep.SweepRecord.from_snapshot`) and the
point guard.  Corruption of any entry degrades to a counted miss, is
deleted, and is repaired by re-simulation — it can cost time, never
correctness.

The store key covers, besides the runner/point/env spec, a digest of the
``repro.sim`` and ``repro.cache`` *source trees* (:func:`source_digest`):
editing the simulator orphans every previously stored entry instead of
serving bytes computed by different code — stale hits are structurally
impossible, not a discipline.

The store is **concurrency-safe** — the contract the serve layer
(:mod:`repro.serve`) builds on:

* entries are *write-once*: a key's content is a pure function of its
  spec, so the first completed writer wins and later writers of the same
  key are skipped (counted as ``redundant_puts``).  The JSON backend
  converges through atomic same-bytes replaces; the SQLite backend
  through a single conflict-ignoring insert;
* session counters are guarded by a lock, and an optional **operation
  trace** (``SweepStore(location, trace=True)``) records every get/put
  with a digest of the stored bytes it saw — :func:`verify_store_trace`
  replays the trace and checks the write-once read/write consistency
  contract over it (in the spirit of PRAM-consistency trace checking),
  which is how the concurrency tests prove, per backend, that readers
  can never observe torn or cross-served bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import threading
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Union

from repro.exceptions import ConfigurationError
from repro.resilience.faults import FaultInjector, active_injector
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.sim.sweep import SweepPoint, SweepRecord, SweepRunner
from repro.store.backend import (
    STORE_SCHEMA_VERSION,
    EntryInvalid,
    JsonDirBackend,
    SqliteBackend,
    StoreBackend,
    open_backend,
)

__all__ = [
    "STORE_ENV_VAR",
    "STORE_SCHEMA_VERSION",
    "StoreArg",
    "StoreStats",
    "StoreTraceEvent",
    "SweepStore",
    "merge_store_traces",
    "migrate_store",
    "resolve_store",
    "runner_spec_digest",
    "source_digest",
    "store_key",
    "verify_store_trace",
]

#: Environment variable supplying the default store location of
#: :meth:`repro.sim.sweep.SweepRunner.run` (and therefore of every
#: sweep-backed experiment and the CLI) when no explicit ``store`` is
#: passed.  A directory path or a ``sqlite://PATH`` URI; unset or empty
#: means "no store".
STORE_ENV_VAR = "REPRO_SWEEP_STORE"

#: Memoised :func:`source_digest` value (the source tree cannot change
#: under a running process in any way the digest should chase).
_SOURCE_DIGEST: Optional[str] = None


def source_digest() -> str:
    """Digest of the simulator's source code, folded into every store key.

    Covers every ``.py`` file under the ``repro.sim`` and ``repro.cache``
    packages (the two trees whose code determines simulated bytes), as
    relative path plus contents, so *any* simulator edit moves every
    content address: a store can never serve a hit computed by code that
    no longer exists.  This replaces "remember to ``repro store
    invalidate`` after simulator changes" with a structural guarantee
    (``invalidate`` remains for out-of-tree causes).  Memoised per
    process; unreadable files are skipped (a partial digest still
    changes whenever readable source does).
    """
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        import repro.cache
        import repro.sim
        digest = hashlib.blake2b(digest_size=8)
        for package in (repro.cache, repro.sim):
            root = pathlib.Path(package.__file__).resolve().parent
            for path in sorted(root.rglob("*.py")):
                digest.update(str(path.relative_to(root.parent)).encode())
                digest.update(b"\0")
                try:
                    digest.update(path.read_bytes())
                except OSError:
                    pass
                digest.update(b"\0")
        _SOURCE_DIGEST = digest.hexdigest()
    return _SOURCE_DIGEST


def store_key(spec: Dict[str, Any]) -> str:
    """Stable BLAKE2 content address of one canonical point spec.

    ``spec`` is :meth:`~repro.sim.sweep.SweepRunner.point_spec` output (or
    anything JSON-stable); the digest covers the spec,
    :data:`STORE_SCHEMA_VERSION` *and* the simulator
    :func:`source_digest`, rendered as canonical JSON (sorted keys, no
    whitespace) so dict ordering can never move the address.
    """
    payload = json.dumps({"schema": STORE_SCHEMA_VERSION,
                          "source": source_digest(), "spec": spec},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


def runner_spec_digest(runner_spec: Dict[str, Any]) -> str:
    """Short digest of one canonical runner spec (store index metadata).

    :meth:`~repro.sim.sweep.SweepRunner.run` stamps it on every entry it
    writes, so an indexed backend can answer "which runner configuration
    produced these entries" (and group/prune by it) without unpacking a
    single payload.
    """
    payload = json.dumps(runner_spec, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()


@dataclass(frozen=True)
class StoreTraceEvent:
    """One recorded store operation (``SweepStore(..., trace=True)``).

    Attributes:
        seq: Global order the event was recorded in (per store instance).
        op: ``"get"`` or ``"put"``.
        key: Content address the operation targeted.
        outcome: ``"hit"`` / ``"miss"`` / ``"invalid"`` /
            ``"unavailable"`` (degraded, backend not consulted) for gets;
            ``"stored"`` / ``"redundant"`` / ``"skipped"`` (degraded or
            failed, nothing written) for puts.  Only ``stored`` and
            ``hit`` carry bytes, and only they participate in
            :func:`verify_store_trace` — degraded outcomes cannot create
            consistency violations because they serve no bytes.
        digest: BLAKE2 digest of the stored bytes the operation read or
            wrote (``None`` when nothing was read/written — a plain miss
            or a skipped redundant put).
        thread: ``threading.get_ident()`` of the operating thread.
        writer: Identity of the writing *process/driver* the event came
            from (``SweepStore(..., trace_writer="driver-a")``); empty for
            single-writer traces.  :func:`merge_store_traces` stamps and
            re-sequences events from several stores so the multi-host
            consistency check runs over one merged trace.
    """

    seq: int
    op: str
    key: str
    outcome: str
    digest: Optional[str]
    thread: int
    writer: str = ""


def verify_store_trace(events: List[StoreTraceEvent]) -> List[str]:
    """Check a recorded read/write trace against the write-once contract.

    The store's consistency claim reduces to two trace properties (the
    read/write-trace checking discipline of Wei et al.'s PRAM-consistency
    verifier, specialised to write-once registers):

    * **write-once**: every ``stored`` put of one key wrote the same bytes
      (same digest) — concurrent writers may race, but only to identical
      content;
    * **reads serve writes**: every ``hit`` returned bytes that some put
      of that key wrote (or, for keys never written in the trace, the same
      bytes as every other hit of that key — a pre-populated entry).

    Returns a list of human-readable violations; an empty list means the
    trace is consistent.  Torn reads, cross-served keys and lost updates
    all surface as digest mismatches here.  The properties are
    backend-independent (digests are of whatever bytes the backend
    physically stores), which is how one checker re-proves the contract
    for each backend.

    The checker is also writer-agnostic: a trace merged from several
    concurrent writer processes (:func:`merge_store_traces`) is checked
    by exactly the same two rules, because both properties are
    order-independent across writers — write-once compares *contents*,
    not orderings, and determinism makes every writer's bytes for one
    key identical.  That is what lets one checker certify the
    distributed fabric's "duplicate steals are harmless" claim.
    """
    violations: List[str] = []
    written: Dict[str, Dict[str, int]] = {}
    preexisting: Dict[str, str] = {}
    for event in sorted(events, key=lambda e: e.seq):
        if event.op == "put" and event.outcome == "stored":
            digests = written.setdefault(event.key, {})
            digests.setdefault(event.digest or "", event.seq)
            if len(digests) > 1:
                violations.append(
                    f"write-once violated for {event.key}: puts wrote "
                    f"{len(digests)} distinct contents (seqs {sorted(digests.values())})")
        elif event.op == "get" and event.outcome == "hit":
            digests = written.get(event.key)
            if digests is not None:
                if (event.digest or "") not in digests:
                    violations.append(
                        f"hit at seq {event.seq} for {event.key} returned bytes "
                        f"no put of that key wrote")
            else:
                seen = preexisting.setdefault(event.key, event.digest or "")
                if seen != (event.digest or ""):
                    violations.append(
                        f"hits of never-written key {event.key} disagree "
                        f"(seq {event.seq})")
    return violations


def merge_store_traces(
        traces: Dict[str, List[StoreTraceEvent]]) -> List[StoreTraceEvent]:
    """Merge per-writer traces into one globally-sequenced trace.

    ``traces`` maps a writer id (a driver/process name) to that writer's
    recorded events (``SweepStore(..., trace=True)`` output).  Events are
    interleaved deterministically — by each writer's local ``seq``, ties
    broken by writer id — re-numbered with a fresh global ``seq``, and
    stamped with their writer id.  Per-writer order is preserved, which
    is all :func:`verify_store_trace` needs: its two properties are
    order-independent *across* writers, so any order-preserving
    interleave certifies (or indicts) the same set of executions.
    """
    merged = sorted(
        ((event, writer) for writer, events in traces.items()
         for event in events),
        key=lambda pair: (pair[0].seq, pair[1]))
    return [replace(event, seq=seq, writer=writer or event.writer)
            for seq, (event, writer) in enumerate(merged)]


@dataclass
class StoreStats:
    """On-disk footprint plus this-process session counters of one store.

    ``entries``/``total_bytes``/``disk_bytes`` come from the backend's
    index (one directory scan for JSON, one SQL aggregate for SQLite) at
    call time; the session counters count what *this*
    :class:`SweepStore` instance served since construction (the CI store
    leg asserts a warm run is all hits through them).  ``total_bytes``
    is stored entry bytes; ``disk_bytes`` the physical footprint (for
    SQLite: database + WAL + shared-memory files).
    """

    directory: str
    entries: int
    total_bytes: int
    hits: int
    misses: int
    puts: int
    invalid: int
    redundant_puts: int = 0
    backend: str = "json"
    disk_bytes: int = 0
    retries: int = 0
    skipped_puts: int = 0
    mode: str = "ok"
    degraded_reason: str = ""

    @property
    def degraded(self) -> bool:
        """True once the store has stepped down the degradation ladder."""
        return self.mode != "ok"

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON dumps in the CI store leg and /v1/stats)."""
        return {
            "directory": self.directory,
            "backend": self.backend,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "disk_bytes": self.disk_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "invalid": self.invalid,
            "redundant_puts": self.redundant_puts,
            "retries": self.retries,
            "skipped_puts": self.skipped_puts,
            "mode": self.mode,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
        }


class SweepStore:
    """Content-addressed sweep-record store over one storage backend.

    Args:
        location: Store location — a directory path (JSON backend), a
            ``sqlite://PATH`` URI (SQLite backend), or an already-open
            :class:`~repro.store.backend.StoreBackend`.  Created if
            missing.
        trace: Record every get/put as a :class:`StoreTraceEvent` in
            :attr:`trace_events` (with a digest of the bytes involved),
            for :func:`verify_store_trace`-style consistency checking.
            Off by default — tracing holds every event in memory.
        trace_writer: Writer id stamped on every recorded event, so the
            traces of several concurrent writer processes can be merged
            (:func:`merge_store_traces`) and checked as one — the
            multi-host fabric's consistency proof.  Empty (the default)
            for single-writer traces.
        retry_policy: :class:`~repro.resilience.RetryPolicy` applied to
            every backend get/put: transient errors (SQLite lock/busy
            contention, ``EAGAIN``-family ``OSError``, injected transient
            faults) are retried with deterministic backoff and counted in
            ``retries``.  Defaults to the standard policy;
            :data:`~repro.resilience.NO_RETRY` disables retrying.
        fault_injector: Optional
            :class:`~repro.resilience.FaultInjector` whose store-fault
            schedule fires inside the retry wrapper; defaults to the
            process-wide injector (``REPRO_FAULT_PLAN``), which is
            ``None`` — no injection, no overhead — in normal operation.

    Counters ``hits`` / ``misses`` / ``puts`` / ``invalid`` /
    ``redundant_puts`` accumulate per instance (lock-guarded, so one
    store may be shared across threads — the serve daemon does exactly
    that); ``invalid`` counts entries that existed but could not be
    served (unparsable, truncated, mis-keyed, schema or point mismatch) —
    every invalid get is also a miss; ``redundant_puts`` counts writes
    skipped because a concurrent (or earlier) writer already stored the
    key — write-once semantics; ``retries`` counts backend operations
    that had to be re-attempted.

    **Degradation ladder.**  The store is a cache in front of a pure
    function, so backend failure can cost time but must never fail a
    run.  An operation that exhausts its retries steps the store down a
    one-way ladder for the rest of the session, recorded in ``mode``:
    a put failure degrades ``ok`` → ``read-only`` (later puts are
    skipped and counted in ``skipped_puts``; gets still serve hits); a
    get failure degrades straight to ``no-store`` (gets return misses
    without touching the backend, puts are skipped — pure
    compute-through).  ``stats()`` surfaces ``mode``, a ``degraded``
    flag and the failure that caused the (latest) step-down, which is
    what ``/v1/health`` reports for the serve layer's store subsystem.
    """

    #: Degradation ladder states, healthiest first.
    MODES = ("ok", "read-only", "no-store")

    def __init__(self, location: Union[str, os.PathLike, StoreBackend],
                 trace: bool = False,
                 retry_policy: Optional[RetryPolicy] = None,
                 fault_injector: Optional[FaultInjector] = None,
                 trace_writer: str = "") -> None:
        if isinstance(location, StoreBackend):
            self._backend = location
        else:
            self._backend = open_backend(location)
        self._trace_writer = trace_writer
        self._lock = threading.Lock()
        self._retry_policy = (retry_policy if retry_policy is not None
                              else RetryPolicy())
        self._injector = (fault_injector if fault_injector is not None
                          else active_injector())
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.invalid = 0
        self.redundant_puts = 0
        self.retries = 0
        self.skipped_puts = 0
        self.mode = "ok"
        self.degraded_reason = ""
        self.trace_events: Optional[List[StoreTraceEvent]] = ([] if trace
                                                              else None)

    def _note(self, op: str, key: str, outcome: str,
              payload: Optional[bytes], **counters: int) -> None:
        """Bump session counters and (when tracing) append one event."""
        with self._lock:
            for name, delta in counters.items():
                setattr(self, name, getattr(self, name) + delta)
            if self.trace_events is not None:
                digest = (hashlib.blake2b(payload, digest_size=16).hexdigest()
                          if payload is not None else None)
                self.trace_events.append(StoreTraceEvent(
                    seq=len(self.trace_events), op=op, key=key,
                    outcome=outcome, digest=digest,
                    thread=threading.get_ident(),
                    writer=self._trace_writer))

    @property
    def backend(self) -> StoreBackend:
        """The storage backend this store fronts."""
        return self._backend

    @property
    def degraded(self) -> bool:
        """True once any backend operation has exhausted its retries."""
        return self.mode != "ok"

    def _count_retry(self, exc: BaseException) -> None:
        with self._lock:
            self.retries += 1

    def _call_backend(self, op: str, fn):
        """Run one backend operation under fault injection and retry."""
        injector = self._injector

        def attempt():
            if injector is not None:
                injector.store_fault(op)
            return fn()

        return call_with_retry(attempt, policy=self._retry_policy,
                               on_retry=self._count_retry)

    def _degrade(self, mode: str, exc: BaseException) -> None:
        """Step down the ladder (one-way; a later, worse failure can
        still push ``read-only`` down to ``no-store``)."""
        with self._lock:
            if self.MODES.index(mode) > self.MODES.index(self.mode):
                self.mode = mode
                self.degraded_reason = f"{type(exc).__name__}: {exc}"

    @property
    def directory(self) -> pathlib.Path:
        """Filesystem root of the store (db file for the SQLite backend)."""
        return self._backend.path

    def key_for(self, runner: SweepRunner, point: SweepPoint) -> str:
        """Content address of one point under one runner configuration."""
        return store_key(runner.point_spec(point))

    def entry_path(self, key: str) -> pathlib.Path:
        """The file ``key``'s bytes live in (whether or not they exist).

        One file per entry for the JSON backend; the shared database
        file for SQLite.
        """
        return self._backend.entry_path(key)

    def _discard(self, key: str) -> None:
        """Best-effort deletion of an unusable entry.

        The deletion matters under write-once puts: it is what re-opens
        the key for the repairing writer.  Racing readers may both try;
        backend deletes are idempotent.
        """
        try:
            self._backend.delete(key)
        except Exception:
            pass

    # -- lookup / insert -----------------------------------------------------

    def get(self, key: str,
            point: Optional[SweepPoint] = None) -> Optional[SweepRecord]:
        """Rehydrated record for ``key``, or ``None`` on any kind of miss.

        A present-but-unusable entry (garbage bytes, truncated payload,
        wrong embedded key/schema, or — when ``point`` is given — a
        rehydrated record whose point spec does not match the query)
        counts as ``invalid``, is deleted (best-effort) and is reported
        as a miss; the caller re-simulates and :meth:`put` repairs the
        entry.

        A backend *error* (as opposed to a bad entry) is retried under
        the store's retry policy; exhausting it degrades the store to
        ``no-store`` mode — this and every later get is a counted miss
        served without touching the backend, and the caller computes
        through.  Reads can cost time, never fail a run.
        """
        if self.mode == "no-store":
            self._note("get", key, "unavailable", None, misses=1)
            return None
        try:
            found = self._call_backend("get", lambda: self._backend.get(key))
        except EntryInvalid as exc:
            self._discard(key)
            self._note("get", key, "invalid", exc.payload,
                       invalid=1, misses=1)
            return None
        except Exception as exc:
            self._degrade("no-store", exc)
            self._note("get", key, "unavailable", None, misses=1)
            return None
        if found is None:
            self._note("get", key, "miss", None, misses=1)
            return None
        snapshot, payload = found
        try:
            record = SweepRecord.from_snapshot(snapshot)
            if point is not None and record.point != point:
                raise ConfigurationError("store entry point mismatch")
        except Exception:
            # Treat every malformed entry as a (counted) miss, never an
            # error: the store is a cache, and re-simulation repairs it.
            self._discard(key)
            self._note("get", key, "invalid", payload, invalid=1, misses=1)
            return None
        self._note("get", key, "hit", payload, hits=1)
        return record

    def put(self, key: str, record: SweepRecord,
            runner_digest: str = "") -> pathlib.Path:
        """Persist one record under ``key``; returns its entry path.

        Write-once: if the entry already exists it is left untouched (the
        content of a key is a pure function of its spec, so the first
        completed writer's bytes are every writer's bytes) and the call
        counts as ``redundant``.  ``runner_digest`` — normally stamped by
        :meth:`~repro.sim.sweep.SweepRunner.run` via
        :func:`runner_spec_digest` — and the record's point label become
        index metadata on backends that keep an index.

        A backend error is retried under the store's retry policy;
        exhausting it degrades the store to ``read-only`` mode — this
        and every later put is skipped (counted in ``skipped_puts``) and
        the run keeps its in-memory result.  Writes can be lost to a
        broken backend, but a run is never failed by one.
        """
        if self.mode != "ok":
            self._note("put", key, "skipped", None, skipped_puts=1)
            return self._backend.entry_path(key)
        snapshot = record.snapshot(include_timeline=True)
        try:
            stored = self._call_backend(
                "put", lambda: self._backend.put(
                    key, snapshot, label=record.point.label or "",
                    runner_digest=runner_digest))
        except Exception as exc:
            self._degrade("read-only", exc)
            self._note("put", key, "skipped", None, skipped_puts=1)
            return self._backend.entry_path(key)
        if stored is None:
            self._note("put", key, "redundant", None, redundant_puts=1)
        else:
            self._note("put", key, "stored", stored, puts=1)
        return self._backend.entry_path(key)

    # -- management ----------------------------------------------------------

    def stats(self) -> StoreStats:
        """Backend index totals combined with the session counters.

        Keeps working on a degraded store: if the backend index itself
        cannot be read, the on-disk totals are reported as zero and the
        session counters (which live in this process) still tell the
        story — health endpoints must not 500 because the disk did.
        """
        try:
            entries, total_bytes, disk_bytes = self._backend.stats()
        except Exception:
            entries, total_bytes, disk_bytes = 0, 0, 0
        return StoreStats(
            directory=str(self._backend.path),
            entries=entries,
            total_bytes=total_bytes,
            hits=self.hits,
            misses=self.misses,
            puts=self.puts,
            invalid=self.invalid,
            redundant_puts=self.redundant_puts,
            backend=self._backend.kind,
            disk_bytes=disk_bytes,
            retries=self.retries,
            skipped_puts=self.skipped_puts,
            mode=self.mode,
            degraded_reason=self.degraded_reason,
        )

    def stats_by_runner(self):
        """Entries/bytes grouped by runner-spec digest, biggest first.

        Answered by the backend's ``runner_digest`` index (the SQLite
        backend's indexed GROUP BY — no payload is unpacked); backends
        without a runner index raise
        :class:`~repro.exceptions.ConfigurationError`.  Returns
        :class:`~repro.store.backend.RunnerStats` rows.
        """
        return self._backend.stats_by_runner()

    def gc(self, max_entries: Optional[int] = None,
           max_bytes: Optional[int] = None) -> int:
        """Prune oldest-first until within the given budgets.

        Either budget may be ``None`` (unbounded); with both ``None`` this
        is a no-op.  Returns the number of entries removed.  "Oldest" is
        file mtime for the JSON backend and insertion order for SQLite.
        """
        if max_entries is not None and max_entries < 0:
            raise ConfigurationError("max_entries must be >= 0")
        if max_bytes is not None and max_bytes < 0:
            raise ConfigurationError("max_bytes must be >= 0")
        return self._backend.gc(max_entries, max_bytes)

    def invalidate(self, prefix: str = "") -> int:
        """Remove every entry whose key starts with ``prefix`` (default: all).

        Returns the number of entries removed.  Invalidation is how a user
        forces re-simulation after changing something the key does not
        cover (in-tree simulator edits are covered by
        :func:`source_digest`; this handles everything else).
        """
        return self._backend.invalidate(prefix)

    def close(self) -> None:
        """Release backend resources (connections); idempotent."""
        self._backend.close()


def migrate_store(source: "StoreArg", dest: "StoreArg") -> int:
    """Copy every entry of ``source`` into ``dest``; returns the count.

    Keys are preserved verbatim and each record round-trips through
    rehydration (:meth:`SweepStore.get`) and a deterministic re-snapshot
    (:meth:`SweepStore.put`), so the destination rehydrates bit-identical
    records under an identical key set — whichever direction the backends
    convert in.  Entries the source cannot serve (corrupt, stale schema)
    are skipped, exactly as a reader would skip them.  Existing
    destination entries are left untouched (write-once puts).
    """
    src = resolve_store(source)
    dst = resolve_store(dest)
    if src is None or dst is None:
        raise ConfigurationError("migrate needs explicit source and "
                                 "destination stores")
    migrated = 0
    for key in src.backend.entries():
        record = src.get(key)
        if record is None:
            continue
        dst.put(key, record)
        migrated += 1
    return migrated


#: What :func:`resolve_store` accepts (and, transitively, the ``store=``
#: argument of every sweep-backed ``run``): an open store or backend, a
#: directory path or ``sqlite://`` URI, ``None`` for the environment
#: default, ``False`` to disable.
StoreArg = Union["SweepStore", StoreBackend, str, os.PathLike, None, bool]


def resolve_store(store: StoreArg,
                  fault_injector: Optional[FaultInjector] = None
                  ) -> Optional[SweepStore]:
    """Normalise a user-facing ``store=`` argument to an open store.

    * :class:`SweepStore` — returned as-is;
    * a :class:`~repro.store.backend.StoreBackend` — wrapped;
    * a path or ``sqlite://PATH`` URI — opened (created if missing);
    * ``None`` — the :data:`STORE_ENV_VAR` environment default (no store
      when unset/empty);
    * ``False`` — explicitly no store, even when the variable is set.

    ``fault_injector`` is forwarded to any :class:`SweepStore` this call
    constructs (an already-open store keeps its own), which is how the
    serve daemon threads one injector through a store it opens itself.
    """
    if isinstance(store, SweepStore):
        return store
    if store is None:
        env = os.environ.get(STORE_ENV_VAR, "").strip()
        return (SweepStore(env, fault_injector=fault_injector) if env
                else None)
    if store is False:
        return None
    if isinstance(store, (str, os.PathLike, StoreBackend)):
        return SweepStore(store, fault_injector=fault_injector)
    raise ConfigurationError(
        f"store must be a SweepStore, a StoreBackend, a path, a sqlite:// "
        f"URI, None or False, not {type(store).__name__}")
