"""Figure 4 — training throughput versus CPU cores per GPU.

With the dataset fully cached (no fetch stalls), the paper sweeps the number
of pre-processing cores per GPU and finds that compute-heavy models
(ResNet50) need only 3–4 cores per GPU while light models (ResNet18, AlexNet)
need 12–24 to mask prep stalls.  This experiment reproduces the sweep using
CPU-only prep (the sweep isolates CPU scaling, as in the paper's figure) and
reports throughput normalised to the GPU ingestion rate.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import ALEXNET, MOBILENET_V2, RESNET18, RESNET50, ModelSpec
from repro.dsanalyzer.whatif import cores_needed_per_gpu
from repro.experiments.base import ExperimentResult, SWEEP_SCALE, scaled_dataset
from repro.sim.single_server import SingleServerTraining

DEFAULT_MODELS = (RESNET18, ALEXNET, MOBILENET_V2, RESNET50)
DEFAULT_CORES_PER_GPU = (1, 2, 3, 6, 12, 24)


def run(scale: float = SWEEP_SCALE, models: Optional[Sequence[ModelSpec]] = None,
        cores_per_gpu: Sequence[int] = DEFAULT_CORES_PER_GPU,
        dataset_name: str = "imagenet-1k", num_gpus: int = 1,
        seed: int = 0) -> ExperimentResult:
    """Reproduce the throughput-vs-cores sweep and the cores-needed summary."""
    chosen = list(models) if models is not None else list(DEFAULT_MODELS)
    dataset = scaled_dataset(dataset_name, scale, seed)
    result = ExperimentResult(
        experiment_id="fig4",
        title="Fig. 4 — throughput vs CPU cores per GPU (dataset fully cached)",
        columns=["model", "cores_per_gpu", "throughput", "gpu_rate",
                 "prep_stall_pct", "cores_needed_per_gpu"],
        notes=["paper: 3-4 cores/GPU suffice for ResNet50; 12-24 for ResNet18/AlexNet"],
    )
    for model in chosen:
        server = config_ssd_v100(cache_bytes=dataset.total_bytes * 1.2)
        needed = cores_needed_per_gpu(model, dataset, server, max_cores_per_gpu=32)
        gpu_rate = model.aggregate_gpu_rate(server.gpu, num_gpus)
        for cores in cores_per_gpu:
            total_cores = min(cores * num_gpus, server.physical_cores)
            training = SingleServerTraining(model, dataset, server, num_epochs=2)
            sim = training.run("dali-shuffle", num_gpus=num_gpus, cores=total_cores,
                               gpu_prep=False, seed=seed)
            epoch = sim.run.steady_epoch()
            result.add_row(
                model=model.name,
                cores_per_gpu=cores,
                throughput=epoch.throughput,
                gpu_rate=gpu_rate,
                prep_stall_pct=100.0 * epoch.prep_stall_fraction,
                cores_needed_per_gpu=needed,
            )
    return result
