"""Unit tests for the pre-processing cost models and worker pools."""

import pytest

from repro.exceptions import ConfigurationError
from repro.prep.pipeline import PrepPipeline
from repro.prep.transforms import (
    Transform,
    audio_pipeline,
    dali_image_pipeline,
    expansion_factor,
    pillow_image_pipeline,
    pipeline_for_task,
)
from repro.prep.workers import WorkerPool


class TestTransforms:
    def test_cost_scales_with_item_size(self):
        decode = dali_image_pipeline()[0]
        assert decode.cpu_cost(200_000) > decode.cpu_cost(100_000)

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            Transform("bad", cpu_seconds_per_byte=-1.0)

    def test_pillow_is_slower_than_dali(self):
        dali_cost = sum(t.cpu_cost(150_000) for t in dali_image_pipeline())
        pillow_cost = sum(t.cpu_cost(150_000) for t in pillow_image_pipeline())
        assert pillow_cost > 1.5 * dali_cost

    def test_image_pipelines_have_stochastic_stages(self):
        assert any(t.stochastic for t in dali_image_pipeline())
        assert any(t.stochastic for t in audio_pipeline())

    def test_pipeline_for_task_dispatch(self):
        assert pipeline_for_task("audio_classification") == audio_pipeline()
        assert pipeline_for_task("image_classification", "pytorch") == pillow_image_pipeline()
        with pytest.raises(ConfigurationError):
            pipeline_for_task("quantum_chromodynamics")

    def test_expansion_factor_matches_paper_range(self):
        # Pre-processed items are 5-7x larger than raw (Sec. 4.3).
        assert 5.0 <= expansion_factor("image_classification") <= 7.0


class TestPrepPipeline:
    def test_calibration_anchor_24_cores_near_735_mbps(self):
        """Fig. 1: the full DALI CPU pipeline sustains ~735 MB/s on 24 cores."""
        pipeline = PrepPipeline.for_task("image_classification")
        pool = WorkerPool(physical_cores=24)
        item_bytes = 150_000.0
        rate = pool.prep_rate(pipeline, item_bytes)        # samples/s
        mbps = rate * item_bytes / 1e6
        assert mbps == pytest.approx(735, rel=0.15)

    def test_gpu_offload_moves_cost_off_the_cpu(self):
        pipeline = PrepPipeline.for_task("image_classification")
        cpu_only = pipeline.sample_cost(150_000, gpu_offload=False)
        offloaded = pipeline.sample_cost(150_000, gpu_offload=True)
        assert offloaded.cpu_core_seconds < cpu_only.cpu_core_seconds
        assert offloaded.gpu_seconds > 0
        assert cpu_only.gpu_seconds == 0

    def test_stochastic_flag_propagates(self):
        pipeline = PrepPipeline.for_task("image_classification")
        assert pipeline.has_stochastic_stage

    def test_prepared_bytes_expand(self):
        pipeline = PrepPipeline.for_task("image_classification")
        assert pipeline.prepared_bytes(100_000) == pytest.approx(600_000)

    def test_cost_scaling(self):
        pipeline = PrepPipeline.for_task("image_classification")
        doubled = pipeline.with_scaled_cost(2.0)
        assert doubled.sample_cost(1e5).cpu_core_seconds == pytest.approx(
            2.0 * pipeline.sample_cost(1e5).cpu_core_seconds)
        with pytest.raises(ConfigurationError):
            pipeline.with_scaled_cost(0.0)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ConfigurationError):
            PrepPipeline([])


class TestWorkerPool:
    def test_rate_scales_linearly_with_physical_cores(self):
        pipeline = PrepPipeline.for_task("image_classification")
        one = WorkerPool(physical_cores=1).prep_rate(pipeline, 150_000)
        six = WorkerPool(physical_cores=6).prep_rate(pipeline, 150_000)
        assert six == pytest.approx(6 * one, rel=0.01)

    def test_hyperthreads_add_only_marginal_throughput(self):
        """Appendix B.1: doubling threads via SMT adds ~30%, not 100%."""
        pipeline = PrepPipeline.for_task("image_classification")
        physical = WorkerPool(physical_cores=24).prep_rate(pipeline, 150_000)
        smt = WorkerPool(physical_cores=24, hyperthreads=24).prep_rate(pipeline, 150_000)
        assert smt == pytest.approx(physical * 1.3, rel=0.02)

    def test_gpu_offload_raises_rate_when_gpus_available(self):
        pipeline = PrepPipeline.for_task("image_classification")
        cpu = WorkerPool(physical_cores=3).prep_rate(pipeline, 150_000)
        gpu = WorkerPool(physical_cores=3, gpu_offload=True).prep_rate(
            pipeline, 150_000, num_gpus_for_offload=1)
        assert gpu > cpu

    def test_split_divides_resources(self):
        pool = WorkerPool(physical_cores=24)
        per_job = pool.split(8)
        assert per_job.physical_cores == pytest.approx(3.0)
        with pytest.raises(ConfigurationError):
            pool.split(0)

    def test_prep_time_for_batch(self):
        pipeline = PrepPipeline.for_task("image_classification")
        pool = WorkerPool(physical_cores=24)
        t = pool.prep_time_for_batch(pipeline, batch_raw_bytes=512 * 150_000.0,
                                     batch_size=512)
        rate = pool.prep_rate(pipeline, 150_000.0)
        assert t == pytest.approx(512 / rate, rel=0.01)
        assert pool.prep_time_for_batch(pipeline, 0.0, 0) == 0.0

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(physical_cores=0, hyperthreads=0)
