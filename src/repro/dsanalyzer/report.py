"""Human-readable DS-Analyzer reports.

Formats a :class:`~repro.dsanalyzer.profiler.PipelineProfile` and a set of
predictions into the kind of summary DS-Analyzer prints for practitioners:
component rates (in both samples/s and MB/s, Fig. 1 style), the current
bottleneck, and the cache/CPU recommendations.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.dsanalyzer.predictor import DataStallPredictor, Prediction
from repro.dsanalyzer.profiler import PipelineProfile
from repro.dsanalyzer.whatif import CacheSizeRecommendation


def format_profile(profile: PipelineProfile, title: str = "DS-Analyzer profile") -> str:
    """Render the measured component rates as a small table."""
    rows = [
        ("GPU ingestion rate (G)", profile.gpu_rate),
        ("Prep rate (P)", profile.prep_rate),
        ("Storage fetch rate (S)", profile.storage_rate),
        ("Cache fetch rate (C)", profile.cache_rate),
    ]
    lines = [title, "-" * len(title)]
    lines.append(f"{'component':<28}{'samples/s':>14}{'MB/s':>12}")
    for name, rate in rows:
        lines.append(f"{name:<28}{rate:>14,.0f}{profile.rate_to_mbps(rate):>12,.0f}")
    lines.append(f"{'GPUs':<28}{profile.num_gpus:>14d}")
    lines.append(f"{'prep cores':<28}{profile.cores:>14.1f}")
    return "\n".join(lines)


def format_prediction(prediction: Prediction) -> str:
    """Render one what-if prediction as a single line."""
    return (
        f"cache={prediction.cache_fraction:>5.0%}  "
        f"F={prediction.fetch_rate:>10,.0f}  "
        f"P={prediction.prep_rate:>10,.0f}  "
        f"G={prediction.gpu_rate:>10,.0f}  "
        f"speed={prediction.training_speed:>10,.0f} samples/s  "
        f"[{prediction.bottleneck.value}]"
    )


def format_sweep(predictions: Sequence[Prediction],
                 title: str = "Cache-size sweep") -> str:
    """Render a cache-fraction sweep (Fig. 16)."""
    lines: List[str] = [title, "-" * len(title)]
    lines.extend(format_prediction(p) for p in predictions)
    return "\n".join(lines)


def format_recommendation(rec: CacheSizeRecommendation) -> str:
    """Render the optimal-cache-size recommendation."""
    gib = rec.optimal_cache_bytes / (1024 ** 3)
    return (
        f"Recommended cache: {rec.optimal_cache_fraction:.0%} of the dataset "
        f"({gib:.1f} GiB); beyond this training is {rec.bottleneck_beyond_optimum.value} "
        f"at {rec.speed_at_optimum:,.0f} samples/s."
    )


def summarize(predictor: DataStallPredictor, cache_fraction: float) -> str:
    """One-paragraph summary for a specific cache size."""
    prediction = predictor.predict(cache_fraction)
    profile = predictor.profile
    return "\n".join([
        format_profile(profile),
        "",
        format_prediction(prediction),
        "",
        f"Fetch stall: {prediction.fetch_stall_fraction:.0%} of epoch time; "
        f"prep stall: {prediction.prep_stall_fraction:.0%} of epoch time.",
    ])
