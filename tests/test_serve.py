"""Tests for the what-if sweep service (``repro.serve``).

The concurrency + fault harness this PR is pinned by:

* **wire protocol** — runner/point/record round-trips, unknown fields and
  non-catalog factories rejected (the RCE-by-configuration guard);
* **byte identity through the daemon** — served records rehydrate
  byte-identical to a serial :meth:`~repro.sim.sweep.SweepRunner.run`,
  and to the committed golden snapshots, cold and warm;
* **coalescing under concurrency** — N >= 8 overlapping concurrent HTTP
  requests: every response byte-identical to serial, each unique point
  simulated **at most once** (fenced by instrumentation, not timing);
* **fault injection** — a crashed simulation degrades to recomputation
  (never wrong bytes, never a hung request), a deterministically failing
  point fails alone, a truncated store entry mid-request degrades to a
  miss and is repaired;
* **deadlines** — a request over its deadline gets its completed points
  plus explicit ``timed_out`` markers, and a slow request never blocks an
  unrelated fast one (no head-of-line blocking across batches);
* **batcher properties** (Hypothesis) — any interleaving of overlapping
  requests coalesces to exactly-once simulation per unique point, with
  every request answered in its own input order.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.configs import config_hdd_1080ti, config_ssd_v100
from repro.compute.model_zoo import ALEXNET, RESNET18
from repro.exceptions import ConfigurationError
from repro.pipeline.stats import EpochStats, TrainingRunStats
from repro.serve import (
    CoalescingBatcher,
    ServeClient,
    ServeDaemon,
    ServeError,
    point_from_wire,
    point_to_wire,
    record_from_wire,
    record_to_wire,
    runner_from_wire,
    runner_to_wire,
)
from repro.sim.harness import GOLDEN_GRIDS, load_golden, snapshot_diff
from repro.sim.sweep import SweepPoint, SweepRecord, SweepRunner
from repro.store import SweepStore, store_key

SCALE = 1 / 500.0

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"


def _runner(**overrides) -> SweepRunner:
    settings_ = dict(scale=SCALE, seed=0)
    settings_.update(overrides)
    return SweepRunner(settings_.pop("server_factory", config_ssd_v100),
                       **settings_)


def _points():
    return [
        SweepPoint(model=RESNET18, loader="coordl", dataset="openimages",
                   cache_fraction=0.5),
        SweepPoint(model=RESNET18, loader="dali-shuffle", dataset="openimages",
                   cache_fraction=0.5),
    ]


@pytest.fixture
def daemon(tmp_path):
    """In-process daemon on a free port, fresh store, in-process simulation."""
    with ServeDaemon(port=0, store=tmp_path / "store") as running:
        yield running


@pytest.fixture
def client(daemon):
    return ServeClient(daemon.url)


def _count_simulations(monkeypatch):
    """Fence off simulation: every ``_run_point`` call appends its point."""
    simulated = []
    original = SweepRunner._run_point
    lock = threading.Lock()

    def counting(self, point):
        with lock:
            simulated.append(point)
        return original(self, point)

    monkeypatch.setattr(SweepRunner, "_run_point", counting)
    return simulated


class TestProtocol:
    def test_runner_round_trip(self):
        runner = _runner(seed=3, queue_depth=8, fast_path=False)
        rebuilt = runner_from_wire(json.loads(json.dumps(
            runner_to_wire(runner))))
        assert rebuilt.spec() == runner.spec()

    def test_point_round_trip(self):
        point = _points()[0]
        rebuilt = point_from_wire(json.loads(json.dumps(point_to_wire(point))))
        assert rebuilt == point

    def test_unknown_point_field_rejected(self):
        wire = point_to_wire(_points()[0])
        wire["rm_rf"] = "/"
        with pytest.raises(ConfigurationError, match="unknown point fields"):
            point_from_wire(wire)

    def test_non_catalog_factory_rejected(self):
        wire = runner_to_wire(_runner())
        wire["server_factory"] = "os:system"
        with pytest.raises(ConfigurationError, match="not servable"):
            runner_from_wire(wire)

    def test_non_callable_factory_rejected(self):
        wire = runner_to_wire(_runner())
        wire["server_factory"] = "repro.cluster.configs:_CONFIGS"
        with pytest.raises(ConfigurationError, match="callable"):
            runner_from_wire(wire)

    def test_record_round_trip_is_exact(self):
        record = _runner().run(_points()[:1]).records[0]
        rebuilt = record_from_wire(json.loads(json.dumps(
            record_to_wire(record))))
        assert (rebuilt.snapshot(include_timeline=True)
                == record.snapshot(include_timeline=True))


class TestEndpoints:
    def test_health(self, client, daemon):
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["store"] == str(daemon.store.directory)
        assert payload["store_backend"] == "json"

    def test_sqlite_backed_daemon_serves_warm_hits(self, tmp_path,
                                                   monkeypatch):
        """A sqlite:// store URI works end to end through the daemon."""
        uri = f"sqlite://{tmp_path / 'store.db'}"
        with ServeDaemon(port=0, store=uri) as running:
            client = ServeClient(running.url)
            assert client.health()["store_backend"] == "sqlite"
            runner, points = _runner(), _points()
            served = client.whatif(runner, points)
            serial = _runner().run(points)
            for got, expected in zip(served, serial.records):
                assert (got.record.snapshot(include_timeline=True)
                        == expected.snapshot(include_timeline=True))
            simulated = _count_simulations(monkeypatch)
            warm = client.whatif(runner, points)
            assert [r.status for r in warm] == ["ok", "ok"]
            assert simulated == []

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/v1/nope")
        assert excinfo.value.status == 404

    def test_bad_json_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._request("POST", "/v1/whatif", {"runner": "not-a-dict"})
        assert excinfo.value.status == 400

    def test_experiment_endpoint(self, client):
        payload = client.experiment("fig8")
        assert payload["id"] == "fig8"
        assert payload["rows"]
        assert "Fig. 8" in payload["table"]

    def test_report_endpoint_with_only_filter(self, client):
        markdown = client.report(scale=SCALE, only=["fig3"])
        assert "Fig. 3" in markdown
        assert "Fig. 4" not in markdown

    def test_report_unknown_id_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.report(only=["nope"])
        assert excinfo.value.status == 400

    def test_stats_counts_requests(self, client):
        client.health()
        payload = client.stats()
        assert payload["requests"] >= 1
        assert payload["latency"]["count"] >= 1


class TestByteIdentity:
    def test_served_equals_serial(self, client):
        runner, points = _runner(), _points()
        served = client.whatif(runner, points)
        serial = _runner().run(points)
        assert [r.status for r in served] == ["ok", "ok"]
        for got, expected in zip(served, serial.records):
            assert (got.record.snapshot(include_timeline=True)
                    == expected.snapshot(include_timeline=True))

    def test_warm_pass_simulates_nothing(self, client, monkeypatch):
        runner, points = _runner(), _points()
        client.whatif(runner, points)
        simulated = _count_simulations(monkeypatch)
        warm = client.whatif(runner, points)
        assert [r.status for r in warm] == ["ok", "ok"]
        assert simulated == []

    @pytest.mark.parametrize("name", ["fig3_small", "fig9d_small"])
    def test_golden_grid_over_http(self, client, name):
        grid = GOLDEN_GRIDS[name]
        for _pass in ("cold", "warm"):
            served = client.whatif(grid.build_runner(), grid.points())
            snapshot = {"records": [r.record.snapshot() for r in served]}
            assert snapshot_diff(load_golden(name, GOLDEN_DIR), snapshot) == []


class TestConcurrency:
    def test_overlapping_requests_coalesce_and_match_serial(
            self, client, monkeypatch):
        """N=9 concurrent overlapping requests: byte-identical to serial,
        each unique point simulated at most once."""
        simulated = _count_simulations(monkeypatch)
        fractions = (0.35, 0.5, 0.8)
        universe = [SweepPoint(model=model, loader="coordl",
                               dataset="openimages", cache_fraction=fraction)
                    for model in (RESNET18, ALEXNET)
                    for fraction in fractions]
        # Nine requests, each an overlapping window of the universe.
        requests = [[universe[i % len(universe)],
                     universe[(i + 1) % len(universe)],
                     universe[(i + 2) % len(universe)]]
                    for i in range(9)]
        responses = [None] * len(requests)
        errors = []

        def ask(slot, points):
            try:
                responses[slot] = client.whatif(_runner(), points)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=ask, args=(slot, points))
                   for slot, points in enumerate(requests)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not errors
        served_simulated = list(simulated)  # before the serial reference run
        serial = _runner().run(universe)
        expected = {
            store_key(_runner().point_spec(point)):
                record.snapshot(include_timeline=True)
            for point, record in zip(universe, serial.records)
        }
        for points, response in zip(requests, responses):
            assert response is not None
            assert [r.status for r in response] == ["ok"] * len(points)
            for point, result in zip(points, response):
                key = store_key(_runner().point_spec(point))
                assert (result.record.snapshot(include_timeline=True)
                        == expected[key])
        # At-most-once: six unique points; dedup + store mean nothing is
        # simulated twice no matter how the nine requests interleaved.
        simulated_keys = [store_key(_runner().point_spec(p))
                          for p in served_simulated]
        assert len(simulated_keys) == len(set(simulated_keys))
        assert set(simulated_keys) <= set(expected)


class TestFaultInjection:
    def test_crashed_simulation_degrades_to_recomputation(
            self, client, monkeypatch):
        """A transient worker crash mid-request: the retry recomputes, the
        response is still byte-identical to serial."""
        crashed = []
        original = SweepRunner._run_point

        def crash_once(self, point):
            if not crashed:
                crashed.append(point)
                raise OSError("simulated worker crash")
            return original(self, point)

        monkeypatch.setattr(SweepRunner, "_run_point", crash_once)
        points = _points()
        served = client.whatif(_runner(), points)
        assert crashed, "the fault was never injected"
        assert [r.status for r in served] == ["ok", "ok"]
        monkeypatch.setattr(SweepRunner, "_run_point", original)
        serial = _runner().run(points)
        for got, expected in zip(served, serial.records):
            assert (got.record.snapshot(include_timeline=True)
                    == expected.snapshot(include_timeline=True))

    def test_deterministic_failure_fails_alone(self, client, monkeypatch):
        """A point that always fails yields status=error for itself only —
        no hung request, no poisoned neighbours."""
        original = SweepRunner._run_point
        poison, healthy = _points()

        def failing(self, point):
            if point == poison:
                raise OSError("this point always crashes")
            return original(self, point)

        monkeypatch.setattr(SweepRunner, "_run_point", failing)
        served = client.whatif(_runner(), [poison, healthy])
        assert served[0].status == "error"
        assert "always crashes" in served[0].error
        assert served[1].status == "ok"
        monkeypatch.setattr(SweepRunner, "_run_point", original)
        expected = _runner().run([healthy]).records[0]
        assert (served[1].record.snapshot(include_timeline=True)
                == expected.snapshot(include_timeline=True))

    def test_truncated_store_entry_degrades_to_recomputation(
            self, client, daemon, monkeypatch):
        """Corrupting a stored entry between requests: the daemon re-simulates
        and repairs — never serves wrong bytes, never hangs."""
        points = _points()
        cold = client.whatif(_runner(), points)
        entries = sorted(daemon.store.directory.glob("??/*.json"))
        assert len(entries) == len(points)
        entries[0].write_text(entries[0].read_text()[: 40])  # truncate
        simulated = _count_simulations(monkeypatch)
        warm = client.whatif(_runner(), points)
        assert [r.status for r in warm] == ["ok", "ok"]
        assert len(simulated) == 1  # only the corrupted entry recomputed
        for got, expected in zip(warm, cold):
            assert (got.record.snapshot(include_timeline=True)
                    == expected.record.snapshot(include_timeline=True))
        # ... and the store was repaired: a third pass is pure hits.
        del simulated[:]
        client.whatif(_runner(), points)
        assert simulated == []


class TestDeadlines:
    def test_deadline_returns_partial_results_with_marker(
            self, client, monkeypatch):
        """A request over its deadline gets completed points plus explicit
        timed_out markers; the simulation still lands in the store."""
        original = SweepRunner._run_point
        fast, slow = _points()

        def sleepy(self, point):
            if point == slow:
                time.sleep(3.0)
            return original(self, point)

        monkeypatch.setattr(SweepRunner, "_run_point", sleepy)
        served = client.whatif(_runner(), [fast, slow], deadline_s=1.0)
        assert served[0].status == "ok"
        assert served[1].status == "timed_out"
        assert served[1].record is None
        # The slow simulation keeps running into the store: asking again
        # (with a generous deadline) is answered without re-simulating it.
        monkeypatch.setattr(SweepRunner, "_run_point", original)
        again = client.whatif(_runner(), [fast, slow], deadline_s=30.0)
        assert [r.status for r in again] == ["ok", "ok"]

    def test_slow_request_does_not_block_fast_one(self, client, monkeypatch):
        """No head-of-line blocking: a fast request submitted while a slow
        batch is mid-flight completes well before the slow one."""
        original = SweepRunner._run_point
        slow_point = SweepPoint(model=RESNET18, loader="coordl",
                                dataset="openimages", cache_fraction=0.25)
        fast_point = SweepPoint(model=RESNET18, loader="coordl",
                                dataset="openimages", cache_fraction=0.75)

        def sleepy(self, point):
            if point == slow_point:
                time.sleep(4.0)
            return original(self, point)

        monkeypatch.setattr(SweepRunner, "_run_point", sleepy)
        slow_done = threading.Event()

        def ask_slow():
            client.whatif(_runner(), [slow_point])
            slow_done.set()

        slow_thread = threading.Thread(target=ask_slow)
        slow_thread.start()
        time.sleep(0.5)  # let the slow batch dispatch and start simulating
        start = time.monotonic()
        fast = client.whatif(_runner(seed=1), [fast_point])
        fast_elapsed = time.monotonic() - start
        assert [r.status for r in fast] == ["ok"]
        assert not slow_done.is_set(), "slow batch finished too early to prove anything"
        assert fast_elapsed < 2.0
        slow_thread.join(30)


# -- Hypothesis: batcher coalescing properties --------------------------------

#: Small universe of distinct points the property test draws requests from.
_UNIVERSE = [
    SweepPoint(model=model, loader="coordl", dataset="openimages",
               cache_fraction=fraction)
    for model in (RESNET18, ALEXNET)
    for fraction in (0.3, 0.6, 0.9)
]


def _stub_record(point: SweepPoint) -> SweepRecord:
    """Cheap, deterministic, store-round-trippable record for one point."""
    run = TrainingRunStats()
    run.add(EpochStats(
        epoch_time_s=1.0 + (_UNIVERSE.index(point) if point in _UNIVERSE
                            else 0.0),
        gpu_time_s=0.25, prep_limited_time_s=0.5, samples=100))
    return SweepRecord(point=point, dataset_name=point.dataset,
                       loader_name=point.loader, run=run)


@settings(max_examples=25, deadline=None)
@given(requests=st.lists(
    st.lists(st.integers(min_value=0, max_value=len(_UNIVERSE) - 1),
             min_size=1, max_size=4),
    min_size=1, max_size=6))
def test_batcher_coalesces_any_interleaving(requests, tmp_path_factory):
    """Any pattern of overlapping requests: the union is simulated exactly
    once per unique point, and every request gets exactly its own points
    back, resolved, in input order."""
    simulated = []
    lock = threading.Lock()
    original = SweepRunner._run_point

    def stub(self, point):
        with lock:
            simulated.append(point)
        return _stub_record(point)

    store = SweepStore(tmp_path_factory.mktemp("batcher-prop") / "store")
    SweepRunner._run_point = stub
    try:
        with CoalescingBatcher(store=store, window_s=0.005) as batcher:
            runner = _runner()
            tickets = []
            threads = []

            def submit(points):
                tickets.append((points, batcher.submit(runner, points)))

            for indices in requests:
                points = [_UNIVERSE[i] for i in indices]
                thread = threading.Thread(target=submit, args=(points,))
                threads.append(thread)
                thread.start()
            for thread in threads:
                thread.join(30)
            outcomes = [(points, ticket.wait(60.0))
                        for points, ticket in tickets]
    finally:
        SweepRunner._run_point = original

    # Every request: exactly its own points, in input order, all resolved.
    assert len(outcomes) == len(requests)
    for points, results in outcomes:
        assert [o.point for o in results] == points
        assert all(o.status == "ok" for o in results)
        for outcome in results:
            assert (outcome.record.snapshot(include_timeline=True)
                    == _stub_record(outcome.point).snapshot(
                        include_timeline=True))
    # Exactly-once simulation of the union: in-flight dedup merges racing
    # requests, the store answers everything after.
    requested = {store_key(runner.point_spec(_UNIVERSE[i]))
                 for indices in requests for i in indices}
    simulated_keys = [store_key(runner.point_spec(p)) for p in simulated]
    assert len(simulated_keys) == len(set(simulated_keys))
    assert set(simulated_keys) == requested
