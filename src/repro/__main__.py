"""Allow ``python -m repro ...`` to reach the CLI."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
