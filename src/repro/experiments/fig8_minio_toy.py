"""Figure 8 — MinIO versus the page cache on the paper's 4-item example.

The figure walks a dataset of four items (A–D) with a two-item cache through
two epochs: MinIO incurs exactly the two capacity misses per epoch, while the
LRU page cache can thrash and miss up to all four.  This experiment replays
the example (and a slightly larger randomized variant) and reports misses per
epoch for both policies.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cache.minio import MinIOCache
from repro.cache.page_cache import PageCache
from repro.datasets.catalog import DatasetSpec
from repro.datasets.dataset import SyntheticDataset
from repro.datasets.sampler import RandomSampler
from repro.experiments.base import ExperimentResult


def _epoch_misses(cache, order: Sequence[int], dataset: SyntheticDataset) -> int:
    misses = 0
    for item in order:
        item = int(item)
        if not cache.lookup(item):
            misses += 1
            cache.admit(item, dataset.item_size(item))
    return misses


def run(num_items: int = 4, cache_items: int = 2, num_epochs: int = 2,
        seed: int = 7) -> ExperimentResult:
    """Reproduce the toy MinIO-vs-page-cache trace of Fig. 8."""
    spec = DatasetSpec(name="toy", task="image_classification", num_items=num_items,
                       mean_item_bytes=1024.0, item_size_cv=0.0)
    dataset = SyntheticDataset(spec, seed=seed)
    capacity = sum(dataset.item_size(i) for i in range(cache_items)) + 1.0
    sampler = RandomSampler(num_items, seed=seed)

    minio = MinIOCache(capacity)
    lru = PageCache(capacity, page_bytes=1.0)
    # Warm both caches with one epoch, as in the figure ("after warmup, the
    # cache has two items").
    warm_order = sampler.epoch(0)
    _epoch_misses(minio, warm_order, dataset)
    _epoch_misses(lru, warm_order, dataset)

    result = ExperimentResult(
        experiment_id="fig8",
        title="Fig. 8 — cache misses per epoch: MinIO vs LRU page cache "
              f"({num_items} items, cache of {cache_items})",
        columns=["epoch", "minio_misses", "page_cache_misses", "capacity_misses"],
        notes=["paper: MinIO incurs only the capacity misses (2/epoch); the page "
               "cache can miss 2-4 times per epoch because of thrashing"],
    )
    capacity_misses = num_items - cache_items
    for epoch in range(1, num_epochs + 1):
        order = sampler.epoch(epoch)
        result.add_row(
            epoch=epoch,
            minio_misses=_epoch_misses(minio, order, dataset),
            page_cache_misses=_epoch_misses(lru, order, dataset),
            capacity_misses=capacity_misses,
        )
    return result
