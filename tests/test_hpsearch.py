"""Tests for the HP-search scheduler substrate and end-to-end campaigns."""

import pytest

from repro.cluster.configs import config_hdd_1080ti, config_ssd_v100
from repro.compute.model_zoo import RESNET18
from repro.exceptions import ConfigurationError
from repro.hpsearch.campaign import SearchCampaign
from repro.hpsearch.scheduler import (
    HyperbandScheduler,
    SuccessiveHalvingScheduler,
    Trial,
    sample_trials,
)


class TestTrials:
    def test_sampling_is_deterministic_and_in_range(self):
        a = sample_trials(16, seed=3)
        b = sample_trials(16, seed=3)
        assert [t.learning_rate for t in a] == [t.learning_rate for t in b]
        for trial in a:
            assert 1e-3 <= trial.learning_rate <= 1.0
            assert 0.5 <= trial.momentum <= 0.99

    def test_accuracy_improves_with_training(self):
        import numpy as np
        trial = Trial(0, learning_rate=0.1, momentum=0.9)
        rng = np.random.default_rng(0)
        accuracies = [trial.train_one_epoch(rng) for _ in range(10)]
        assert accuracies[-1] > accuracies[0]

    def test_good_configuration_beats_bad_one(self):
        import numpy as np
        rng = np.random.default_rng(0)
        good = Trial(0, learning_rate=0.1, momentum=0.9)
        bad = Trial(1, learning_rate=0.001, momentum=0.5)
        for _ in range(12):
            good.train_one_epoch(rng)
            bad.train_one_epoch(rng)
        assert good.last_accuracy > bad.last_accuracy

    def test_stopped_trial_cannot_train(self):
        import numpy as np
        trial = Trial(0, 0.1, 0.9, alive=False)
        with pytest.raises(ConfigurationError):
            trial.train_one_epoch(np.random.default_rng(0))

    def test_sampling_validation(self):
        with pytest.raises(ConfigurationError):
            sample_trials(0)


class TestSuccessiveHalving:
    def test_eliminates_down_to_one_winner(self):
        scheduler = SuccessiveHalvingScheduler(eta=2, min_epochs_per_rung=1,
                                               max_total_epochs_per_trial=8)
        trials = sample_trials(16, seed=1)
        best, rungs = scheduler.run(trials, seed=1)
        assert best.alive
        assert sum(t.alive for t in trials) == 1
        # Survivors shrink by ~eta at every elimination rung.
        elimination_rungs = [r for r in rungs if r.survivors_after < r.survivors_before]
        for rung in elimination_rungs:
            assert rung.survivors_after == max(1, rung.survivors_before // 2)

    def test_decisions_only_at_epoch_boundaries(self):
        """The property coordinated prep relies on (Sec. 4.3)."""
        scheduler = SuccessiveHalvingScheduler(eta=3, min_epochs_per_rung=2,
                                               max_total_epochs_per_trial=6)
        trials = sample_trials(9, seed=2)
        _best, rungs = scheduler.run(trials, seed=2)
        assert all(isinstance(r.epochs, int) and r.epochs >= 1 for r in rungs)

    def test_total_trial_epochs_much_less_than_full_grid(self):
        scheduler = SuccessiveHalvingScheduler(eta=2, min_epochs_per_rung=1,
                                               max_total_epochs_per_trial=8)
        trials = sample_trials(16, seed=1)
        _best, rungs = scheduler.run(trials, seed=1)
        total = scheduler.total_trial_epochs(rungs)
        assert total < 16 * 8          # cheaper than training all trials fully
        assert total >= 16             # every trial trained at least one epoch

    def test_winner_is_a_good_configuration(self):
        scheduler = SuccessiveHalvingScheduler(eta=2, min_epochs_per_rung=2,
                                               max_total_epochs_per_trial=12)
        trials = sample_trials(16, seed=5)
        best, _ = scheduler.run(trials, seed=5)
        median_acc = sorted(t.last_accuracy for t in trials)[len(trials) // 2]
        assert best.last_accuracy >= median_acc

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SuccessiveHalvingScheduler(eta=1)
        with pytest.raises(ConfigurationError):
            SuccessiveHalvingScheduler(min_epochs_per_rung=0)
        with pytest.raises(ConfigurationError):
            SuccessiveHalvingScheduler().run([])


class TestHyperband:
    def test_bracket_structure(self):
        hyperband = HyperbandScheduler(max_epochs_per_trial=9, eta=3)
        assert hyperband.num_brackets == 3
        sizes = hyperband.bracket_sizes()
        # Earlier brackets start with more trials and smaller budgets.
        assert sizes[0][0] >= sizes[-1][0]
        assert sizes[0][1] <= sizes[-1][1]

    def test_run_returns_best_and_budget(self):
        hyperband = HyperbandScheduler(max_epochs_per_trial=9, eta=3)
        best, total_epochs, rungs = hyperband.run(seed=0)
        assert best.last_accuracy > 0.3
        assert total_epochs > 0
        assert set(rungs) == set(range(hyperband.num_brackets))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HyperbandScheduler(max_epochs_per_trial=0)


class TestSearchCampaign:
    @pytest.fixture
    def campaign_args(self, small_dataset):
        server = config_ssd_v100(cache_bytes=small_dataset.total_bytes * 0.75)
        return dict(model=RESNET18, dataset=small_dataset, server=server,
                    num_trials=16, max_epochs_per_trial=4)

    def test_campaign_runs_and_ranks_loaders(self, campaign_args):
        campaign = SearchCampaign(**campaign_args)
        pytorch = campaign.run("pytorch")
        coordl = campaign.run("coordl")
        # Same scheduler decisions, different wall-clock time.
        assert pytorch.total_trial_epochs == coordl.total_trial_epochs
        assert coordl.wall_clock_s < pytorch.wall_clock_s
        assert coordl.best_accuracy == pytest.approx(pytorch.best_accuracy)

    def test_campaign_speedups_on_both_server_skus(self, small_dataset):
        ssd = config_ssd_v100(cache_bytes=small_dataset.total_bytes * 0.75)
        hdd = config_hdd_1080ti(cache_bytes=small_dataset.total_bytes * 0.75)
        ssd_speedup = SearchCampaign(RESNET18, small_dataset, ssd, num_trials=8,
                                     max_epochs_per_trial=2).speedup("pytorch")
        hdd_speedup = SearchCampaign(RESNET18, small_dataset, hdd, num_trials=8,
                                     max_epochs_per_trial=2).speedup("pytorch")
        # Against the slow Pillow-based baseline the coordinated pipeline wins
        # on both SKUs (the paper's end-to-end Fig. 23 result).
        assert ssd_speedup > 1.5
        assert hdd_speedup > 1.5

    def test_unknown_loader_rejected(self, campaign_args):
        campaign = SearchCampaign(**campaign_args)
        with pytest.raises(ConfigurationError):
            campaign.run("tf-data")

    def test_validation(self, campaign_args):
        campaign_args = dict(campaign_args, num_trials=0)
        with pytest.raises(ConfigurationError):
            SearchCampaign(**campaign_args)
