"""Figure 9(d) — hyperparameter search with eight concurrent jobs per server.

Eight single-GPU HP-search jobs on one server each independently fetch and
pre-process the same dataset under the baseline, thrashing the page cache and
splitting the 24 cores eight ways.  CoorDL's coordinated prep + MinIO cache
fetches and preps the dataset exactly once per epoch and shares the staged
minibatches, giving 1.9-5.6x faster per-job training depending on how
data-hungry the model is.  The per-model baseline/CoorDL grid runs through
:class:`~repro.sim.sweep.SweepRunner`'s HP-search points.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.configs import config_hdd_1080ti, config_ssd_v100
from repro.compute.model_zoo import ALL_STALL_MODELS, ModelSpec
from repro.experiments.base import ExperimentResult, SWEEP_SCALE
from repro.sim.sweep import SweepRunner
from repro.units import speedup
from repro.store import PersistentPool, StoreArg


def run(scale: float = SWEEP_SCALE, num_jobs: int = 8, cache_fraction: float = 0.65,
        server_name: str = "ssd-v100", models: Optional[Sequence[ModelSpec]] = None,
        seed: int = 0, workers: Optional[int] = None,
        store: StoreArg = None,
        pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Reproduce the per-model HP-search speedups of Fig. 9(d)."""
    chosen = list(models) if models is not None else list(ALL_STALL_MODELS)
    factory = config_ssd_v100 if server_name == "ssd-v100" else config_hdd_1080ti
    runner = SweepRunner(factory, scale=scale, seed=seed)
    sweep = runner.run(SweepRunner.grid(
        models=chosen, loaders=["hp-baseline", "hp-coordl"],
        cache_fractions=[cache_fraction], num_jobs=num_jobs, gpus_per_job=1),
        workers=workers, store=store, pool=pool)
    result = ExperimentResult(
        experiment_id="fig9d",
        title=f"Fig. 9(d) — {num_jobs}-job HP search: CoorDL vs DALI ({factory().name})",
        columns=["model", "dataset", "dali_job_throughput", "coordl_job_throughput",
                 "speedup", "dali_disk_gb", "coordl_disk_gb", "staging_peak_gb"],
        notes=["paper: ~3x for AlexNet/ShuffleNet, 5.6x for the M5 audio model, "
               "1.9x for ResNet50 on Config-SSD-V100"],
    )
    for model in chosen:
        baseline_rec = sweep.one(model=model, loader="hp-baseline")
        coordl_rec = sweep.one(model=model, loader="hp-coordl")
        baseline, coordl = baseline_rec.hp, coordl_rec.hp
        result.add_row(
            model=model.name,
            dataset=baseline_rec.dataset_name,
            dali_job_throughput=baseline.per_job_throughput,
            coordl_job_throughput=coordl.per_job_throughput,
            speedup=speedup(baseline.epoch_time_s, coordl.epoch_time_s),
            dali_disk_gb=baseline.disk_bytes_per_epoch / 1e9,
            coordl_disk_gb=coordl.disk_bytes_per_epoch / 1e9,
            staging_peak_gb=coordl.staging_peak_bytes / 1e9,
        )
    return result
