"""Command-line interface.

Provides the operations a practitioner would reach for first, without writing
any Python:

* ``python -m repro list-experiments`` — every reproduced table/figure.
* ``python -m repro run-experiment fig9a --scale 0.01`` — regenerate one of
  them and print the table.
* ``python -m repro profile resnet18 openimages config-ssd-v100 --cache 0.65``
  — DS-Analyzer profile + bottleneck classification + cache recommendation.
* ``python -m repro report -o EXPERIMENTS.md`` — regenerate the full
  paper-vs-measured report.
* ``python -m repro store stats`` — inspect/manage the content-addressed
  sweep result store (also ``gc``, ``invalidate``, and ``migrate`` for
  converting between the JSON-directory and ``sqlite://`` backends).
* ``python -m repro serve --store CACHE --workers 4`` — start the
  long-running what-if daemon (one shared store + worker pool; concurrent
  queries coalesce).
* ``python -m repro query --model resnet18 --cache-fraction 0.35`` — ask a
  running daemon a what-if question (also ``--health``, ``--stats``,
  ``--experiment fig3``).
* ``python -m repro dist worker --listen 0.0.0.0:8501`` — run one sweep
  worker agent of the multi-host fabric (``repro.dist``).

``run-experiment`` and ``report`` accept ``--store DIR`` (memoise every
sweep point on disk; a warm re-run reduces to store reads) and
``--no-store``; with neither flag the ``REPRO_SWEEP_STORE`` environment
variable supplies the default store directory.  The sweep-running commands
(``run-experiment``/``report``/``serve``) also accept ``--hosts a:p,b:p``
(default: ``REPRO_SWEEP_HOSTS``) to run misses on remote worker agents
through a :class:`repro.dist.DistExecutor` instead of local processes —
results are byte-identical either way.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.cluster.configs import (
    get_server_config,
    get_server_factory,
    server_config_names,
)
from repro.compute.model_zoo import get_model
from repro.datasets.catalog import get_dataset_spec
from repro.datasets.dataset import SyntheticDataset
from repro.dsanalyzer.predictor import DataStallPredictor
from repro.dsanalyzer.profiler import DSAnalyzerProfiler
from repro.dsanalyzer.report import format_recommendation, summarize
from repro.dsanalyzer.whatif import optimal_cache_fraction
from repro.exceptions import ConfigurationError
from repro.experiments import registry
from repro.experiments.base import SWEEP_SCALE
from repro.experiments.report_generator import generate
from repro.store import STORE_ENV_VAR, StoreArg, SweepStore, resolve_store


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Analyzing and Mitigating Data Stalls in "
                    "DNN Training' (DS-Analyzer + CoorDL).")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-experiments", help="list every reproduced table/figure")

    run = sub.add_parser("run-experiment", help="regenerate one table/figure")
    run.add_argument("experiment_id", help="id from list-experiments, e.g. fig9a")
    run.add_argument("--scale", type=float, default=SWEEP_SCALE,
                     help="dataset scale fraction (default 1/100)")
    run.add_argument("--workers", type=int, default=None,
                     help="worker processes for the experiment's sweep grid "
                          "(default: REPRO_SWEEP_WORKERS or serial; results "
                          "are identical for every value)")
    _add_store_flags(run)
    _add_hosts_flag(run)

    profile = sub.add_parser("profile", help="DS-Analyzer profile for a model")
    profile.add_argument("model", help="model name, e.g. resnet18")
    profile.add_argument("dataset", help="dataset name, e.g. openimages")
    profile.add_argument("server", help="server config, e.g. config-ssd-v100")
    profile.add_argument("--cache", type=float, default=0.35,
                         help="cached fraction of the dataset (default 0.35)")
    profile.add_argument("--scale", type=float, default=SWEEP_SCALE,
                         help="dataset scale fraction (default 1/100)")
    profile.add_argument("--gpu-prep", action="store_true",
                         help="profile with DALI GPU-assisted prep")

    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report.add_argument("-o", "--output", default="EXPERIMENTS.md")
    report.add_argument("--scale", type=float, default=SWEEP_SCALE)
    report.add_argument("--workers", type=int, default=None,
                        help="worker processes for the sweep-backed experiments")
    _add_store_flags(report)
    _add_hosts_flag(report)

    store = sub.add_parser(
        "store", help="manage the content-addressed sweep result store")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    stats = store_sub.add_parser("stats", help="entry count and byte totals")
    stats.add_argument("--by-runner", action="store_true",
                       help="group entries/bytes by runner spec digest "
                            "(SQLite backend: answered by the runner_digest "
                            "index without unpacking payloads)")
    gc = store_sub.add_parser("gc", help="prune oldest entries to a budget")
    gc.add_argument("--max-entries", type=int, default=None,
                    help="keep at most this many entries")
    gc.add_argument("--max-bytes", type=int, default=None,
                    help="keep at most this many bytes of entries")
    invalidate = store_sub.add_parser(
        "invalidate", help="drop entries (all, or by key prefix) to force "
                           "re-simulation, e.g. after simulator changes")
    invalidate.add_argument("--prefix", default="",
                            help="only drop keys starting with this hex prefix")
    migrate = store_sub.add_parser(
        "migrate", help="copy every entry into another store backend "
                        "(JSON directory <-> sqlite:// database), "
                        "preserving keys and record bytes")
    migrate.add_argument("--to", dest="dest", required=True, metavar="STORE",
                         help="destination store: a directory or a "
                              "sqlite://FILE URI")
    for command in (stats, gc, invalidate, migrate):
        command.add_argument("--store", dest="store_dir", default=None,
                             help="store location: a directory or a "
                                  f"sqlite://FILE URI (default: "
                                  f"${STORE_ENV_VAR})")

    serve = sub.add_parser(
        "serve", help="start the long-running what-if sweep daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8421,
                       help="listen port (0 picks a free one; default 8421)")
    serve.add_argument("--workers", type=int, default=0,
                       help="persistent worker pool size shared by every "
                            "query (0: simulate on the serving threads)")
    serve.add_argument("--window", type=float, default=None, metavar="SECONDS",
                       help="batching window: how long the daemon waits to "
                            "coalesce overlapping queries into one sweep run")
    serve.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                       help="default per-request deadline for queries that "
                            "do not carry one")
    serve.add_argument("--max-inflight", type=int, default=None, metavar="N",
                       help="admission limit on concurrently-running sweep "
                            "requests; excess requests get 503 + Retry-After "
                            "(default 64)")
    serve.add_argument("--point-retries", type=int, default=None, metavar="N",
                       help="re-runs a failing point gets before its error "
                            "is served (default 1)")
    _add_store_flags(serve)
    _add_hosts_flag(serve)

    query = sub.add_parser(
        "query", help="query a running serve daemon (what-if / experiment)")
    query.add_argument("--url", default="http://127.0.0.1:8421",
                       help="daemon base URL (default http://127.0.0.1:8421)")
    action = query.add_mutually_exclusive_group()
    action.add_argument("--health", action="store_true",
                        help="print the daemon's health payload and exit")
    action.add_argument("--stats", action="store_true",
                        help="print store/batcher/latency statistics and exit")
    action.add_argument("--experiment", metavar="ID",
                        help="run a registered experiment on the daemon")
    action.add_argument("--model", help="what-if: model name, e.g. resnet18")
    query.add_argument("--loader", default="coordl",
                       help="what-if: loader kind (default coordl)")
    query.add_argument("--dataset", default=None,
                       help="what-if: dataset name (default: the model's)")
    query.add_argument("--cache-fraction", type=float, action="append",
                       dest="cache_fractions", metavar="FRACTION",
                       help="what-if: cached fraction of the dataset "
                            "(repeatable; one point per value)")
    query.add_argument("--server-config", default="config-ssd-v100",
                       choices=server_config_names(),
                       help="what-if: server SKU (default config-ssd-v100)")
    query.add_argument("--scale", type=float, default=SWEEP_SCALE,
                       help="dataset scale fraction (default 1/100)")
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--num-epochs", type=int, default=2)
    query.add_argument("--num-jobs", type=int, default=None,
                       help="what-if: concurrent jobs (HP-search / crash / "
                            "multi-tenant kinds)")
    query.add_argument("--num-servers", type=int, default=None,
                       help="what-if: servers (distributed / elastic / "
                            "straggler kinds)")
    query.add_argument("--tenants", type=int, default=None,
                       help="what-if: HP campaigns sharing the page cache "
                            "(hp-multitenant)")
    query.add_argument("--crash", action="append", dest="crashes",
                       metavar="EPOCH:JOB",
                       help="what-if: crash job JOB at epoch EPOCH "
                            "(repeatable; coordl-crash)")
    query.add_argument("--membership", action="append", dest="memberships",
                       metavar="EPOCH:COUNT",
                       help="what-if: resize the partition to COUNT servers "
                            "at epoch EPOCH (repeatable; coordl-elastic)")
    query.add_argument("--straggler", action="append", type=float,
                       dest="stragglers", metavar="FACTOR",
                       help="what-if: per-rank fetch degradation factor "
                            "(repeatable, rank order; coordl-straggler)")
    query.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS", help="per-request deadline; late "
                       "points come back marked timed_out")
    query.add_argument("--retries", type=int, default=None, metavar="N",
                       help="re-sends after a refused/reset connection or a "
                            "503 rejection, with capped exponential backoff "
                            "(default 3; 0 disables)")

    dist = sub.add_parser(
        "dist", help="multi-host sweep fabric (repro.dist) agents")
    dist_sub = dist.add_subparsers(dest="dist_command", required=True)
    worker = dist_sub.add_parser(
        "worker", help="run one sweep worker agent: accept driver "
                       "connections, execute point chunks, stream records")
    worker.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                        help="bind address; port 0 picks a free one "
                             "(default 127.0.0.1:0; the bound address is "
                             "printed on stdout)")
    worker.add_argument("--workers", type=int, default=0,
                        help="local fan-out per chunk: 0/1 executes serially "
                             "on the connection thread, N>=2 through an "
                             "agent-owned process pool (default 0)")
    return parser


def _add_store_flags(parser: argparse.ArgumentParser) -> None:
    """``--store DIR`` / ``--no-store`` on the sweep-running commands."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--store", dest="store_dir", default=None,
                       help="content-addressed result store directory: "
                            "already-simulated sweep points are rehydrated "
                            "byte-identically instead of recomputed "
                            f"(default: ${STORE_ENV_VAR} when set)")
    group.add_argument("--no-store", action="store_true",
                       help=f"disable the result store even when "
                            f"${STORE_ENV_VAR} is set")


def _store_arg(args: argparse.Namespace) -> StoreArg:
    """Normalise the parsed store flags to a ``store=`` argument."""
    if getattr(args, "no_store", False):
        return False
    return args.store_dir  # None falls through to the env-var default


def _add_hosts_flag(parser: argparse.ArgumentParser) -> None:
    """``--hosts a:p,b:p`` on the sweep-running commands."""
    from repro.dist.protocol import HOSTS_ENV_VAR

    parser.add_argument("--hosts", default=None, metavar="HOST:PORT,...",
                        help="run sweep misses on these remote worker agents "
                             "(repro dist worker) instead of local processes; "
                             "results are byte-identical either way "
                             f"(default: ${HOSTS_ENV_VAR} when set)")


def _dist_executor(args: argparse.Namespace):
    """Build a :class:`DistExecutor` from ``--hosts``/env, or ``None``."""
    from repro.dist import DistExecutor, resolve_hosts

    hosts = resolve_hosts(getattr(args, "hosts", None))
    if hosts is None:
        return None
    return DistExecutor(hosts)


def _cmd_list_experiments() -> int:
    for experiment_id in registry.experiment_ids():
        print(experiment_id)
    return 0


def _cmd_run_experiment(experiment_id: str, scale: float,
                        workers: Optional[int], store: StoreArg,
                        executor=None) -> int:
    kwargs = {} if experiment_id == "fig8" else {"scale": scale}
    if workers is not None:
        if not registry.accepts_kwarg(experiment_id, "workers"):
            print(f"{experiment_id} has no sweep grid to parallelise; "
                  "ignoring --workers", file=sys.stderr)
        else:
            kwargs["workers"] = workers
    if store is not None:
        if not registry.accepts_kwarg(experiment_id, "store"):
            print(f"{experiment_id} has no sweep grid to memoise; "
                  "ignoring --store/--no-store", file=sys.stderr)
        else:
            kwargs["store"] = store
    if executor is not None:
        if not registry.accepts_kwarg(experiment_id, "pool"):
            print(f"{experiment_id} has no sweep grid to distribute; "
                  "ignoring --hosts", file=sys.stderr)
        else:
            kwargs["pool"] = executor
    try:
        result = registry.run_experiment(experiment_id, **kwargs)
    finally:
        if executor is not None:
            executor.close()
    print(result.format_table())
    return 0


def _cmd_profile(model_name: str, dataset_name: str, server_name: str,
                 cache_fraction: float, scale: float, gpu_prep: bool) -> int:
    model = get_model(model_name)
    dataset = SyntheticDataset(get_dataset_spec(dataset_name), scale=scale)
    server = get_server_config(server_name)
    profiler = DSAnalyzerProfiler(model, dataset, server, gpu_prep=gpu_prep)
    predictor = DataStallPredictor(profiler.profile())
    print(summarize(predictor, cache_fraction))
    print()
    print(format_recommendation(optimal_cache_fraction(predictor, dataset)))
    return 0


def _cmd_report(output: str, scale: float, workers: Optional[int],
                store: StoreArg, executor=None) -> int:
    try:
        generate(output, scale, workers=workers, store=store, pool=executor)
    finally:
        if executor is not None:
            executor.close()
    print(f"wrote {output}")
    return 0


def _open_store(store_dir: Optional[str]) -> SweepStore:
    """Open the store named by ``--store`` or the environment; else fail."""
    store = resolve_store(store_dir)  # None falls back to $REPRO_SWEEP_STORE
    if store is None:
        raise ConfigurationError(
            f"no store directory: pass --store DIR or set ${STORE_ENV_VAR}")
    return store


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store import migrate_store

    store = _open_store(args.store_dir)
    if args.store_command == "stats":
        stats = store.stats()
        print(f"store {stats.directory} [{stats.backend}]: "
              f"{stats.entries} entries, {stats.total_bytes:,} bytes "
              f"({stats.disk_bytes:,} on disk)")
        if getattr(args, "by_runner", False):
            for row in store.stats_by_runner():
                print(f"  runner {row.runner_digest or '(unknown)'}: "
                      f"{row.entries} entries, {row.payload_bytes:,} bytes")
    elif args.store_command == "gc":
        removed = store.gc(max_entries=args.max_entries,
                           max_bytes=args.max_bytes)
        stats = store.stats()
        print(f"gc removed {removed} entries; {stats.entries} entries, "
              f"{stats.total_bytes:,} bytes remain")
    elif args.store_command == "migrate":
        dest = SweepStore(args.dest)
        migrated = migrate_store(store, dest)
        stats = dest.stats()
        print(f"migrated {migrated} entries to {stats.directory} "
              f"[{stats.backend}]: {stats.entries} entries, "
              f"{stats.total_bytes:,} bytes")
    else:  # invalidate (argparse enforces the choices)
        removed = store.invalidate(prefix=args.prefix)
        what = f"prefix {args.prefix!r}" if args.prefix else "all entries"
        print(f"invalidated {removed} entries ({what})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeDaemon
    from repro.serve.batcher import DEFAULT_WINDOW_S
    from repro.serve.server import DEFAULT_DEADLINE_S

    from repro.dist.protocol import resolve_hosts

    extra = {}
    if args.max_inflight is not None:
        extra["max_inflight"] = args.max_inflight
    if args.point_retries is not None:
        extra["point_retries"] = args.point_retries
    hosts = resolve_hosts(args.hosts)
    if hosts is not None:
        extra["hosts"] = [f"{host}:{port}" for host, port in hosts]
    daemon = ServeDaemon(
        args.host, args.port, store=_store_arg(args), workers=args.workers,
        window_s=DEFAULT_WINDOW_S if args.window is None else args.window,
        default_deadline_s=(DEFAULT_DEADLINE_S if args.deadline is None
                            else args.deadline),
        **extra)
    backend = ("off" if daemon.pool is None
               else f"{daemon.pool.workers} (hosts: "
                    f"{','.join(h for h in getattr(daemon.pool, 'hosts', []))})"
               if hosts is not None else str(daemon.pool.workers))
    print(f"serving on {daemon.url} "
          f"(store: {daemon.store.directory if daemon.store else 'off'}, "
          f"pool workers: {backend})",
          flush=True)
    daemon.serve_forever()
    return 0


def _cmd_dist(args: argparse.Namespace) -> int:
    from repro.dist import LISTENING_PREFIX, DistWorker, parse_hosts

    # argparse enforces dist_command == "worker" (the only subcommand)
    ((host, port),) = parse_hosts(args.listen)
    agent = DistWorker(host, port, workers=max(0, args.workers))
    print(f"{LISTENING_PREFIX}{agent.endpoint}", flush=True)
    agent.serve_forever()
    return 0


def _parse_pair(spec: str, flag: str) -> tuple:
    """Parse a ``EPOCH:VALUE`` CLI pair into an int 2-tuple."""
    parts = spec.split(":")
    if len(parts) != 2:
        raise ConfigurationError(f"{flag}: expected two ints, got {spec!r}")
    try:
        return (int(parts[0]), int(parts[1]))
    except ValueError:
        raise ConfigurationError(
            f"{flag}: expected two ints, got {spec!r}") from None


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient
    from repro.sim.sweep import SweepPoint, SweepRunner

    client = (ServeClient(args.url) if args.retries is None
              else ServeClient(args.url, retries=args.retries))
    if args.health:
        print(json.dumps(client.health(), indent=2))
        return 0
    if args.stats:
        print(json.dumps(client.stats(), indent=2))
        return 0
    if args.experiment:
        payload = client.experiment(args.experiment, scale=args.scale)
        print(payload["table"])
        return 0
    if not args.model:
        raise ConfigurationError(
            "nothing to query: pass --health, --stats, --experiment ID, or "
            "a what-if question (--model ... [--cache-fraction ...])")
    model = get_model(args.model)
    fractions = args.cache_fractions or [None]
    runner = SweepRunner(get_server_factory(args.server_config),
                         scale=args.scale, seed=args.seed)
    extra = {}
    if args.num_jobs is not None:
        extra["num_jobs"] = args.num_jobs
    if args.num_servers is not None:
        extra["num_servers"] = args.num_servers
    if args.tenants is not None:
        extra["tenants"] = args.tenants
    if args.crashes:
        extra["crash_schedule"] = tuple(
            _parse_pair(spec, "--crash EPOCH:JOB") for spec in args.crashes)
    if args.memberships:
        extra["membership_schedule"] = tuple(
            _parse_pair(spec, "--membership EPOCH:COUNT")
            for spec in args.memberships)
    if args.stragglers:
        extra["straggler_factors"] = tuple(args.stragglers)
    points = [SweepPoint(model=model, loader=args.loader,
                         dataset=args.dataset, cache_fraction=fraction,
                         num_epochs=args.num_epochs, **extra)
              for fraction in fractions]
    results = client.whatif(runner, points, deadline_s=args.deadline)
    exit_code = 0
    for point, result in zip(points, results):
        cache = ("server default" if point.cache_fraction is None
                 else f"{100 * point.cache_fraction:g}% cached")
        header = f"{point.model.name} / {point.loader} / {cache}"
        if result.status == "ok":
            row = result.record.row()
            metrics = ", ".join(
                f"{name} {row[name]:.4g}" for name in
                ("epoch_time_s", "throughput", "cache_miss_ratio")
                if isinstance(row.get(name), (int, float)))
            print(f"{header}: {metrics}")
        else:
            exit_code = 1
            detail = f" ({result.error})" if result.error else ""
            print(f"{header}: {result.status}{detail}")
    return exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list-experiments":
        return _cmd_list_experiments()
    if args.command == "run-experiment":
        return _cmd_run_experiment(args.experiment_id, args.scale, args.workers,
                                   _store_arg(args), _dist_executor(args))
    if args.command == "profile":
        return _cmd_profile(args.model, args.dataset, args.server,
                            args.cache, args.scale, args.gpu_prep)
    if args.command == "report":
        return _cmd_report(args.output, args.scale, args.workers,
                           _store_arg(args), _dist_executor(args))
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "dist":
        return _cmd_dist(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
