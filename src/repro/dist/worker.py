"""The worker-agent side of the multi-host sweep fabric.

A :class:`DistWorker` is one long-running agent process (``repro dist
worker --listen HOST:PORT``): it accepts driver connections, rebuilds
sweep substrates from the runner specs it receives, executes point chunks
and streams byte-exact :meth:`~repro.sim.sweep.SweepRecord.snapshot`
frames back as each point completes.

Substrate reuse is the :class:`~repro.store.PersistentPool` discipline,
literally: a wire spec is converted back to the picklable spec tuple and
handed to :func:`repro.store.pool._worker_runner`, so an agent keeps one
rebuilt :class:`~repro.sim.sweep.SweepRunner` per spec and shares the
module-level dataset/sampler memo dicts across every runner configuration
it ever serves — a dataset is materialised at most once per agent (or, at
``--workers N``, once per pool worker) no matter how many drivers or grids
connect.

Execution is serial on the connection thread at ``workers<=1``; at
``workers>=2`` the agent owns a supervised :class:`PersistentPool`, so one
agent fans a chunk out over local processes and inherits the kill/respawn
recovery contract.  Either way results are byte-identical: per-point
seeding (:meth:`~repro.sim.sweep.SweepRunner.point_seed`) is independent
of scheduling, worker count and host placement.

Failures never tear the connection down: a point that raises travels back
as a ``point_error`` frame (message + worker traceback), and the chunk
still completes with a ``chunk_done`` barrier — the driver folds errors
into the ordinary sweep failure protocol.  The agent keeps no store: hits
are resolved driver-side, and the driver writes results back, so agents
are storage-free by construction (the same parent-side-only store rule
the local pool follows).

:class:`LocalWorkerFleet` spawns agents as localhost subprocesses — the
harness the dist tests, ``tools/dist_check.py`` and the CI ``dist`` leg
build their two-host topologies (and their host-death faults: a fleet can
SIGKILL one live agent mid-chunk) from.
"""

from __future__ import annotations

import os
import pathlib
import signal
import socket
import subprocess
import sys
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.dist.protocol import (
    DIST_PROTOCOL_VERSION,
    recv_frame,
    send_frame,
    spec_from_wire,
)
from repro.sim.sweep import clamp_workers, _execute_point_task
from repro.serve.protocol import point_from_wire

#: Stdout line an agent prints (flushed) once its socket is bound; the
#: fleet spawner parses the address out of it, which is how ``--listen
#: host:0`` (kernel-assigned port) stays usable from scripts.
LISTENING_PREFIX = "repro-dist-worker listening on "


class DistWorker:
    """One sweep worker agent: listen, rebuild substrates, stream records.

    Args:
        host / port: Bind address; ``port=0`` picks a free port (readable
            from :attr:`address` after construction).
        workers: Local fan-out per chunk.  ``0``/``1`` executes points
            serially on the connection thread; ``N>=2`` runs chunks
            through an agent-owned supervised
            :class:`~repro.store.PersistentPool` (clamped to the core
            count, like every worker knob).

    Use :meth:`serve_forever` from the CLI, or :meth:`start` /
    :meth:`close` (also a context manager) from tests, which serve on a
    background accept thread.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 0) -> None:
        if workers < 0:
            raise ConfigurationError("workers must be >= 0")
        self._workers = clamp_workers(workers) if workers else 0
        self._pool = None  # built lazily: only if a chunk ever needs it
        self._pool_lock = threading.Lock()
        self._listener = socket.create_server((host, port))
        self._closed = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self.chunks_served = 0
        self.points_served = 0
        self._stats_lock = threading.Lock()

    @property
    def address(self) -> Tuple[str, int]:
        """Actually-bound ``(host, port)`` — resolves ``port=0`` requests."""
        host, port = self._listener.getsockname()[:2]
        return host, port

    @property
    def endpoint(self) -> str:
        """The ``host:port`` string drivers pass in their host lists."""
        host, port = self.address
        return f"{host}:{port}"

    @property
    def workers(self) -> int:
        """Local fan-out (0 = serial on the connection thread)."""
        return self._workers

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "DistWorker":
        """Accept connections on a background thread (idempotent)."""
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="repro-dist-accept",
                daemon=True)
            self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept connections on the calling thread (the CLI path)."""
        try:
            self._accept_loop()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self.close()

    def close(self) -> None:
        """Stop accepting and release the pool (idempotent)."""
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.close(drain=False)
        if self._accept_thread is not None:
            self._accept_thread.join(5.0)
            self._accept_thread = None

    def __enter__(self) -> "DistWorker":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- connection handling -------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:  # listener closed
                return
            thread = threading.Thread(target=self._handle, args=(conn,),
                                      name="repro-dist-conn", daemon=True)
            thread.start()

    def _handle(self, conn: socket.socket) -> None:
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        try:
            while True:
                try:
                    frame = recv_frame(conn)
                except ConnectionError:  # driver went away
                    return
                kind = frame.get("type")
                if kind == "hello":
                    if frame.get("protocol") != DIST_PROTOCOL_VERSION:
                        send_frame(conn, {
                            "type": "error",
                            "error": f"protocol mismatch: agent speaks "
                                     f"{DIST_PROTOCOL_VERSION}"})
                        return
                    send_frame(conn, {"type": "hello",
                                      "protocol": DIST_PROTOCOL_VERSION,
                                      "pid": os.getpid(),
                                      "workers": self._workers})
                elif kind == "ping":
                    send_frame(conn, {"type": "pong"})
                elif kind == "run_chunk":
                    self._run_chunk(conn, frame)
                elif kind == "shutdown":
                    send_frame(conn, {"type": "bye"})
                    return
                else:
                    send_frame(conn, {"type": "error",
                                      "error": f"unknown frame {kind!r}"})
                    return
        except (ConnectionError, OSError):  # driver died mid-send
            return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # -- chunk execution -----------------------------------------------------

    def _shared_pool(self):
        """The agent's local pool, built on first pooled chunk."""
        from repro.store.pool import PersistentPool  # local: import cycle

        with self._pool_lock:
            if self._pool is None:
                self._pool = PersistentPool(self._workers)
            return self._pool

    def _run_chunk(self, conn: socket.socket, frame: Dict[str, Any]) -> None:
        chunk_id = frame.get("id")
        try:
            spec = spec_from_wire(frame.get("spec"))
            tasks = [(int(index), point_from_wire(wire))
                     for index, wire in frame.get("points", [])]
            if not tasks:
                raise ConfigurationError("run_chunk carried no points")
        except ConfigurationError as exc:
            # A malformed chunk fails every point it named (or the chunk
            # itself when the point list is unreadable) without tearing the
            # connection down — the driver folds this into SweepPointError.
            indices = [pair[0] for pair in frame.get("points", [])
                       if isinstance(pair, (list, tuple)) and pair]
            for index in indices or [-1]:
                send_frame(conn, {"type": "point_error", "id": chunk_id,
                                  "index": index, "error": str(exc),
                                  "traceback": ""})
            send_frame(conn, {"type": "chunk_done", "id": chunk_id,
                              "ok": 0, "failed": max(1, len(indices))})
            return

        ok = 0
        failed = 0
        delivered = set()

        def stream(index: int, record) -> None:
            nonlocal ok
            delivered.add(index)
            ok += 1
            send_frame(conn, {
                "type": "record", "id": chunk_id, "index": index,
                "snapshot": record.snapshot(include_timeline=True)})

        if self._workers >= 2 and len(tasks) > 1:
            failed = self._run_pooled(conn, chunk_id, spec, tasks,
                                      stream, delivered)
        else:
            failed = self._run_serial(conn, chunk_id, spec, tasks, stream)
        with self._stats_lock:
            self.chunks_served += 1
            self.points_served += ok
        send_frame(conn, {"type": "chunk_done", "id": chunk_id,
                          "ok": ok, "failed": failed})

    def _run_serial(self, conn, chunk_id, spec, tasks, stream) -> int:
        """Execute a chunk on this thread via the pool's worker-side caches."""
        from repro.store.pool import _worker_runner  # local: import cycle

        runner = _worker_runner(spec)
        failed = 0
        for index, point in tasks:
            index, record, failure = _execute_point_task(runner, index, point)
            if failure is not None:
                exc, traceback_text = failure
                failed += 1
                send_frame(conn, {
                    "type": "point_error", "id": chunk_id, "index": index,
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback_text or ""})
            else:
                stream(index, record)
        return failed

    def _run_pooled(self, conn, chunk_id, spec, tasks, stream,
                    delivered) -> int:
        """Fan a chunk out over the agent's local supervised pool.

        The pool raises its usual lowest-failure
        :class:`~repro.exceptions.SweepPointError` *after* draining, with
        every success already streamed through ``on_record`` — so the
        undelivered indices are exactly the failed (or lost) ones, and
        each travels back as a ``point_error`` carrying the pool's
        diagnosis.
        """
        from repro.exceptions import SweepPointError

        try:
            self._shared_pool().run_points(spec, tasks, on_record=stream)
            return 0
        except SweepPointError as exc:
            failed = 0
            for index, _point in tasks:
                if index in delivered:
                    continue
                failed += 1
                send_frame(conn, {
                    "type": "point_error", "id": chunk_id, "index": index,
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": exc.child_traceback or ""})
            return failed


class LocalWorkerFleet:
    """Spawn N localhost worker agents as subprocesses (tests + CI gate).

    Each agent is a real ``python -m repro dist worker`` process bound to
    a kernel-assigned port, so the fleet exercises the genuine process and
    socket failure domains — :meth:`kill_one` SIGKILLs a live agent, which
    is exactly the ``host-death`` fault the scheduler must survive.

    Use as a context manager; :attr:`endpoints` is the ``host:port`` list
    a :class:`~repro.dist.DistExecutor` takes.
    """

    def __init__(self, count: int, workers: int = 0,
                 startup_timeout_s: float = 30.0) -> None:
        if count < 1:
            raise ConfigurationError("a fleet needs >= 1 agents")
        self._procs: List[subprocess.Popen] = []
        self.endpoints: List[str] = []
        src_root = pathlib.Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(src_root) + os.pathsep +
                             env.get("PYTHONPATH", "")).rstrip(os.pathsep)
        try:
            for _ in range(count):
                proc = subprocess.Popen(
                    [sys.executable, "-m", "repro", "dist", "worker",
                     "--listen", "127.0.0.1:0", "--workers", str(workers)],
                    stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                    env=env, text=True)
                self._procs.append(proc)
                self.endpoints.append(
                    self._read_endpoint(proc, startup_timeout_s))
        except Exception:
            self.close()
            raise

    @staticmethod
    def _read_endpoint(proc: subprocess.Popen, timeout_s: float) -> str:
        """Parse the agent's flushed listening line off its stdout."""
        deadline_timer = threading.Timer(timeout_s, proc.kill)
        deadline_timer.start()
        try:
            assert proc.stdout is not None
            for line in proc.stdout:
                if line.startswith(LISTENING_PREFIX):
                    return line[len(LISTENING_PREFIX):].strip()
            raise ConfigurationError(
                "worker agent exited before announcing its address")
        finally:
            deadline_timer.cancel()

    @property
    def alive(self) -> List[subprocess.Popen]:
        return [proc for proc in self._procs if proc.poll() is None]

    def kill_one(self) -> Optional[int]:
        """SIGKILL one live agent (the host-death fault); returns its pid."""
        for proc in self._procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=10)
                return proc.pid
        return None

    def close(self) -> None:
        """Terminate every agent (idempotent)."""
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait(timeout=10)
            if proc.stdout is not None:
                proc.stdout.close()

    def __enter__(self) -> "LocalWorkerFleet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
