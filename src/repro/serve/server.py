"""The long-running what-if sweep daemon (stdlib HTTP, JSON in/out).

:class:`ServeDaemon` holds the serving substrate open across requests —
one shared :class:`~repro.store.SweepStore` (every answer lands in it;
warm questions are file reads), one shared
:class:`~repro.store.PersistentPool` (spawned once, reused by every
query) and one :class:`~repro.serve.batcher.CoalescingBatcher` (overlapping
concurrent queries coalesce into shared sweep runs) — and answers JSON
over HTTP through a :class:`http.server.ThreadingHTTPServer` (one thread
per connection; all shared state is lock-guarded by construction).

Endpoints (all payloads defined in :mod:`repro.serve.protocol`):

====================  ====  =====================================================
``/v1/health``        GET   liveness + configuration echo
``/v1/stats``         GET   store / batcher / latency statistics
``/v1/whatif``        POST  ``{"runner": .., "points": [..], "deadline_s": ..}``
                            → per-point records (fully-invertible snapshots),
                            with explicit ``timed_out`` / ``error`` markers
``/v1/experiment``    POST  ``{"id": "fig3", "scale": ..}`` → the registered
                            experiment's tidy table (shared store + pool)
``/v1/report``        POST  ``{"scale": .., "only": [..]}`` → EXPERIMENTS.md
                            markdown (shared store + pool)
====================  ====  =====================================================

Deadlines are per-request (``deadline_s``; the daemon's default applies
when absent): a request whose points are still simulating when its
deadline passes gets its completed points plus ``timed_out`` markers for
the rest — the simulation keeps running and its results land in the
store, so asking again is cheap.  Responses carry request latency; the
daemon aggregates latencies for ``/v1/stats`` percentiles (what the CI
serve gate uploads as ``BENCH_serve.json``).

Resilience: sweep-running POSTs pass admission control — at most
``max_inflight`` run concurrently; excess requests get ``503`` with a
``Retry-After`` header instead of queueing unboundedly.  ``close()``
drains by default: new sweeps are rejected (``503 draining``) while
requests already admitted run to completion.  ``/v1/health`` reports
per-subsystem degradation (store mode, pool respawns, batcher retries,
admission pressure) so an operator — or the chaos gate — can see a
daemon that is alive but limping.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.experiments import registry
from repro.experiments.report_generator import generate
from repro.serve.batcher import (
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_WINDOW_S,
    CoalescingBatcher,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    RETRY_AFTER_HEADER,
    points_from_wire,
    record_to_wire,
    runner_from_wire,
)
from repro.resilience.faults import FaultInjector, active_injector
from repro.store import PersistentPool, StoreArg, resolve_store

#: Default per-request deadline when a query does not carry one.  Generous
#: — it exists so an abandoned connection can never pin a request thread
#: forever, not to race healthy queries.
DEFAULT_DEADLINE_S = 300.0

#: Maximum accepted request body (simple flood guard; grids are small).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Default admission limit on concurrently-running sweep POSTs.  Each
#: admitted request pins one handler thread until its deadline, so the
#: limit bounds thread growth under a flood; well above anything the
#: coalescing tests throw at a daemon.
DEFAULT_MAX_INFLIGHT = 64

#: Seconds suggested in ``Retry-After`` on admission rejection.
RETRY_AFTER_S = 1

#: Bound on how long ``close(drain=True)`` waits for admitted requests.
DRAIN_TIMEOUT_S = 30.0


def latency_percentiles(latencies_s: List[float]) -> Dict[str, float]:
    """p50/p90/p99/max of a latency sample, in milliseconds.

    Nearest-rank percentiles over the sorted sample — no interpolation,
    so tiny samples stay honest.  Empty input returns an empty dict.
    """
    if not latencies_s:
        return {}
    ordered = sorted(latencies_s)
    def rank(q: float) -> float:
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index] * 1000.0
    return {
        "count": len(ordered),
        "p50_ms": round(rank(0.50), 3),
        "p90_ms": round(rank(0.90), 3),
        "p99_ms": round(rank(0.99), 3),
        "max_ms": round(ordered[-1] * 1000.0, 3),
    }


class ServeDaemon:
    """One serving process: store + pool + batcher + HTTP front end.

    Args:
        host / port: Bind address; ``port=0`` picks a free port (the
            in-process test harness uses exactly that), readable from
            :attr:`address` / :attr:`url` after construction.
        store: Shared result store (:class:`~repro.store.StoreArg`
            semantics: a store, a directory path or ``sqlite://PATH``
            URI, ``None`` for the environment default, ``False`` for no
            store).  The SQLite backend's WAL mode gives the serving
            threads real concurrent reads — warm queries never serialise
            behind a writer.
        workers: Size of the shared :class:`~repro.store.PersistentPool`
            simulations fan out over; ``0`` simulates on batch threads
            (in-process — what the tests use).
        hosts: Remote worker agent endpoints (``host:port`` strings or
            ``(host, port)`` pairs).  When given, the daemon's executor is
            a :class:`~repro.dist.DistExecutor` over those agents instead
            of a local pool — results are byte-identical either way.
            Mutually exclusive with ``workers`` (pick the fabric or the
            local pool, not both).
        window_s / max_attempts: Batcher knobs (see
            :class:`~repro.serve.batcher.CoalescingBatcher`).
        point_retries: Alternative spelling of the batcher's retry
            budget: the number of *re-runs* a failing point gets before
            its error is served (``max_attempts = point_retries + 1``).
            Mutually exclusive with ``max_attempts``.
        default_deadline_s: Applied to queries that carry no
            ``deadline_s``.
        max_inflight: Admission limit on concurrently-running sweep
            POSTs (``/v1/whatif`` / ``/v1/experiment`` / ``/v1/report``);
            excess requests get ``503`` + ``Retry-After``.
        fault_injector: Explicit :class:`~repro.resilience.FaultInjector`
            threaded through the store, pool and batcher; defaults to the
            process-wide plan (:func:`~repro.resilience.active_injector`).

    Use as a context manager, or :meth:`start` / :meth:`close` explicitly.
    :meth:`serve_forever` blocks (the CLI's ``repro serve``);
    :meth:`start` serves on a background thread (tests).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8421, *,
                 store: StoreArg = None, workers: int = 0,
                 hosts: Optional[Sequence[Any]] = None,
                 window_s: float = DEFAULT_WINDOW_S,
                 max_attempts: Optional[int] = None,
                 point_retries: Optional[int] = None,
                 default_deadline_s: float = DEFAULT_DEADLINE_S,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT,
                 fault_injector: Optional[FaultInjector] = None) -> None:
        if workers < 0:
            raise ConfigurationError("workers must be >= 0")
        if hosts is not None and workers:
            raise ConfigurationError(
                "pass hosts (remote worker agents) or workers (a local "
                "pool), not both")
        if max_attempts is not None and point_retries is not None:
            raise ConfigurationError(
                "pass max_attempts or point_retries, not both")
        if point_retries is not None:
            if point_retries < 0:
                raise ConfigurationError("point_retries must be >= 0")
            max_attempts = point_retries + 1
        if max_attempts is None:
            max_attempts = DEFAULT_MAX_ATTEMPTS
        if max_inflight < 1:
            raise ConfigurationError("max_inflight must be >= 1")
        self._injector = (fault_injector if fault_injector is not None
                          else active_injector())
        self._store = resolve_store(store, fault_injector=self._injector)
        if hosts is not None:
            from repro.dist import DistExecutor  # local: import cycle

            self._pool = DistExecutor(hosts, fault_injector=self._injector)
        else:
            self._pool = (PersistentPool(workers,
                                         fault_injector=self._injector)
                          if workers else None)
        self._batcher = CoalescingBatcher(
            store=self._store, pool=self._pool, workers=0,
            window_s=window_s, max_attempts=max_attempts,
            fault_injector=self._injector)
        self._default_deadline_s = default_deadline_s
        self._max_inflight = max_inflight
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._latencies_s: List[float] = []
        self._inflight = 0
        self._inflight_done = threading.Condition(self._lock)
        self._draining = False
        self.requests = 0
        self.rejected = 0
        daemon = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *args: Any) -> None:  # quiet by default
                pass

            def do_GET(self) -> None:
                daemon._dispatch(self, "GET")

            def do_POST(self) -> None:
                daemon._dispatch(self, "POST")

        self._http = ThreadingHTTPServer((host, port), Handler)
        self._http.daemon_threads = True
        self._serve_thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """Actually-bound (host, port) — resolves ``port=0`` requests."""
        return self._http.server_address[0], self._http.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def store(self):
        """The shared store (``None`` when serving store-less)."""
        return self._store

    @property
    def pool(self) -> Optional[PersistentPool]:
        """The shared persistent pool (``None`` when ``workers=0``)."""
        return self._pool

    @property
    def batcher(self) -> CoalescingBatcher:
        """The shared coalescing batcher."""
        return self._batcher

    def start(self) -> "ServeDaemon":
        """Serve on a background thread (idempotent); returns self."""
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self._http.serve_forever, name="repro-serve-http",
                daemon=True)
            self._serve_thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        try:
            self._http.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self.close()

    def close(self, drain: bool = True) -> None:
        """Stop serving; by default let admitted requests finish first.

        ``drain=True`` flips the daemon into draining mode (new sweep
        POSTs get ``503 draining``), waits up to :data:`DRAIN_TIMEOUT_S`
        for in-flight requests to complete, then shuts the HTTP server,
        batcher and pool down.  ``drain=False`` skips the wait — in-flight
        sweeps are abandoned mid-run (their results still land in the
        store) and the pool is torn down hard.
        """
        with self._lock:
            self._draining = True
            if drain:
                deadline = time.monotonic() + DRAIN_TIMEOUT_S
                while self._inflight:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._inflight_done.wait(remaining)
        self._http.shutdown()
        self._http.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(5.0)
            self._serve_thread = None
        self._batcher.close()
        if self._pool is not None:
            self._pool.close(drain=drain)

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- request handling ----------------------------------------------------

    def _dispatch(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        start = time.monotonic()
        headers: Dict[str, str] = {}
        try:
            routed = self._route(handler, method)
            if len(routed) == 3:
                status, payload, headers = routed
            else:
                status, payload = routed
        except ConfigurationError as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # never let a handler thread die silently
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        elapsed = time.monotonic() - start
        payload.setdefault("protocol", PROTOCOL_VERSION)
        payload.setdefault("elapsed_s", round(elapsed, 6))
        body = json.dumps(payload).encode("utf-8")
        with self._lock:
            self.requests += 1
            self._latencies_s.append(elapsed)
        try:
            handler.send_response(status)
            handler.send_header("Content-Type", "application/json")
            handler.send_header("Content-Length", str(len(body)))
            for name, value in headers.items():
                handler.send_header(name, value)
            handler.end_headers()
            handler.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass

    def _admit(self) -> Optional[Tuple[int, Dict[str, Any], Dict[str, str]]]:
        """Admission check for sweep-running POSTs.

        Returns ``None`` when admitted (in-flight count bumped; caller
        must release via :meth:`_release`), else the 503 response to
        serve.  Draining beats over-capacity in the reason — a draining
        daemon will not take the request no matter how idle it is.
        """
        with self._lock:
            if self._draining:
                reason = "draining"
            elif self._inflight >= self._max_inflight:
                reason = "over_capacity"
            else:
                self._inflight += 1
                return None
            self.rejected += 1
        return (503,
                {"error": f"service unavailable: {reason}", "reason": reason},
                {RETRY_AFTER_HEADER: str(RETRY_AFTER_S)})

    def _release(self) -> None:
        with self._lock:
            self._inflight -= 1
            self._inflight_done.notify_all()

    def _route(self, handler: BaseHTTPRequestHandler, method: str):
        path = handler.path.split("?", 1)[0].rstrip("/")
        if method == "GET" and path == "/v1/health":
            return 200, self._health_payload()
        if method == "GET" and path == "/v1/stats":
            return 200, self._stats_payload()
        sweep_handlers = {"/v1/whatif": self._handle_whatif,
                          "/v1/experiment": self._handle_experiment,
                          "/v1/report": self._handle_report}
        if method == "POST" and path in sweep_handlers:
            rejection = self._admit()
            if rejection is not None:
                return rejection
            try:
                return sweep_handlers[path](self._read_body(handler))
            finally:
                self._release()
        return 404, {"error": f"no such endpoint: {method} {path}"}

    def _read_body(self, handler: BaseHTTPRequestHandler) -> Dict[str, Any]:
        length = int(handler.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise ConfigurationError("request needs a JSON body")
        if length > MAX_BODY_BYTES:
            raise ConfigurationError(
                f"request body over {MAX_BODY_BYTES} bytes")
        raw = handler.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except ValueError:
            raise ConfigurationError("request body is not valid JSON") from None
        if not isinstance(body, dict):
            raise ConfigurationError("request body must be a JSON object")
        return body

    # -- endpoints -----------------------------------------------------------

    def _subsystems(self) -> Dict[str, Any]:
        """Per-subsystem recovery / degradation counters (health + stats)."""
        with self._lock:
            admission = {"inflight": self._inflight,
                         "max_inflight": self._max_inflight,
                         "rejected": self.rejected,
                         "draining": self._draining}
        subsystems: Dict[str, Any] = {"admission": admission}
        if self._store is not None:
            subsystems["store"] = {
                "mode": self._store.mode,
                "degraded": self._store.degraded,
                "degraded_reason": self._store.degraded_reason,
                "retries": self._store.retries,
                "skipped_puts": self._store.skipped_puts,
            }
        if self._pool is not None:
            subsystems["pool"] = {
                "workers": self._pool.workers,
                "respawns": self._pool.respawns,
                "reruns": self._pool.reruns,
            }
        subsystems["batcher"] = {
            "point_retries": self._batcher.point_retries,
            "inflight_points": self._batcher.inflight_points,
        }
        return subsystems

    def _health_payload(self) -> Dict[str, Any]:
        subsystems = self._subsystems()
        degraded = (subsystems["admission"]["draining"]
                    or subsystems.get("store", {}).get("degraded", False))
        payload = {
            "status": ("draining" if subsystems["admission"]["draining"]
                       else "degraded" if degraded else "ok"),
            "uptime_s": round(time.monotonic() - self._started, 3),
            "store": (str(self._store.directory)
                      if self._store is not None else None),
            "store_backend": (self._store.backend.kind
                              if self._store is not None else None),
            "pool_workers": self._pool.workers if self._pool else 0,
            "subsystems": subsystems,
        }
        if self._injector is not None:
            payload["faults"] = self._injector.snapshot()
        return payload

    def _stats_payload(self) -> Dict[str, Any]:
        with self._lock:
            latencies = list(self._latencies_s)
            requests = self.requests
            rejected = self.rejected
        payload: Dict[str, Any] = {
            "requests": requests,
            "rejected": rejected,
            "latency": latency_percentiles(latencies),
            "batcher": self._batcher.stats(),
            "admission": self._subsystems()["admission"],
        }
        if self._pool is not None:
            payload["pool"] = {"workers": self._pool.workers,
                               "respawns": self._pool.respawns,
                               "reruns": self._pool.reruns}
        if self._store is not None:
            payload["store"] = self._store.stats().to_dict()
        return payload

    def _handle_whatif(self,
                       body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        runner = runner_from_wire(body.get("runner"))
        points = points_from_wire(body.get("points"))
        deadline_s = body.get("deadline_s", self._default_deadline_s)
        if deadline_s is not None:
            deadline_s = float(deadline_s)
            if deadline_s <= 0:
                raise ConfigurationError("deadline_s must be positive")
        ticket = self._batcher.submit(runner, points)
        outcomes = ticket.wait(deadline_s)
        results = []
        for outcome in outcomes:
            item: Dict[str, Any] = {"status": outcome.status}
            if outcome.record is not None:
                item["record"] = record_to_wire(outcome.record)
            if outcome.error is not None:
                item["error"] = outcome.error
            results.append(item)
        return 200, {
            "results": results,
            "timed_out": any(o.status == "timed_out" for o in outcomes),
        }

    def _handle_experiment(self,
                           body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        experiment_id = str(body.get("id", ""))
        if not experiment_id:
            raise ConfigurationError("'id' names the experiment to run")
        kwargs: Dict[str, Any] = {}
        if "scale" in body and registry.accepts_kwarg(experiment_id, "scale"):
            kwargs["scale"] = float(body["scale"])
        for knob, value in (("store", self._store), ("pool", self._pool)):
            if value is not None and registry.accepts_kwarg(experiment_id, knob):
                kwargs[knob] = value
        result = registry.run_experiment(experiment_id, **kwargs)
        return 200, {
            "id": result.experiment_id,
            "title": result.title,
            "columns": result.columns,
            "rows": result.rows,
            "notes": result.notes,
            "table": result.format_table(),
        }

    def _handle_report(self,
                       body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        kwargs: Dict[str, Any] = {"store": self._store or False,
                                  "pool": self._pool}
        if "scale" in body:
            kwargs["scale"] = float(body["scale"])
        only = body.get("only")
        if only is not None:
            if (not isinstance(only, list)
                    or not all(isinstance(x, str) for x in only)):
                raise ConfigurationError("'only' must be a list of experiment ids")
            kwargs["only"] = only
        with tempfile.NamedTemporaryFile("r", suffix=".md") as sink:
            markdown = generate(sink.name, **kwargs)
        return 200, {"markdown": markdown}
