"""Failure & elasticity scenarios — the what-if analysis' unhappy paths.

The paper's analysis (and everything in :mod:`repro.sim` before this
module) assumes a healthy cluster: every job survives the run, membership
is fixed and servers are homogeneous.  Cluster operators asking "should I
buy DRAM or faster disks?" also need the unhappy paths priced in, so this
module simulates four of them on top of the existing substrates:

* **crash** (:meth:`FailureScenario.run_crash`) — coordinated HP-search
  prep where scheduled jobs die mid-epoch.  :class:`~repro.coordl.failure.
  FailureDetector` runs the paper's timeout/report/reassign protocol
  (Sec. 4.4); the epoch pays the detection latency, the re-prep of the
  dead job's shard, and the re-warm of the MinIO slice the crashed worker
  took down with it.
* **elastic** (:meth:`FailureScenario.run_elastic`) — servers join or
  leave a CoorDL partition (:class:`~repro.cache.partitioned.
  PartitionedCacheGroup`) between epochs.  Joiners arrive cold and warm
  through misses; leavers drop their cached bytes, which survivors
  re-fetch from storage.  An empty schedule is exactly the static
  membership run (:meth:`FailureScenario.run_static` — property-tested).
* **straggler** (:meth:`FailureScenario.run_straggler`) — static
  membership, but per-server fetch-side slowdown factors skew the
  network/disk rates; the lockstep epoch is bound by the slowest rank.
* **multi-tenant** (:meth:`FailureScenario.run_multitenant`) — several
  uncoordinated HP campaigns share one server's page cache and split its
  cores, compounding the thrashing of Sec. 3.3.

Every run returns a :class:`FailureScenarioResult`: per-epoch figures plus
a deterministic :class:`~repro.coordl.failure.FailureEvent` trace.  The
trace folds into :meth:`repro.sim.sweep.SweepRecord.snapshot` byte-exactly
— the PRAM-style trace-checking discipline: the golden harness replays the
scenarios at workers=0/1/4 and through the result store, and the committed
trace must come back bit for bit.

All simulations here are analytic/vectorised (the cache masks and byte
sums are exact, never sampled), so results are independent of the
runner's ``fast_path`` toggle except where they delegate to
:class:`~repro.sim.hp_search.HPSearchScenario` (which honours it with
bit-identical results either way).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.cache.minio import MinIOCache
from repro.cache.page_cache import PageCache
from repro.cache.partitioned import PartitionedCacheGroup
from repro.cluster.server import ServerConfig
from repro.compute.model_zoo import ModelSpec
from repro.coordl.failure import (
    FailureDetector,
    FailureEvent,
    RecoveryAction,
    TimeoutReport,
)
from repro.datasets.dataset import SyntheticDataset
from repro.datasets.sampler import DistributedSampler
from repro.exceptions import ConfigurationError, SimulationError
from repro.sim.hp_search import HPSearchScenario
from repro.storage.device import dram
from repro.units import safe_div

__all__ = [
    "FailureEpoch",
    "FailureScenarioResult",
    "FailureScenario",
]


@dataclass
class FailureEpoch:
    """One epoch of a failure/elasticity scenario.

    Attributes:
        epoch_time_s: Wall-clock epoch time, including any failure stall.
        disk_bytes: Bytes read from storage this epoch (all jobs/servers).
        remote_bytes: Bytes served from remote caches (partitioned kinds).
        rewarm_bytes: Cached bytes lost to a crash/leave at this epoch —
            the re-warm debt the following epochs repay through storage.
        stall_s: Failure overhead inside ``epoch_time_s`` (detection
            latency + shard re-prep; 0 for healthy epochs).
        cache_miss_ratio: Item-level miss ratio of the scenario's cache
            this epoch (local misses for the partitioned kinds).
        active: Jobs (crash/multi-tenant) or servers (elastic/straggler)
            participating once this epoch's events are applied.
    """

    epoch_time_s: float
    disk_bytes: float
    remote_bytes: float = 0.0
    rewarm_bytes: float = 0.0
    stall_s: float = 0.0
    cache_miss_ratio: float = 0.0
    active: int = 0


@dataclass
class FailureScenarioResult:
    """Multi-epoch outcome of one failure/elasticity configuration.

    ``events`` is the deterministic trace: crash events carry the
    detector's reassignment, join/leave/straggler events describe the
    membership/skew change with ``-1`` sentinels in the fields that do not
    apply.  The trace is part of the byte-identical snapshot contract.
    """

    loader_name: str
    samples_per_epoch: int
    epochs: List[FailureEpoch] = field(default_factory=list)
    events: List[FailureEvent] = field(default_factory=list)

    @property
    def steady_epoch_time_s(self) -> float:
        """Mean epoch time after the cold-cache warm-up epoch."""
        steady = self.epochs[1:] if len(self.epochs) > 1 else self.epochs
        return sum(e.epoch_time_s for e in steady) / len(steady)

    @property
    def total_disk_bytes(self) -> float:
        """Storage bytes summed over every epoch."""
        return sum(e.disk_bytes for e in self.epochs)

    @property
    def total_rewarm_bytes(self) -> float:
        """Cached bytes lost to crashes/leaves over the whole run."""
        return sum(e.rewarm_bytes for e in self.epochs)

    @property
    def degraded_epochs(self) -> int:
        """Epochs that paid a failure stall or a re-warm."""
        return sum(1 for e in self.epochs if e.stall_s > 0 or e.rewarm_bytes > 0)


class FailureScenario:
    """Simulate the four unhappy-path scenarios on one configuration.

    Args:
        model: Model every job/server trains.
        dataset: Shared dataset.
        server: Server SKU (homogeneous across servers for the
            elastic/straggler kinds; its ``cache_bytes`` is the per-server
            budget there, the shared budget for crash/multi-tenant).
        seed: Scenario seed; drives the samplers, the shard assignment and
            the detector's replacement picking.  The sweep runner passes
            its :meth:`~repro.sim.sweep.SweepRunner.point_seed`.
        fast_path: Forwarded to the delegated
            :class:`~repro.sim.hp_search.HPSearchScenario` paths (exact
            either way); the scenarios' own epoch math is always analytic.
    """

    def __init__(self, model: ModelSpec, dataset: SyntheticDataset,
                 server: ServerConfig, *, seed: int = 0,
                 fast_path: bool = True) -> None:
        self._model = model
        self._dataset = dataset
        self._server = server
        self._seed = seed
        self._fast_path = fast_path

    # -- shared rate-model helpers ------------------------------------------

    def _hp(self, num_jobs: int) -> HPSearchScenario:
        """The HP-search substrate the crash/multi-tenant kinds delegate to."""
        return HPSearchScenario(self._model, self._dataset, self._server,
                                num_jobs=num_jobs, gpus_per_job=1,
                                seed=self._seed, fast_path=self._fast_path)

    def _server_prep_rate(self) -> float:
        """CPU-only DALI prep rate of one whole server (distributed kinds)."""
        hp = self._hp(1)
        prep = hp._prep_pipeline()
        pool = self._server.worker_pool(gpu_offload=False)
        return pool.prep_rate(prep, self._dataset.mean_item_bytes)

    def _server_gpu_rate(self) -> float:
        """Aggregate GPU ingestion rate of one whole server."""
        return self._model.aggregate_gpu_rate(self._server.gpu,
                                              self._server.num_gpus)

    # -- coordl-crash -------------------------------------------------------

    def run_crash(self, num_jobs: int,
                  crash_schedule: Sequence[Tuple[int, int]],
                  num_epochs: int) -> FailureScenarioResult:
        """Coordinated HP-search prep with scheduled worker crashes.

        ``crash_schedule`` is ``(epoch, job)`` pairs (processed in sorted
        order, so any permutation of the schedule yields a bit-identical
        result).  A crash at epoch ``e`` costs that epoch the detector's
        timeout (10x the iteration time), the re-prep of the dead job's
        prep shard, and the MinIO slice the crashed worker hosted — those
        items are evicted and re-read from storage by later epochs.
        """
        hp = self._hp(num_jobs)
        schedule = sorted((int(e), int(j)) for e, j in crash_schedule)
        num_items = len(self._dataset)
        batch = hp._batch_size()
        gpu_rate = hp._gpu_rate_per_job()
        prep_rate = hp._best_prep_rate(float(self._server.physical_cores),
                                       self._server.num_gpus)
        iteration_time = safe_div(batch, gpu_rate)
        crashed: set = set()
        detector = FailureDetector(
            num_jobs, iteration_time_s=iteration_time,
            liveness_probe=lambda job: job not in crashed, seed=self._seed)
        cache = MinIOCache(self._server.cache_bytes)
        result = FailureScenarioResult(loader_name="coordl-crash",
                                       samples_per_epoch=num_items)
        elapsed = 0.0
        for epoch in range(num_epochs):
            cache.reset_stats()
            disk_bytes = hp._minio_epoch(cache, epoch)
            miss_ratio = cache.stats.miss_ratio
            base = max(safe_div(disk_bytes, self._server.storage.random_read_bw),
                       safe_div(num_items, prep_rate),
                       safe_div(num_items, gpu_rate))
            stall = 0.0
            rewarm = 0.0
            crash_time = elapsed + 0.5 * base
            for order, (_, job) in enumerate(
                    (e, j) for e, j in schedule if e == epoch):
                crashed.add(job)
                alive = sorted(detector.alive_jobs() - {job})
                if not alive:
                    raise SimulationError(
                        "crash schedule killed every coordinated-prep job")
                # Detection is serialised: each crash is noticed one full
                # timeout after the previous one was handled.
                detected = crash_time + detector.timeout_s * (order + 1)
                report = TimeoutReport(
                    reporting_job=alive[0],
                    missing_batch_id=max(1, num_items // batch) // 2,
                    suspected_producer=job,
                    reported_at=detected)
                action = detector.report_timeout(report)
                if action is not RecoveryAction.RESPAWN:  # pragma: no cover
                    raise SimulationError(
                        f"crashed job {job} produced {action}, not RESPAWN")
                # The crashed worker hosted a 1/num_jobs slice of the shared
                # MinIO cache: those entries die with it and must be
                # re-fetched from storage by the epochs that follow.
                for item in sorted(cache.cached_items()):
                    if item % num_jobs == job:
                        rewarm += cache.evict(item)
                # The replacement re-preps the orphaned shard's sweep.
                stall += detector.timeout_s
                stall += safe_div(num_items / num_jobs, prep_rate)
            epoch_time = base + stall
            result.epochs.append(FailureEpoch(
                epoch_time_s=epoch_time, disk_bytes=disk_bytes,
                rewarm_bytes=rewarm, stall_s=stall,
                cache_miss_ratio=miss_ratio,
                active=len(detector.alive_jobs())))
            elapsed += epoch_time
        result.events = detector.events
        return result

    # -- coordl-elastic / coordl-straggler ----------------------------------

    def _partitioned_epoch(self, group: PartitionedCacheGroup,
                           active: List[int], epoch: int,
                           prep_rate: float, gpu_rate: float,
                           factors: Sequence[float]) -> FailureEpoch:
        """One lockstep epoch of the active servers over the partition.

        Each active server draws its rank's disjoint shard of the epoch
        permutation, classifies it against the group (local DRAM / remote
        cache / storage) with exact side effects, and converts the byte
        sums into a fetch time; the epoch is bound by the slowest rank.
        ``factors`` multiplies each rank's network+storage time (the
        straggler skew; all-ones for healthy epochs).
        """
        dram_bw = dram().random_read_bw
        net = self._server.network
        storage = self._server.storage
        num_items = len(self._dataset)
        epoch_time = 0.0
        disk_total = 0.0
        remote_total = 0.0
        misses = 0
        for rank, server_idx in enumerate(active):
            sampler = DistributedSampler(num_items, num_replicas=len(active),
                                         rank=rank, seed=self._seed)
            order = sampler.epoch(epoch)
            sizes = self._dataset.item_sizes(order)
            local, remote = group.bulk_epoch_lookup(server_idx, order, sizes)
            storage_mask = ~(local | remote)
            local_bytes = float(sizes[local].sum())
            remote_bytes = float(sizes[remote].sum())
            disk_bytes = float(sizes[storage_mask].sum())
            remote_time = (int(remote.sum()) * net.rtt_s
                           + remote_bytes / net.effective_bandwidth)
            disk_time = (int(storage_mask.sum()) * storage.request_overhead_s
                         + disk_bytes / storage.random_read_bw)
            fetch = (local_bytes / dram_bw
                     + factors[rank] * (remote_time + disk_time))
            shard = len(order)
            rank_time = max(fetch, safe_div(shard, prep_rate),
                            safe_div(shard, gpu_rate))
            epoch_time = max(epoch_time, rank_time)
            disk_total += disk_bytes
            remote_total += remote_bytes
            misses += int((~local).sum())
        return FailureEpoch(
            epoch_time_s=epoch_time, disk_bytes=disk_total,
            remote_bytes=remote_total,
            cache_miss_ratio=safe_div(misses, num_items),
            active=len(active))

    def run_static(self, num_servers: int,
                   num_epochs: int) -> FailureScenarioResult:
        """Fixed-membership partitioned run (the elastic kind's baseline).

        Exactly what :meth:`run_elastic` degenerates to when the schedule
        is empty — asserted bit for bit by the property tests.
        """
        return self.run_elastic(num_servers, (), num_epochs)

    def run_elastic(self, num_servers: int,
                    membership_schedule: Sequence[Tuple[int, int]],
                    num_epochs: int) -> FailureScenarioResult:
        """Servers join/leave a CoorDL partition between epochs.

        ``membership_schedule`` is ``(epoch, server_count)`` pairs: at the
        start of that epoch the active set grows or shrinks to the given
        count.  Joiners are brand-new cold servers
        (:meth:`~repro.cache.partitioned.PartitionedCacheGroup.add_server`);
        leavers are the most recently added active servers, and their
        cached bytes are dropped from the partition
        (:meth:`~repro.cache.partitioned.PartitionedCacheGroup.deactivate_server`).
        """
        schedule = sorted((int(e), int(n)) for e, n in membership_schedule)
        cache_budget = self._server.cache_bytes
        group = PartitionedCacheGroup(
            self._dataset, [cache_budget] * num_servers, seed=self._seed)
        group.populate_from_shards()
        active = list(range(num_servers))
        prep_rate = self._server_prep_rate()
        gpu_rate = self._server_gpu_rate()
        result = FailureScenarioResult(loader_name="coordl-elastic",
                                       samples_per_epoch=len(self._dataset))
        elapsed = 0.0
        for epoch in range(num_epochs):
            rewarm = 0.0
            for _, count in (entry for entry in schedule if entry[0] == epoch):
                if count < 1:
                    raise SimulationError("membership cannot drop below one")
                while len(active) < count:
                    joined = group.add_server(cache_budget)
                    active.append(joined)
                    result.events.append(FailureEvent(
                        kind="join", failed_job=-1, detected_at=elapsed,
                        reassigned_to=joined, missing_batch_id=-1))
                while len(active) > count:
                    departed = active.pop()
                    rewarm += group.deactivate_server(departed)
                    result.events.append(FailureEvent(
                        kind="leave", failed_job=departed, detected_at=elapsed,
                        reassigned_to=-1, missing_batch_id=-1))
            stats = self._partitioned_epoch(group, active, epoch, prep_rate,
                                            gpu_rate, [1.0] * len(active))
            stats.rewarm_bytes = rewarm
            result.epochs.append(stats)
            elapsed += stats.epoch_time_s
        return result

    def run_straggler(self, num_servers: int,
                      straggler_factors: Sequence[float],
                      num_epochs: int) -> FailureScenarioResult:
        """Static partitioned membership with skewed per-server I/O rates.

        ``straggler_factors[i]`` multiplies server ``i``'s network and
        storage time (1.0 = healthy); a shorter tuple is padded with 1.0,
        so ``(4.0,)`` means "server 0 fetches 4x slower".  Because the
        epoch is lockstep, one straggler bounds the whole job.
        """
        factors = [float(f) for f in straggler_factors]
        if len(factors) > num_servers:
            raise ConfigurationError(
                f"{len(factors)} straggler factors for {num_servers} servers")
        factors += [1.0] * (num_servers - len(factors))
        group = PartitionedCacheGroup(
            self._dataset, [self._server.cache_bytes] * num_servers,
            seed=self._seed)
        group.populate_from_shards()
        active = list(range(num_servers))
        prep_rate = self._server_prep_rate()
        gpu_rate = self._server_gpu_rate()
        result = FailureScenarioResult(loader_name="coordl-straggler",
                                       samples_per_epoch=len(self._dataset))
        for server, factor in enumerate(factors):
            if factor != 1.0:
                result.events.append(FailureEvent(
                    kind="straggler", failed_job=server, detected_at=0.0,
                    reassigned_to=-1, missing_batch_id=-1))
        for epoch in range(num_epochs):
            result.epochs.append(self._partitioned_epoch(
                group, active, epoch, prep_rate, gpu_rate, factors))
        return result

    # -- hp-multitenant ------------------------------------------------------

    def run_multitenant(self, tenants: int, num_jobs: int,
                        num_epochs: int) -> FailureScenarioResult:
        """Several uncoordinated HP campaigns share one server.

        ``tenants`` campaigns of ``num_jobs`` jobs each interleave their
        access streams through the one shared OS page cache and split the
        server's cores ``tenants * num_jobs`` ways — the Sec. 3.3
        thrashing/read-amplification regime, compounded across tenants.
        The trace is empty: nothing fails, the tenants just contend.
        """
        total_jobs = tenants * num_jobs
        hp = self._hp(total_jobs)
        num_items = len(self._dataset)
        cores_per_job = self._server.physical_cores / total_jobs
        prep_rate = hp._best_prep_rate(cores_per_job, 1)
        gpu_rate = hp._gpu_rate_per_job()
        cache = PageCache(self._server.cache_bytes)
        result = FailureScenarioResult(loader_name="hp-multitenant",
                                       samples_per_epoch=num_items)
        for epoch in range(num_epochs):
            cache.reset_stats()
            disk_bytes = hp._shared_page_cache_epoch(cache, epoch)
            epoch_time = max(
                safe_div(disk_bytes, self._server.storage.random_read_bw),
                safe_div(num_items, prep_rate),
                safe_div(num_items, gpu_rate))
            result.epochs.append(FailureEpoch(
                epoch_time_s=epoch_time, disk_bytes=disk_bytes,
                cache_miss_ratio=cache.stats.miss_ratio, active=total_jobs))
        return result
