"""Table 3 — data stalls exist in TensorFlow too (TFRecord access pattern).

TensorFlow serialises the dataset into ~150 MB TFRecord files and reads them
(mostly) sequentially.  That access pattern is a pathological case for the
page cache's LRU lists, so an 8-GPU training job sees far more misses than
the cache capacity would suggest, and eight uncoordinated HP-search jobs
multiply the disk traffic by ~7x.  This experiment drives the chunk-level
record layout through the page-cache model for cache sizes of 25/35/50 % of
ImageNet-1K and reports the same three columns as the paper's table.
"""

from __future__ import annotations

from typing import Sequence

from repro.cache.page_cache import PageCache
from repro.datasets.records import RecordLayout
from repro.experiments.base import DEFAULT_SCALE, ExperimentResult, scaled_dataset

DEFAULT_FRACTIONS = (0.5, 0.35, 0.25)


def _scan_epoch(layout: RecordLayout, cache: PageCache, order, readers_seed: int = 0) -> float:
    """One sequential pass over the record files; returns disk bytes read."""
    disk_bytes = 0.0
    for chunk_id in order:
        chunk_id = int(chunk_id)
        size = layout.chunk_size(chunk_id)
        if not cache.lookup(chunk_id):
            disk_bytes += size
            cache.admit(chunk_id, size)
    return disk_bytes


def run(scale: float = DEFAULT_SCALE, fractions: Sequence[float] = DEFAULT_FRACTIONS,
        dataset_name: str = "imagenet-1k", num_hp_jobs: int = 8,
        chunk_bytes: float = 150e6, seed: int = 0) -> ExperimentResult:
    """Reproduce Table 3: miss %, HP-search disk IO and read amplification."""
    dataset = scaled_dataset(dataset_name, scale, seed)
    # Keep roughly the real chunk-to-dataset ratio on the scaled dataset.
    layout = RecordLayout(dataset, chunk_bytes=chunk_bytes * scale, shuffle_seed=seed)
    result = ExperimentResult(
        experiment_id="tab3",
        title="Table 3 — TensorFlow/TFRecord data stalls (8-GPU job and 8-job HP search)",
        columns=["cache_pct", "train_miss_pct", "hp_disk_io_gb", "read_amplification"],
        notes=[f"{layout.num_chunks} record chunks; disk IO scaled back to the full "
               f"{dataset_name} size",
               "paper: 91/94/97 % misses and 6.1-7.3x read amplification"],
    )
    full_dataset_bytes = dataset.total_bytes / scale
    for fraction in fractions:
        capacity = dataset.total_bytes * fraction
        # (a) one 8-GPU training job scanning the records sequentially.
        train_cache = PageCache(capacity)
        _scan_epoch(layout, train_cache, layout.interleaved_chunk_order(8, seed=seed))
        train_cache.reset_stats()
        _scan_epoch(layout, train_cache, layout.interleaved_chunk_order(8, seed=seed + 1))
        train_miss = train_cache.stats.miss_ratio

        # (b) eight HP-search jobs, each scanning its own shuffled file order,
        # all sharing the page cache.
        hp_cache = PageCache(capacity)
        orders = [layout.interleaved_chunk_order(8, seed=seed + 10 + j)
                  for j in range(num_hp_jobs)]
        # warm-up epoch, then the measured epoch
        for epoch_offset in range(2):
            disk_bytes = 0.0
            positions = [0] * num_hp_jobs
            done = 0
            while done < num_hp_jobs:
                done = 0
                for job in range(num_hp_jobs):
                    pos = positions[job]
                    if pos >= layout.num_chunks:
                        done += 1
                        continue
                    chunk_id = int(orders[job][pos])
                    size = layout.chunk_size(chunk_id)
                    if not hp_cache.lookup(chunk_id):
                        disk_bytes += size
                        hp_cache.admit(chunk_id, size)
                    positions[job] = pos + 1
            if epoch_offset == 0:
                hp_cache.reset_stats()
        single_job_bytes = dataset.total_bytes  # one full read of the dataset
        read_amp = disk_bytes / single_job_bytes
        result.add_row(
            cache_pct=100.0 * fraction,
            train_miss_pct=100.0 * train_miss,
            hp_disk_io_gb=disk_bytes / scale / 1e9,
            read_amplification=read_amp,
        )
    return result
