#!/usr/bin/env python3
"""Fail if any symbol in ``repro.__all__`` is missing from docs/API.md.

Run as ``make docs-check`` (or ``PYTHONPATH=src python tools/docs_check.py``).
The check is textual on purpose: a symbol counts as documented when its name
appears anywhere in docs/API.md, so tables, prose and code snippets all
qualify, and renames/removals surface immediately.
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro  # noqa: E402  (path bootstrap above)


def main() -> int:
    api_doc = REPO_ROOT / "docs" / "API.md"
    if not api_doc.exists():
        print(f"docs-check: {api_doc} does not exist", file=sys.stderr)
        return 1
    text = api_doc.read_text(encoding="utf-8")
    missing = [name for name in repro.__all__ if name not in text]
    if missing:
        print("docs-check: symbols in repro.__all__ missing from docs/API.md:",
              file=sys.stderr)
        for name in missing:
            print(f"  - {name}", file=sys.stderr)
        return 1
    print(f"docs-check: all {len(repro.__all__)} public symbols documented "
          "in docs/API.md")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
