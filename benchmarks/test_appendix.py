"""Benchmarks for the appendix experiments (Figs. 12-14, 17, 19-23)."""

from __future__ import annotations

from repro.experiments import registry
from repro.experiments.base import SWEEP_SCALE


def test_fig12_high_cpu_server(run_once):
    """Fig. 12: hyper-threads shave but do not remove ResNet18's prep stall."""
    result = run_once(registry.get_experiment("fig12"), scale=SWEEP_SCALE)
    gpu_rows = [r for r in result.rows if r["prep_mode"] == "cpu+gpu"]
    assert gpu_rows[-1]["prep_stall_pct"] <= gpu_rows[0]["prep_stall_pct"]
    assert gpu_rows[-1]["prep_stall_pct"] > 15.0


def test_fig13_pytorch_vs_dali(run_once):
    """Fig. 13: DALI beats the Pillow-based PyTorch DL; GPU prep hurts ResNet50."""
    result = run_once(registry.get_experiment("fig13"), scale=SWEEP_SCALE)
    for row in result.rows:
        assert row["dali_cpu_epoch_s"] <= row["pytorch_epoch_s"] * 1.01
    assert result.row_for("model", "resnet50")["best_for_model"] == "dali-cpu"
    assert result.row_for("model", "resnet18")["best_for_model"] == "dali-gpu"


def test_fig14_batch_size_sweep(run_once):
    """Fig. 14: bigger batches cut GPU time but prep keeps the epoch flat."""
    result = run_once(registry.get_experiment("fig14"), scale=SWEEP_SCALE)
    small, large = result.rows[0], result.rows[-1]
    assert large["gpu_compute_s"] < small["gpu_compute_s"]
    assert large["epoch_time_s"] >= 0.8 * small["epoch_time_s"]
    assert large["prep_stall_pct"] >= small["prep_stall_pct"]


def test_fig17_imagenet22k_hp_search(run_once):
    """Fig. 17: HP-search gains persist on ImageNet-22K (up to ~2.5x)."""
    result = run_once(registry.get_experiment("fig17"), scale=SWEEP_SCALE)
    speedups = result.column("speedup")
    assert max(speedups) >= 1.3
    assert all(s >= 0.95 for s in speedups)


def test_fig19_20_resource_utilisation(run_once):
    """Figs. 19/20: better CPU use, small bounded staging memory."""
    result = run_once(registry.get_experiment("fig19_20"), scale=SWEEP_SCALE)
    util = result.row_for("metric", "cpu_utilisation_pct")
    staging = result.row_for("metric", "staging_peak_gb")
    assert util["coordl"] >= util["dali"]
    assert 0.0 < staging["coordl"] < 16.0


def test_fig21_pycoordl_minio_in_pytorch_dl(run_once):
    """Fig. 21: MinIO helps the native PyTorch DL a lot on HDD, little on SSD."""
    result = run_once(registry.get_experiment("fig21"), scale=SWEEP_SCALE)
    hdd = [r for r in result.rows if r["storage"] == "hdd"]
    ssd = [r for r in result.rows if r["storage"] == "sata-ssd"]
    assert max(r["speedup"] for r in hdd) >= 1.5
    assert max(r["speedup"] for r in hdd) > max(r["speedup"] for r in ssd)


def test_fig22_pycoordl_coordinated_prep(run_once):
    """Fig. 22: coordinated prep removes most of the stall for 4-8 PyTorch jobs."""
    result = run_once(registry.get_experiment("fig22"), scale=SWEEP_SCALE)
    by_jobs = {row["num_jobs"]: row["speedup"] for row in result.rows}
    assert by_jobs[8] >= by_jobs[4] >= 1.2


def test_fig23_end_to_end_hp_search(run_once):
    """Fig. 23: coordinated prep helps everywhere; MinIO adds more on HDD."""
    result = run_once(registry.get_experiment("fig23"), scale=SWEEP_SCALE)
    for storage in ("hdd", "sata-ssd"):
        rows = {r["configuration"]: r for r in result.rows if r["storage"] == storage}
        assert (rows["py-coordl"]["epoch_time_s"]
                <= rows["coordinated-prep"]["epoch_time_s"] * 1.001
                <= rows["pytorch-dl"]["epoch_time_s"] * 1.001)
    hdd_full = [r for r in result.rows
                if r["storage"] == "hdd" and r["configuration"] == "py-coordl"][0]
    assert hdd_full["speedup_vs_baseline"] >= 2.0
