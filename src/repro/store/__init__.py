"""Content-addressed sweep result store and persistent worker pool.

The subsystem that turns the reproduction from recompute-everything into
serve-many-queries:

* :class:`SweepStore` — a content-addressed store of
  :class:`~repro.sim.sweep.SweepRecord` snapshots, keyed by a BLAKE2
  digest (:func:`store_key`) of the canonical (runner, point, env-flag)
  identity (:meth:`~repro.sim.sweep.SweepRunner.point_spec`) plus the
  store schema version and a :func:`source_digest` of the simulator's
  own code (so simulator edits orphan entries instead of serving stale
  bytes).  A hit rehydrates a byte-identical record
  (:meth:`~repro.sim.sweep.SweepRecord.from_snapshot`); corruption of any
  entry degrades to a miss, never to a wrong answer.
* :class:`StoreBackend` — the pluggable storage contract behind the
  store: :class:`JsonDirBackend` (one JSON file per entry, the original
  byte-compatible layout) or :class:`SqliteBackend` (one WAL-mode SQLite
  database: SQL index + packed payloads, so ``stats``/``gc``/
  ``invalidate`` are queries, not directory scans).  Locations select
  the backend — a plain directory path vs a ``sqlite://PATH`` URI — and
  :func:`migrate_store` converts a populated store between them.
* :class:`PersistentPool` — a spawn worker pool that outlives individual
  ``run()`` calls, with per-worker dataset/sampler caches shared across
  runner configurations.
* :func:`resolve_store` — the ``store=`` argument normaliser every
  sweep-backed ``run`` uses (:data:`STORE_ENV_VAR` supplies the ambient
  default; ``False`` opts out).

Both halves plug into :meth:`repro.sim.sweep.SweepRunner.run` via its
``store=`` / ``pool=`` arguments and are surfaced on the command line as
``--store`` / ``--no-store`` plus the ``repro store`` management
subcommands (``stats`` / ``gc`` / ``invalidate`` / ``migrate``).
"""

from repro.store.backend import (
    STORE_CODEC_ENV_VAR,
    STORE_CODECS,
    EntryInvalid,
    JsonDirBackend,
    RunnerStats,
    SqliteBackend,
    StoreBackend,
    default_codec,
    open_backend,
    resolve_codec,
)
from repro.store.pool import PersistentPool
from repro.store.store import (
    STORE_ENV_VAR,
    STORE_SCHEMA_VERSION,
    StoreArg,
    StoreStats,
    StoreTraceEvent,
    SweepStore,
    merge_store_traces,
    migrate_store,
    resolve_store,
    runner_spec_digest,
    source_digest,
    store_key,
    verify_store_trace,
)

__all__ = [
    "SweepStore",
    "StoreBackend",
    "JsonDirBackend",
    "SqliteBackend",
    "EntryInvalid",
    "RunnerStats",
    "StoreStats",
    "StoreArg",
    "StoreTraceEvent",
    "PersistentPool",
    "default_codec",
    "merge_store_traces",
    "migrate_store",
    "open_backend",
    "resolve_codec",
    "resolve_store",
    "runner_spec_digest",
    "source_digest",
    "store_key",
    "verify_store_trace",
    "STORE_CODEC_ENV_VAR",
    "STORE_CODECS",
    "STORE_ENV_VAR",
    "STORE_SCHEMA_VERSION",
]
