"""Single-server training scenario driver.

Wires a model + dataset + server + loader choice into the pipelined epoch
simulator and runs the paper's measurement protocol (warm-up epoch followed by
measured epochs, Sec. 3.1).  This is the workhorse behind Figs. 2–6, 9(a),
11, 13, 14 and Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.server import ServerConfig
from repro.compute.model_zoo import ModelSpec
from repro.coordl.minio_loader import best_coordl_loader
from repro.datasets.dataset import SyntheticDataset
from repro.datasets.sampler import Sampler
from repro.exceptions import ConfigurationError
from repro.pipeline.base import DataLoader
from repro.pipeline.dali import DALILoader, best_dali_loader
from repro.pipeline.pytorch_native import PyTorchNativeLoader
from repro.pipeline.stats import TrainingRunStats
from repro.sim.engine import PipelineSimulator

#: Loader names accepted by :func:`build_loader`.  "pycoordl" is Appendix E's
#: Py-CoorDL: the native PyTorch DataLoader (Pillow prep) with the page cache
#: swapped for CoorDL's MinIO policy.
LOADER_KINDS = ("pytorch", "dali-seq", "dali-shuffle", "coordl", "pycoordl")

#: Minimum number of minibatches per epoch the simulation keeps, so that the
#: pipelined overlap of fetch/prep/compute remains realistic on the scaled
#: datasets the experiments run on (a full-size epoch has hundreds of batches).
MIN_BATCHES_PER_EPOCH = 40


def effective_batch_size(dataset: SyntheticDataset, nominal_batch_size: int,
                         min_batches: int = MIN_BATCHES_PER_EPOCH) -> int:
    """Clamp a batch size so a (scaled) dataset still yields many batches.

    Stall fractions and speedups are insensitive to the absolute batch size,
    but they are distorted when a scaled-down dataset degenerates to one or
    two giant batches (no pipelining).  The clamp preserves the real batch
    size whenever the dataset is large enough.
    """
    cap = max(32, len(dataset) // min_batches)
    return max(1, min(nominal_batch_size, cap))


def build_loader(kind: str, dataset: SyntheticDataset, server: ServerConfig,
                 model: ModelSpec, num_gpus: Optional[int] = None,
                 cores: Optional[float] = None, cache_bytes: Optional[float] = None,
                 gpu_prep: Optional[bool] = None, seed: int = 0,
                 batch_size: Optional[int] = None,
                 sampler: Optional[Sampler] = None) -> DataLoader:
    """Build a loader of the requested kind for one training job.

    Args:
        kind: One of :data:`LOADER_KINDS`.
        dataset: Dataset to train on.
        server: Server the job runs on.
        model: Model being trained (supplies the per-GPU batch size and the
            GPU-prep interference factor used by the best-of selection).
        num_gpus: GPUs used by the job (defaults to all on the server).
        cores: Physical prep cores for the job (defaults to all).
        cache_bytes: Override the server's cache budget (cache-size sweeps).
        gpu_prep: Force GPU prep on/off; None selects the faster variant.
        seed: Sampler seed.
        batch_size: Explicit per-iteration batch size; when omitted the
            model's per-GPU batch size times ``num_gpus`` is used, clamped by
            :func:`effective_batch_size` for scaled datasets.
        sampler: Ready-made item-order sampler to reuse across loaders
            (parameter sweeps share one memoised sampler per dataset/seed).
    """
    if kind not in LOADER_KINDS:
        raise ConfigurationError(f"unknown loader kind {kind!r}; expected one of {LOADER_KINDS}")
    gpus = num_gpus if num_gpus is not None else server.num_gpus
    if cache_bytes is not None:
        server = server.with_cache_bytes(cache_bytes)
    if batch_size is None:
        batch_size = effective_batch_size(dataset, model.batch_size_for(server.gpu) * gpus)

    if kind == "pytorch":
        return PyTorchNativeLoader.build(dataset, server, batch_size,
                                         num_gpus=gpus, cores=cores, seed=seed,
                                         sampler=sampler)
    if kind == "pycoordl":
        from repro.cache.minio import MinIOCache
        return PyTorchNativeLoader.build(dataset, server, batch_size,
                                         num_gpus=gpus, cores=cores, seed=seed,
                                         cache=MinIOCache(server.cache_bytes),
                                         sampler=sampler)
    if kind in ("dali-seq", "dali-shuffle"):
        mode = "seq" if kind == "dali-seq" else "shuffle"
        if gpu_prep is None:
            return best_dali_loader(dataset, server, batch_size,
                                    model_gpu_prep_interference=model.gpu_prep_interference,
                                    mode=mode, num_gpus=gpus, cores=cores, seed=seed,
                                    sampler=sampler)
        return DALILoader.build(dataset, server, batch_size, mode=mode,
                                gpu_prep=gpu_prep, num_gpus=gpus, cores=cores,
                                seed=seed, sampler=sampler)
    # CoorDL
    if gpu_prep is None:
        return best_coordl_loader(dataset, server, batch_size,
                                  model_gpu_prep_interference=model.gpu_prep_interference,
                                  num_gpus=gpus, cores=cores, seed=seed,
                                  sampler=sampler)
    from repro.coordl.minio_loader import CoorDLLoader
    return CoorDLLoader.build(dataset, server, batch_size, gpu_prep=gpu_prep,
                              num_gpus=gpus, cores=cores, seed=seed,
                              sampler=sampler)


@dataclass
class SingleServerResult:
    """Outcome of one single-server training simulation."""

    loader_name: str
    run: TrainingRunStats

    @property
    def steady_epoch_time_s(self) -> float:
        """Mean steady-state epoch time (first epoch ignored)."""
        return self.run.mean_epoch_time()

    @property
    def steady_throughput(self) -> float:
        """Mean steady-state throughput in samples/second."""
        return self.run.mean_throughput()


class SingleServerTraining:
    """Run a single-server training job for a few epochs and collect stats.

    Args:
        model: DNN to train.
        dataset: Dataset to train on.
        server: Server configuration.
        num_epochs: Total epochs to simulate (first is cold-cache warm-up).
        queue_depth: Prefetch queue depth of the pipeline.
    """

    def __init__(self, model: ModelSpec, dataset: SyntheticDataset,
                 server: ServerConfig, num_epochs: int = 3,
                 queue_depth: int = 4) -> None:
        if num_epochs < 2:
            raise ConfigurationError(
                "need at least two epochs (warm-up + one measured epoch)")
        self._model = model
        self._dataset = dataset
        self._server = server
        self._num_epochs = num_epochs
        self._queue_depth = queue_depth

    def run_with_loader(self, loader: DataLoader) -> SingleServerResult:
        """Simulate the configured number of epochs with a ready-made loader."""
        simulator = PipelineSimulator(self._model, self._server.gpu,
                                      queue_depth=self._queue_depth)
        run = TrainingRunStats()
        for stats in simulator.run_epochs(loader, self._num_epochs):
            run.add(stats)
        return SingleServerResult(loader_name=loader.name, run=run)

    def run(self, loader_kind: str, num_gpus: Optional[int] = None,
            cores: Optional[float] = None, cache_bytes: Optional[float] = None,
            gpu_prep: Optional[bool] = None, seed: int = 0,
            batch_size: Optional[int] = None) -> SingleServerResult:
        """Build a loader of the given kind and simulate the training run."""
        loader = build_loader(loader_kind, self._dataset, self._server, self._model,
                              num_gpus=num_gpus, cores=cores, cache_bytes=cache_bytes,
                              gpu_prep=gpu_prep, seed=seed, batch_size=batch_size)
        return self.run_with_loader(loader)
