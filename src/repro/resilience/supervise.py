"""Supervised process pool: detect dead workers, rebuild, re-run.

``multiprocessing.Pool`` is the wrong substrate for surviving worker
death: a SIGKILLed worker silently loses its in-flight tasks and
``imap_unordered`` waits for them forever.
``concurrent.futures.ProcessPoolExecutor`` turns the same event into a
:class:`~concurrent.futures.process.BrokenProcessPool` raised from every
unfinished future — a clean, synchronous detection point.
:class:`SupervisedExecutor` builds on that:

* work is submitted as *chunks* (``fn(chunk) -> [result, ...]``), the same
  granularity ``Pool``'s chunksize gave us, so one lost worker costs one
  chunk of re-run, not a whole grid;
* when the executor breaks, the chunks that never produced results are
  collected, the executor is rebuilt, and the chunks are resubmitted —
  correctness relies on ``fn`` being a pure function of the chunk (the
  sweep's per-point seeding discipline), which makes every re-run
  byte-identical to the run that was lost;
* re-running is bounded by a per-run ``max_respawns`` budget; exhausting it
  raises :class:`~repro.exceptions.WorkerLostError` carrying the still-lost
  chunks so the caller can name the work it could not finish.

The executor is also the delivery point for planned worker kills: a
:class:`~repro.resilience.faults.FaultInjector`'s kill schedule is
consulted after every received result, and due kills are delivered
parent-side (SIGKILL to one live worker pid).  Injection therefore needs
no cooperation from worker code and cannot fire at ``workers<=1`` where no
pool exists.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence

from repro.exceptions import ConfigurationError, WorkerLostError
from repro.resilience.faults import FaultInjector

#: Default pool rebuilds allowed per ``run_chunks`` call before escalating.
DEFAULT_MAX_RESPAWNS = 3

#: Errors that mean "the executor lost workers", not "the task raised".
_BROKEN_ERRORS = (BrokenProcessPool, concurrent.futures.BrokenExecutor,
                  concurrent.futures.CancelledError)

#: Seconds to wait for worker processes to exit before terminating them.
_SHUTDOWN_GRACE_S = 5.0


def _shutdown_executor(executor: concurrent.futures.ProcessPoolExecutor,
                       *, force: bool,
                       grace_s: float = _SHUTDOWN_GRACE_S) -> None:
    """Shut ``executor`` down without risking an unbounded hang.

    A SIGKILLed worker can die holding the shared call-queue reader lock,
    leaving idle siblings blocked in ``get()`` forever — a plain
    ``shutdown(wait=True)`` then joins a process that will never exit.
    Every executor this module shuts down is either idle (``close`` drains
    runs first) or broken (its lost chunks are re-run elsewhere), so no
    results are at stake: initiate the shutdown without blocking, give the
    workers a bounded grace period, and terminate whatever is left before
    joining the management thread.  ``force`` skips the grace period and
    terminates immediately (broken executors, ``close(drain=False)``).
    """
    processes = list((getattr(executor, "_processes", None) or {}).values())
    if force:
        for proc in processes:
            try:
                proc.terminate()
            except (OSError, ValueError):
                pass
    executor.shutdown(wait=False, cancel_futures=force)
    deadline = time.monotonic() + (0.0 if force else grace_s)
    for proc in processes:
        proc.join(max(0.0, deadline - time.monotonic()))
    for proc in processes:
        if proc.is_alive():
            try:
                proc.terminate()
            except (OSError, ValueError):
                pass
    for proc in processes:
        proc.join(1.0)
        if proc.is_alive():
            try:
                proc.kill()
            except (OSError, ValueError):
                pass
            proc.join(1.0)
    # Workers are gone; joining the management thread is now bounded.
    executor.shutdown(wait=True)


class SupervisedExecutor:
    """A spawn-context process pool that survives worker death.

    Args:
        workers: Worker processes (>= 1); no clamping is applied here —
            callers like :class:`~repro.store.PersistentPool` clamp first.
        max_respawns: Pool rebuilds allowed per :meth:`run_chunks` call.
        injector: Optional fault injector whose kill schedule this
            executor delivers (``None`` → no injection, zero overhead).

    Attributes:
        respawns: Total pool rebuilds over the executor's lifetime.
        reruns: Total chunk *items* resubmitted after worker loss.

    Thread-safe: concurrent :meth:`run_chunks` calls share the worker
    processes, and a break observed by several runs at once is repaired by
    exactly one of them.
    """

    def __init__(self, workers: int, *,
                 max_respawns: int = DEFAULT_MAX_RESPAWNS,
                 injector: Optional[FaultInjector] = None) -> None:
        if workers < 1:
            raise ConfigurationError(
                "a supervised executor needs >= 1 workers")
        if max_respawns < 0:
            raise ConfigurationError("max_respawns must be >= 0")
        self._workers = workers
        self._max_respawns = max_respawns
        self._injector = injector
        self._executor: Optional[concurrent.futures.ProcessPoolExecutor] = \
            None
        self._cond = threading.Condition()
        self._active_runs = 0
        self.respawns = 0
        self.reruns = 0

    @property
    def workers(self) -> int:
        """Configured worker count."""
        return self._workers

    # -- pool lifecycle -------------------------------------------------------

    def _ensure(self) -> concurrent.futures.ProcessPoolExecutor:
        with self._cond:
            if self._executor is None:
                context = multiprocessing.get_context("spawn")
                self._executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self._workers, mp_context=context)
            return self._executor

    def _replace_broken(self, broken: concurrent.futures
                        .ProcessPoolExecutor) -> None:
        """Retire ``broken`` and count one respawn (first observer wins)."""
        with self._cond:
            if self._executor is broken:
                self._executor = None
                self.respawns += 1
        _shutdown_executor(broken, force=True)

    def live_pids(self) -> List[int]:
        """Pids of the current worker processes (may be empty mid-rebuild)."""
        with self._cond:
            executor = self._executor
        if executor is None:
            return []
        processes = getattr(executor, "_processes", None)
        if not processes:
            return []
        return [proc.pid for proc in list(processes.values())
                if proc.pid is not None and proc.is_alive()]

    def kill_one_worker(self) -> Optional[int]:
        """SIGKILL one live worker (parent-side); returns its pid or None.

        This is how planned worker kills are delivered, and tests may call
        it directly to murder a worker mid-run.
        """
        for pid in self.live_pids():
            try:
                os.kill(pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                continue
            return pid
        return None

    # -- supervised execution -------------------------------------------------

    def run_chunks(self, fn: Callable[[Sequence], Sequence],
                   chunks: Sequence[Sequence],
                   on_result: Optional[Callable[[object], None]] = None
                   ) -> List[object]:
        """Run ``fn`` over every chunk, surviving worker death.

        ``on_result`` fires per *item* (element of a chunk's result list)
        in completion order.  Items of a chunk are delivered exactly once:
        a chunk either completed (its items were delivered) or was lost
        with its worker (no items were delivered) and is resubmitted
        whole.  Exceptions raised *by ``fn``* propagate immediately —
        task-level failures are the caller's protocol (the sweep ships
        failures as values, never exceptions).
        """
        if not chunks:
            return []
        with self._cond:
            self._active_runs += 1
        try:
            return self._run_chunks_locked(fn, chunks, on_result)
        finally:
            with self._cond:
                self._active_runs -= 1
                self._cond.notify_all()

    def _run_chunks_locked(self, fn, chunks, on_result):
        schedule = self._injector.run_kills() if self._injector else None
        results: List[object] = []
        remaining = list(chunks)
        respawns_this_run = 0
        while remaining:
            executor = self._ensure()
            # A kill that landed after a previous run's last result leaves
            # the executor broken before any submit — treat a failing
            # submit exactly like a future that raised broken-pool.
            futures = {}
            lost: List[Sequence] = []
            for chunk in remaining:
                try:
                    futures[executor.submit(fn, chunk)] = chunk
                except _BROKEN_ERRORS:
                    lost.append(chunk)
            remaining = lost
            for future in concurrent.futures.as_completed(list(futures)):
                chunk = futures.pop(future)
                try:
                    items = future.result()
                except _BROKEN_ERRORS:
                    remaining.append(chunk)
                    continue
                for item in items:
                    results.append(item)
                    if on_result is not None:
                        on_result(item)
                    if schedule is not None and schedule.due(len(results)):
                        if self.kill_one_worker() is not None:
                            self._injector.note_kill()
            if remaining:
                if respawns_this_run >= self._max_respawns:
                    count = sum(len(chunk) for chunk in remaining)
                    raise WorkerLostError(
                        f"worker pool kept dying: {count} task(s) still "
                        f"unfinished after {respawns_this_run} respawn(s)",
                        pending_chunks=remaining,
                        respawns=respawns_this_run)
                respawns_this_run += 1
                with self._cond:
                    self.reruns += sum(len(chunk) for chunk in remaining)
                self._replace_broken(executor)
        return results

    # -- shutdown -------------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Shut the workers down (idempotent); the pool can be rebuilt.

        ``drain=True`` (the default) first waits for in-flight
        :meth:`run_chunks` calls — including any respawn/re-run they still
        owe — then shuts the executor down cleanly.  ``drain=False``
        SIGKILLs the workers and abandons whatever they were doing (the
        old ``terminate()`` behaviour, kept for tests and emergencies).
        """
        if drain:
            with self._cond:
                while self._active_runs:
                    self._cond.wait()
        with self._cond:
            executor, self._executor = self._executor, None
        if executor is None:
            return
        _shutdown_executor(executor, force=not drain)

    def __enter__(self) -> "SupervisedExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)
