"""Persistent sweep worker pool: spawn once, serve many ``run()`` calls.

The per-call pool inside :meth:`repro.sim.sweep.SweepRunner.run` pays the
full spawn + import + dataset-materialisation cost on every grid, which
dominates for the many-small-grids shape of ``report`` generation and
what-if querying.  :class:`PersistentPool` amortises all three:

* **workers outlive runs** — one spawn pool serves every
  ``run(points, pool=...)`` call until :meth:`close` (the pool is also a
  context manager), and the pool tracks the worker pids it has seen so
  tests can assert reuse;
* **per-worker substrate caches** — each worker process keeps one
  rebuilt :class:`~repro.sim.sweep.SweepRunner` per runner spec, and all
  of them share module-level dataset and sampler memo dicts keyed by
  ``(dataset name, seed, scale)`` / ``(dataset size, sampling seed)``, so
  a dataset is materialised at most once per worker process no matter how
  many runs or runner configurations it serves.

Tasks carry the pickled runner spec (a function reference plus four
scalars), so the pool itself is configuration-free and one pool can serve
arbitrarily many different runners.  Determinism is inherited from the
per-point seeding discipline of :meth:`~repro.sim.sweep.SweepRunner.point_seed`:
results are byte-identical to the serial executor, whichever worker
simulates which point in whichever order.

The pool is *supervised* (PR 9): it executes on
:class:`repro.resilience.SupervisedExecutor`, so a worker that dies
mid-chunk — OOM-killed, segfaulted, or murdered by a fault plan — is
detected instead of hanging the run, the pool is rebuilt, and the lost
chunks are re-run byte-identically (per-point seeding makes retry exact)
under a bounded respawn budget.  Exhausting the budget raises the usual
labelled :class:`~repro.exceptions.SweepPointError` naming the lowest lost
point, so callers see one failure protocol whether a point raised or its
worker was killed.  :meth:`close` drains in-flight runs by default
(``close(drain=False)`` keeps the old terminate-now behaviour).

Store interaction is parent-side only: workers never open a
:class:`~repro.store.SweepStore` — the calling run resolves hits, ships
only the misses to the pool, and writes results back through whichever
:class:`~repro.store.StoreBackend` the store was opened on.  The pool is
therefore backend-agnostic by construction.

The distributed fabric (:mod:`repro.dist`, PR 10) builds on the same
machinery: each remote worker agent rebuilds runners via this module's
``_worker_runner`` and shares the same module-level dataset/sampler
caches, so a ``repro dist worker`` process amortises substrate
materialisation across chunks exactly like a local pool worker does.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import (
    ConfigurationError,
    SweepPointError,
    WorkerLostError,
)
from repro.resilience.faults import FaultInjector, active_injector
from repro.resilience.supervise import (
    DEFAULT_MAX_RESPAWNS,
    SupervisedExecutor,
)
from repro.sim.sweep import (
    SweepPoint,
    SweepRecord,
    SweepRunner,
    _execute_point_task,
    _raise_lowest_failure,
    clamp_workers,
)

# -- worker-process state -----------------------------------------------------
#
# Module-level on purpose: spawned workers import this module fresh, and the
# caches live for the worker's (= the pool's) lifetime.  Sharing the dataset
# and sampler dicts across every runner spec a worker serves is safe because
# both are keyed by everything that defines their contents — (name, seed,
# scale) and (size, seed) — which is exactly why SweepRunner accepts
# externally-owned caches.

_WORKER_RUNNERS: Dict[tuple, SweepRunner] = {}
_SHARED_DATASETS: Dict[tuple, object] = {}
_SHARED_SAMPLERS: Dict[tuple, object] = {}


def _worker_runner(spec: tuple) -> SweepRunner:
    """Rebuild (once per worker per spec) the runner for one task's spec."""
    runner = _WORKER_RUNNERS.get(spec)
    if runner is None:
        server_factory, scale, seed, queue_depth, fast_path = spec
        runner = SweepRunner(server_factory, scale=scale, seed=seed,
                             queue_depth=queue_depth, fast_path=fast_path,
                             dataset_cache=_SHARED_DATASETS,
                             sampler_cache=_SHARED_SAMPLERS)
        _WORKER_RUNNERS[spec] = runner
    return runner


def _run_pooled_point(task: Tuple[tuple, int, SweepPoint]):
    """Simulate one indexed point; never raise across the pipe.

    The per-call pool's task protocol
    (:func:`repro.sim.sweep._execute_point_task`, shared so the two
    executors cannot drift) plus the worker pid, so the parent can
    account which processes served a run.
    """
    spec, index, point = task
    index, record, failure = _execute_point_task(_worker_runner(spec),
                                                 index, point)
    return index, record, failure, os.getpid()


def _run_pooled_chunk(chunk: Sequence[Tuple[tuple, int, SweepPoint]]):
    """Simulate one chunk of tasks; the supervised executor's unit of loss."""
    return [_run_pooled_point(task) for task in chunk]


def _probe_worker(_: int) -> Tuple[int, int, int, int]:
    """Report (pid, runners, datasets, samplers) cached in this worker."""
    return (os.getpid(), len(_WORKER_RUNNERS), len(_SHARED_DATASETS),
            len(_SHARED_SAMPLERS))


def _probe_chunk(chunk: Sequence[int]):
    """Probe once per task in the chunk (chunks are single tasks here)."""
    return [_probe_worker(item) for item in chunk]


class PersistentPool:
    """A supervised spawn pool of sweep workers reused across ``run()`` calls.

    Args:
        workers: Worker processes (>= 1; counts above ``os.cpu_count()``
            are clamped to it — oversubscribing a small machine only adds
            spawn cost and contention).  The pool is created lazily on the
            first run and kept until :meth:`close`.
        chunksize: Default points per pickled task (per run: about four
            chunks per worker when ``None``).
        max_respawns: Pool rebuilds allowed per :meth:`run_points` call
            when workers die, before the run escalates to
            :class:`~repro.exceptions.SweepPointError`.
        fault_injector: Optional
            :class:`~repro.resilience.FaultInjector` whose worker-kill
            schedule this pool delivers; defaults to the process-wide
            injector (``REPRO_FAULT_PLAN``), which is ``None`` — no
            injection, no overhead — in normal operation.

    Attributes:
        runs: Completed :meth:`run_points` calls.
        pids_seen: Every worker pid that ever served a task — with healthy
            reuse this stays at ``workers`` elements no matter how many
            runs the pool serves (the worker-reuse tests pin exactly that).
        last_run_pids: Pids that served the most recent run.

    Use it either directly (``pool.run_points(runner.spec(), ...)``) or,
    normally, through ``SweepRunner.run(points, pool=pool)``; it is a
    context manager (``with PersistentPool(4) as pool: ...``).

    The pool is thread-safe: concurrent :meth:`run_points` calls from
    different threads share the worker processes (the executor routes
    results by future, so interleaved runs cannot cross wires), which is
    how the serve layer's concurrent batches share one pool without
    head-of-line blocking.
    """

    def __init__(self, workers: int, chunksize: Optional[int] = None,
                 max_respawns: int = DEFAULT_MAX_RESPAWNS,
                 fault_injector: Optional[FaultInjector] = None) -> None:
        if workers < 1:
            raise ConfigurationError("a persistent pool needs >= 1 workers")
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError("chunksize must be at least 1")
        self._workers = clamp_workers(workers)
        self._chunksize = chunksize
        if fault_injector is None:
            fault_injector = active_injector()
        self._supervisor = SupervisedExecutor(self._workers,
                                              max_respawns=max_respawns,
                                              injector=fault_injector)
        self._lock = threading.Lock()
        self.runs = 0
        self.pids_seen: Set[int] = set()
        self.last_run_pids: Set[int] = set()

    @property
    def workers(self) -> int:
        """Worker count (after the core-count clamp)."""
        return self._workers

    @property
    def respawns(self) -> int:
        """Worker-pool rebuilds after worker death, over the pool's life."""
        return self._supervisor.respawns

    @property
    def reruns(self) -> int:
        """Points resubmitted after their worker died, over the pool's life."""
        return self._supervisor.reruns

    def kill_one_worker(self) -> Optional[int]:
        """SIGKILL one live worker (chaos tests); returns its pid or None."""
        return self._supervisor.kill_one_worker()

    def run_points(self, spec: tuple,
                   indexed_points: List[Tuple[int, SweepPoint]],
                   chunksize: Optional[int] = None,
                   on_record: Optional[Callable[[int, SweepRecord], None]]
                   = None) -> List[Tuple[int, SweepRecord]]:
        """Simulate indexed points under ``spec``; return (index, record)s.

        ``on_record`` fires per record in completion order while the pool
        drains (``SweepRunner.run`` hooks its store write-back here, so
        finished points survive a later failure).  The failure protocol is
        the serial/per-call-pool one, shared via
        :func:`repro.sim.sweep._raise_lowest_failure`: drain everything,
        then raise the lowest failing input index as a labelled
        :class:`~repro.exceptions.SweepPointError` chaining the original
        worker exception.  Worker death joins the same protocol: lost
        chunks are re-run on a rebuilt pool, and only a run that exhausts
        its respawn budget raises — a :class:`SweepPointError` naming the
        lowest point that was still lost.
        """
        if not indexed_points:
            return []
        if chunksize is None:
            chunksize = self._chunksize
        if chunksize is None:
            chunksize = max(1, math.ceil(len(indexed_points)
                                         / (self._workers * 4)))
        elif chunksize < 1:
            raise ConfigurationError("chunksize must be at least 1")
        tasks = [(spec, index, point) for index, point in indexed_points]
        chunks = [tasks[start:start + chunksize]
                  for start in range(0, len(tasks), chunksize)]
        ran: List[Tuple[int, SweepRecord]] = []
        failures: Dict[int, tuple] = {}
        run_pids: Set[int] = set()

        def on_result(item) -> None:
            index, record, failure, pid = item
            run_pids.add(pid)
            if failure is not None:
                failures[index] = failure
            else:
                if on_record is not None:
                    on_record(index, record)
                ran.append((index, record))

        try:
            self._supervisor.run_chunks(_run_pooled_chunk, chunks,
                                        on_result=on_result)
        except WorkerLostError as exc:
            raise _lost_points_error(exc, indexed_points) from exc
        finally:
            with self._lock:
                self.last_run_pids = run_pids
                self.pids_seen |= run_pids
        with self._lock:
            self.runs += 1
        if failures:
            _raise_lowest_failure(failures, indexed_points)
        return ran

    def probe(self) -> Dict[int, Tuple[int, int, int]]:
        """Sample the workers' cache sizes, by pid.

        Maps every *reached* worker pid to its (runner, dataset, sampler)
        cache sizes.  Probing sends one tiny task per worker slot times
        four; scheduling decides which workers answer, so treat the result
        as a sample — the reuse tests assert over the union, not coverage.
        """
        chunks = [[slot] for slot in range(self._workers * 4)]
        sizes: Dict[int, Tuple[int, int, int]] = {}
        for pid, runners, datasets, samplers in self._supervisor.run_chunks(
                _probe_chunk, chunks):
            sizes[pid] = (runners, datasets, samplers)
        return sizes

    def close(self, drain: bool = True) -> None:
        """Shut the workers down (idempotent); the pool can be rebuilt.

        ``drain=True`` (the default) waits for in-flight
        :meth:`run_points` calls — including any worker-death recovery
        they still owe — before stopping the workers; ``drain=False``
        terminates immediately, abandoning whatever was running (the
        pre-supervision behaviour, kept for emergencies and tests).
        """
        self._supervisor.close(drain=drain)

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Drain on a clean exit; when the body is already raising, don't
        # block on in-flight work that may never finish.
        self.close(drain=exc_type is None)


def _lost_points_error(exc: WorkerLostError,
                       indexed_points: List[Tuple[int, SweepPoint]]
                       ) -> SweepPointError:
    """Convert exhausted-respawn-budget loss into the sweep failure protocol.

    Names the lowest *input-order* point that was still unfinished, like
    :func:`~repro.sim.sweep._raise_lowest_failure` does for points that
    raised, so callers handle both kinds of failure identically.
    """
    lost_indices = sorted(
        task[1] for chunk in exc.pending_chunks for task in chunk)
    points = dict(indexed_points)
    label = ""
    if lost_indices:
        point = points.get(lost_indices[0])
        if point is not None:
            label = point.describe()
    where = f" (first lost point: {label})" if label else ""
    error = SweepPointError(
        f"sweep workers kept dying: {len(lost_indices)} point(s) lost "
        f"after {exc.respawns} pool respawn(s){where}")
    error.point_label = label
    return error
