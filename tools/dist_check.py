#!/usr/bin/env python3
"""CI gate for the multi-host sweep fabric (``repro.dist``).

Replays every committed golden grid through a :class:`DistExecutor` over
real ``python -m repro dist worker`` subprocesses and enforces the
scale-out contract:

* **byte identity at every topology** — each grid is replayed at
  hosts=1/2 with per-agent local fan-out workers=0/1/2, and every run
  must match the committed ``tests/golden`` snapshot byte for byte
  (the distributed run is the serial run, just elsewhere);
* **the driver keeps the store** — each run writes through a fresh
  ``sqlite://`` store whose recorded read/write trace must satisfy the
  write-once contract (``verify_store_trace``), with exactly one put per
  grid point: zero lost records, zero duplicated records, whatever the
  chunk assignment or steals did;
* **host death costs time, never bytes** — a second pass per grid runs a
  two-agent fleet under a ``host_kills`` fault plan whose ``kill_hook``
  SIGKILLs one live agent after the first delivered record.  The grid
  must still complete byte-identical with exactly one host lost, and at
  least one chunk must be reassigned somewhere across the pass (a gate
  that kills nothing mid-flight proves nothing).

Per-topology timings, steal/reassignment counters and delivered-fault
counts land in ``BENCH_dist.json`` at the repository root (the CI
artifact the ``dist`` leg uploads).

Run as ``make dist-check`` or ``PYTHONPATH=src python
tools/dist_check.py [--grids NAME ...] [--skip-fault-pass]``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.dist import DistExecutor, LocalWorkerFleet  # noqa: E402
from repro.resilience import FaultInjector, FaultPlan  # noqa: E402
from repro.sim.harness import (  # noqa: E402
    GOLDEN_GRIDS,
    load_golden,
    snapshot_diff,
)
from repro.store import SweepStore, verify_store_trace  # noqa: E402

#: Where the committed golden snapshots live.
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

#: Where the fabric counters land (repo root, uploaded as a CI artifact).
REPORT_PATH = REPO_ROOT / "BENCH_dist.json"

#: The acceptance topologies: (agent count, per-agent local fan-out).
TOPOLOGIES = tuple((hosts, workers)
                   for hosts in (1, 2) for workers in (0, 1, 2))

#: The fault pass's schedule: SIGKILL one agent after the first delivered
#: record of every grid.
FAULT_PLAN = FaultPlan(host_kills=(1,))


def run_grid(name: str, executor: DistExecutor, location: str,
             context: str) -> dict:
    """One golden grid through the fabric; assert bytes, store and trace."""
    grid = GOLDEN_GRIDS[name]
    points = grid.points()
    store = SweepStore(location, trace=True, trace_writer="dist-gate")
    start = time.perf_counter()
    actual = grid.build_runner().run(points, pool=executor,
                                     store=store).snapshot()
    elapsed = time.perf_counter() - start

    diffs = snapshot_diff(load_golden(name, GOLDEN_DIR), actual)
    if diffs:
        raise AssertionError(
            f"[{context}] {name}: distributed run diverged from the "
            f"committed golden (first differences: {diffs})")
    violations = verify_store_trace(store.trace_events)
    if violations:
        raise AssertionError(
            f"[{context}] {name}: store trace violates the write-once "
            f"contract: {violations}")
    # Zero lost, zero duplicated: the driver committed each point once.
    if store.puts != len(points) or store.stats().entries != len(points):
        raise AssertionError(
            f"[{context}] {name}: expected exactly {len(points)} stored "
            f"records, saw {store.puts} puts / "
            f"{store.stats().entries} entries")
    store.close()
    return {"points": len(points), "elapsed_s": round(elapsed, 6)}


def run_clean_pass(grid_names, scratch: pathlib.Path) -> dict:
    """Every grid at every (hosts, workers) topology, byte-identical."""
    results = {}
    for hosts, workers in TOPOLOGIES:
        key = f"hosts={hosts},workers={workers}"
        grids = {}
        with LocalWorkerFleet(hosts, workers=workers) as fleet:
            with DistExecutor(fleet.endpoints, chunksize=1) as executor:
                for name in grid_names:
                    root = scratch / "clean" / key / name
                    root.mkdir(parents=True, exist_ok=True)
                    grids[name] = run_grid(
                        name, executor, f"sqlite://{root / 'store.db'}", key)
                counters = {
                    "points_sent": executor.points_sent,
                    "steals": executor.steals,
                    "duplicates": executor.duplicates,
                    "hosts_lost": executor.hosts_lost,
                }
        if counters["hosts_lost"]:
            raise AssertionError(
                f"[{key}] lost {counters['hosts_lost']} host(s) during the "
                f"clean pass — agents must not die without a fault plan")
        results[key] = {"grids": grids, "counters": counters}
    return results


def run_fault_pass(grid_names, scratch: pathlib.Path) -> dict:
    """Every grid with one agent SIGKILLed mid-sweep, still byte-identical."""
    grids = {}
    for name in grid_names:
        injector = FaultInjector(FAULT_PLAN)
        # A fresh two-agent fleet per grid: every grid murders one.
        with LocalWorkerFleet(2) as fleet:
            with DistExecutor(fleet.endpoints, chunksize=1,
                              fault_injector=injector,
                              kill_hook=fleet.kill_one) as executor:
                root = scratch / "fault" / name
                root.mkdir(parents=True, exist_ok=True)
                result = run_grid(name, executor,
                                  f"sqlite://{root / 'store.db'}",
                                  "host-death")
                counters = injector.snapshot()
                if counters["host_kills"] != 1:
                    raise AssertionError(
                        f"[host-death] {name}: the plan delivered "
                        f"{counters['host_kills']} agent kill(s), wanted "
                        f"exactly 1 — the fault path was not exercised")
                if executor.hosts_lost != 1:
                    raise AssertionError(
                        f"[host-death] {name}: executor observed "
                        f"{executor.hosts_lost} host death(s), wanted 1")
                if len(fleet.alive) != 1:
                    raise AssertionError(
                        f"[host-death] {name}: {len(fleet.alive)} agents "
                        f"alive after the kill, wanted 1")
                result.update({
                    "reassignments": executor.reassignments,
                    "rerun_points": executor.rerun_points,
                    "hosts_lost": executor.hosts_lost,
                    "faults": counters,
                })
                grids[name] = result
    total_reassigned = sum(g["reassignments"] for g in grids.values())
    if total_reassigned < 1:
        raise AssertionError(
            "host-death pass: no chunk was ever reassigned — every kill "
            "landed after the victim's work had drained, so the recovery "
            "path went unexercised")
    return {
        "grids": grids,
        "totals": {
            "host_kills": sum(g["faults"]["host_kills"]
                              for g in grids.values()),
            "reassignments": total_reassigned,
            "rerun_points": sum(g["rerun_points"] for g in grids.values()),
            "elapsed_s": round(sum(g["elapsed_s"] for g in grids.values()),
                               6),
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--grids", nargs="+", metavar="NAME",
                        choices=sorted(GOLDEN_GRIDS), default=None,
                        help="restrict the gate to these golden grids "
                             "(default: all committed grids)")
    parser.add_argument("--skip-fault-pass", action="store_true",
                        help="run only the clean topology sweep (dev loop)")
    args = parser.parse_args()
    grid_names = (tuple(sorted(args.grids)) if args.grids
                  else tuple(sorted(GOLDEN_GRIDS)))

    scratch = pathlib.Path(tempfile.mkdtemp(prefix="dist-gate-"))
    try:
        clean = run_clean_pass(grid_names, scratch)
        fault = ({} if args.skip_fault_pass
                 else run_fault_pass(grid_names, scratch))
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    payload = {
        "schema": "repro-dist-gate/1",
        "grids": list(grid_names),
        "topologies": [f"hosts={h},workers={w}" for h, w in TOPOLOGIES],
        "clean": clean,
        "host_death": fault,
    }
    REPORT_PATH.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n",
        encoding="utf-8")

    for key, result in clean.items():
        counters = result["counters"]
        elapsed = sum(g["elapsed_s"] for g in result["grids"].values())
        print(f"dist-check[{key}]: {len(grid_names)} golden grids "
              f"byte-identical ({counters['points_sent']} points shipped, "
              f"{counters['steals']} steals, {counters['duplicates']} "
              f"deduped duplicates; {elapsed:.2f} s)")
    if fault:
        totals = fault["totals"]
        print(f"dist-check[host-death]: {len(grid_names)} golden grids "
              f"byte-identical through {totals['host_kills']} SIGKILLed "
              f"agent(s) ({totals['reassignments']} chunk reassignments, "
              f"{totals['rerun_points']} re-shipped points; "
              f"{totals['elapsed_s']:.2f} s)")
    print(f"dist-check: counters -> {REPORT_PATH.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
