#!/usr/bin/env python3
"""CI gate for the content-addressed sweep result store (``repro.store``).

Runs every committed golden grid twice against one store per backend
(JSON directory and ``sqlite://``) and enforces the store contract end to
end, per backend:

* the cold pass simulates every point (all misses), populates the store,
  and must reproduce the committed ``tests/golden`` snapshots;
* the warm pass performs **zero simulations** (every point is a store hit —
  simulation is fenced off by instrumentation, not inferred from timing);
* the warm :meth:`~repro.sim.sweep.SweepResult.snapshot` is byte-identical
  to the cold one.

With ``--serve`` the same contract is enforced *through the serve daemon*
(``repro.serve``): every golden grid is fetched twice over HTTP from an
in-process :class:`~repro.serve.ServeDaemon` per backend; the cold pass
may simulate, the warm pass must simulate nothing, and both passes must
rehydrate byte-identical to the committed snapshots.  Request latency
percentiles land in ``BENCH_serve.json``.

Per-backend statistics — warm hit latency, ``stats`` latency, payload and
on-disk bytes — land in ``BENCH_store.json`` at the repository root with
a ``comparison`` section (SQLite vs JSON ratios) so CI tracks the backend
trade-off alongside ``BENCH_sweep.json``.

Run as ``make store-check`` (both backends), ``make store-check-sqlite``
(SQLite only), or ``PYTHONPATH=src python tools/store_check.py
[--serve] [--backend json|sqlite|both] [--grids NAME ...]`` (``--grids``
restricts the gate to a subset of the committed grids — the
``failure-scenarios`` CI leg gates just the two failure grids through the
serve path this way).  Stores are scratched under the
``REPRO_SWEEP_STORE`` location when set (what the CI leg does), else a
temporary directory.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.harness import (  # noqa: E402
    GOLDEN_GRIDS,
    load_golden,
    snapshot_diff,
)
from repro.sim.sweep import SweepRunner  # noqa: E402
from repro.store import STORE_ENV_VAR, SweepStore  # noqa: E402
from repro.store.backend import SQLITE_URI_PREFIX  # noqa: E402

#: Backends the gate replays (the acceptance bar: all golden grids pass
#: cold-then-warm on *both*).
BACKENDS = ("json", "sqlite")

#: Grids the gate replays: every committed golden grid.
CHECKED_GRIDS = tuple(sorted(GOLDEN_GRIDS))

#: Where the committed golden snapshots live.
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

#: Where the store statistics land (repo root, uploaded as a CI artifact).
REPORT_PATH = REPO_ROOT / "BENCH_store.json"

#: Where the serve gate's latency percentiles land.
SERVE_REPORT_PATH = REPO_ROOT / "BENCH_serve.json"


def backend_location(root: pathlib.Path, backend: str) -> str:
    """Store location string for one backend under a scratch root."""
    if backend == "sqlite":
        return f"{SQLITE_URI_PREFIX}{root / 'store.db'}"
    return str(root / "store")


def run_gate(location: str, backend: str, grids: dict) -> dict:
    """Cold/warm passes on one backend; returns its stats payload."""
    simulated = []
    original_run_point = SweepRunner._run_point

    def counting_run_point(self, point):
        simulated.append(point)
        return original_run_point(self, point)

    SweepRunner._run_point = counting_run_point
    try:
        # workers=0 pins the serial executor: the gate counts simulations
        # through a parent-process instrumentation hook that spawn workers
        # would not see, and the store contract is worker-count-invariant
        # anyway (tests/test_store.py covers workers=0/1/4 per backend).
        cold_store = SweepStore(location)
        start = time.perf_counter()
        cold = {name: grid.build_runner().run(grid.points(), workers=0,
                                              store=cold_store).snapshot()
                for name, grid in grids.items()}
        cold_s = time.perf_counter() - start
        cold_simulated = len(simulated)
        if cold_store.hits or cold_store.puts != cold_simulated:
            raise AssertionError(
                f"[{backend}] cold pass expected all misses: "
                f"{cold_store.hits} hits, {cold_store.puts} puts, "
                f"{cold_simulated} simulations")
        for name in grids:
            diffs = snapshot_diff(load_golden(name, GOLDEN_DIR), cold[name])
            if diffs:
                raise AssertionError(
                    f"[{backend}] {name}: cold store-backed run diverged "
                    f"from the committed golden (first differences: {diffs})")

        warm_store = SweepStore(location)
        start = time.perf_counter()
        warm = {name: grid.build_runner().run(grid.points(), workers=0,
                                              store=warm_store).snapshot()
                for name, grid in grids.items()}
        warm_s = time.perf_counter() - start
        warm_simulated = len(simulated) - cold_simulated
        if warm_simulated or warm_store.misses:
            raise AssertionError(
                f"[{backend}] warm pass simulated {warm_simulated} points / "
                f"{warm_store.misses} store misses (expected all hits)")
        for name in grids:
            diffs = snapshot_diff(cold[name], warm[name])
            if diffs:
                raise AssertionError(
                    f"[{backend}] {name}: warm snapshot diverged from cold "
                    f"(first differences: {diffs})")
    finally:
        SweepRunner._run_point = original_run_point

    # Per-backend micro-latencies over the populated store: average warm
    # hit (full rehydration) and average stats() call — the two
    # operations the serve daemon leans on.
    probe = SweepStore(location)
    keys = probe.backend.entries()
    start = time.perf_counter()
    for key in keys:
        if probe.get(key) is None:
            raise AssertionError(f"[{backend}] probe miss for stored {key}")
    hit_ms = (time.perf_counter() - start) * 1000.0 / max(1, len(keys))
    start = time.perf_counter()
    stats_rounds = 20
    for _ in range(stats_rounds):
        stats = probe.stats()
    stats_ms = (time.perf_counter() - start) * 1000.0 / stats_rounds
    probe.close()
    warm_store.close()
    cold_store.close()

    return {
        "points": cold_simulated,
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 3) if warm_s else None,
        "hit_ms": round(hit_ms, 4),
        "stats_ms": round(stats_ms, 4),
        "store": stats.to_dict(),
    }


def run_serve_gate(location: str, backend: str, grids: dict) -> dict:
    """Golden round-trip through the serve daemon on one backend.

    Every selected golden grid, fetched twice over HTTP from one
    in-process daemon: the warm pass must do zero simulations, and both
    passes must rehydrate byte-identical to ``tests/golden``.
    """
    from repro.serve import ServeClient, ServeDaemon

    simulated = []
    original_run_point = SweepRunner._run_point

    def counting_run_point(self, point):
        simulated.append(point)
        return original_run_point(self, point)

    # workers=0 keeps simulation on the daemon's batch threads, inside this
    # process, so the counting hook actually fences it.
    SweepRunner._run_point = counting_run_point
    latencies = {"cold_s": [], "warm_s": []}
    try:
        with ServeDaemon(port=0, store=location) as daemon:
            client = ServeClient(daemon.url)
            for passname in ("cold_s", "warm_s"):
                before = len(simulated)
                for name, grid in grids.items():
                    runner = grid.build_runner()
                    start = time.perf_counter()
                    results = client.whatif(runner, grid.points())
                    latencies[passname].append(time.perf_counter() - start)
                    bad = [r.status for r in results if r.status != "ok"]
                    if bad:
                        raise AssertionError(
                            f"[{backend}] {name} ({passname}): non-ok "
                            f"statuses {bad}")
                    served = {"records": [r.record.snapshot()
                                          for r in results]}
                    diffs = snapshot_diff(load_golden(name, GOLDEN_DIR),
                                          served)
                    if diffs:
                        raise AssertionError(
                            f"[{backend}] {name} ({passname}): served "
                            f"records diverge from the committed golden "
                            f"(first: {diffs})")
                if passname == "warm_s" and len(simulated) > before:
                    raise AssertionError(
                        f"[{backend}] warm serve pass simulated "
                        f"{len(simulated) - before} points (expected pure "
                        f"store reads)")
            stats = client.stats()
    finally:
        SweepRunner._run_point = original_run_point

    return {
        "points": len(simulated),
        "cold_s": round(sum(latencies["cold_s"]), 6),
        "warm_s": round(sum(latencies["warm_s"]), 6),
        "latency": stats["latency"],
        "batcher": stats["batcher"],
        "store": stats.get("store") or {},
    }


def _comparison(backends: dict) -> dict:
    """SQLite-vs-JSON ratios when both backends ran."""
    js, sq = backends.get("json"), backends.get("sqlite")
    if not js or not sq:
        return {}
    comparison = {}
    if sq.get("hit_ms"):
        comparison["hit_speedup"] = round(js["hit_ms"] / sq["hit_ms"], 3)
    if sq.get("stats_ms"):
        comparison["stats_speedup"] = round(js["stats_ms"] / sq["stats_ms"],
                                            3)
    js_disk = js["store"].get("disk_bytes")
    sq_disk = sq["store"].get("disk_bytes")
    if js_disk and sq_disk:
        comparison["disk_ratio_json_over_sqlite"] = round(js_disk / sq_disk,
                                                          3)
    return comparison


def _scratch_root() -> pathlib.Path:
    """Parent directory the per-backend scratch stores live under."""
    env = os.environ.get(STORE_ENV_VAR, "").strip()
    if not env:
        return pathlib.Path(tempfile.mkdtemp(prefix="store-gate-"))
    # A fresh scratch *under* the configured location: the gate's cold
    # pass must start from zero entries, and the ambient store may already
    # hold these exact grids (the golden tests populate it when the whole
    # suite runs store-backed — or a previous gate run did).
    if env.startswith(SQLITE_URI_PREFIX):
        base = pathlib.Path(env[len(SQLITE_URI_PREFIX):]).parent
    else:
        base = pathlib.Path(env)
    base.mkdir(parents=True, exist_ok=True)
    return pathlib.Path(tempfile.mkdtemp(prefix="store-gate-", dir=base))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--serve", action="store_true",
                        help="run the gate through the serve daemon")
    parser.add_argument("--backend", choices=(*BACKENDS, "both"),
                        default="both", help="backend(s) to gate")
    parser.add_argument("--grids", nargs="+", metavar="NAME",
                        choices=sorted(GOLDEN_GRIDS), default=None,
                        help="restrict the gate to these golden grids "
                             "(default: all committed grids)")
    args = parser.parse_args()
    selected = BACKENDS if args.backend == "both" else (args.backend,)
    grid_names = tuple(sorted(args.grids)) if args.grids else CHECKED_GRIDS
    grids = {name: GOLDEN_GRIDS[name] for name in grid_names}

    scratch = _scratch_root()
    per_backend = {}
    try:
        for backend in selected:
            root = scratch / backend
            root.mkdir(parents=True, exist_ok=True)
            location = backend_location(root, backend)
            if args.serve:
                per_backend[backend] = run_serve_gate(location, backend, grids)
            else:
                per_backend[backend] = run_gate(location, backend, grids)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    if args.serve:
        payload = {
            "schema": "repro-serve-gate/2",
            "grids": list(grid_names),
            "backends": per_backend,
        }
        SERVE_REPORT_PATH.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
            encoding="utf-8")
        for backend, result in per_backend.items():
            print(f"serve-check[{backend}]: {result['points']} points over "
                  f"{len(grids)} golden grids served byte-identical "
                  f"over HTTP; warm pass pure store reads (cold "
                  f"{result['cold_s']:.2f} s, warm {result['warm_s']:.2f} s)")
        print(f"serve-check: latency -> {SERVE_REPORT_PATH.name}")
        return 0
    payload = {
        "schema": "repro-store-gate/2",
        "grids": list(grid_names),
        "backends": per_backend,
        "comparison": _comparison(per_backend),
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n",
                           encoding="utf-8")
    for backend, result in per_backend.items():
        print(f"store-check[{backend}]: {result['points']} points over "
              f"{len(grids)} grids; warm pass all hits and "
              f"byte-identical (cold {result['cold_s']:.2f} s, warm "
              f"{result['warm_s']:.2f} s, {result['speedup']}x; hit "
              f"{result['hit_ms']:.2f} ms, stats {result['stats_ms']:.2f} ms)")
    if payload["comparison"]:
        print(f"store-check: sqlite vs json -> {payload['comparison']}; "
              f"stats -> {REPORT_PATH.name}")
    else:
        print(f"store-check: stats -> {REPORT_PATH.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
