# Development entry points.  Everything runs against the in-tree sources
# (PYTHONPATH=src), so no editable install is required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench docs-check check

## Tier-1 test suite (must stay green).
test:
	$(PYTHON) -m pytest -x -q tests

## Reproduce the paper's tables/figures and the sweep-speed benchmark.
bench:
	$(PYTHON) -m pytest -q benchmarks -s

## Verify every repro.__all__ symbol is documented in docs/API.md.
docs-check:
	$(PYTHON) tools/docs_check.py

## Everything the CI gate runs.
check: test docs-check
