"""Concurrency tests for the content-addressed store (``repro.store``).

The write-once concurrency contract the serve layer builds on, enforced
against **both** backends (JSON directory and ``sqlite://`` database):

* **concurrent writers never corrupt** — many threads putting the same
  key leave exactly one valid entry (first writer stores, the rest are
  ``redundant``), and racing writers that all miss the existence check
  still converge on identical bytes;
* **readers racing writers** — a reader sees either a miss or the one
  true entry, never torn bytes; proven by replaying the store's recorded
  read/write trace through :func:`~repro.store.verify_store_trace`
  (write-once + reads-serve-writes, checked over digests of the actual
  bytes each operation touched — file bytes for JSON, payload blobs for
  SQLite — so the checker is backend-independent);
* **corruption degrades and repairs** — a truncated entry is a counted
  invalid miss, is deleted so the write-once ``put`` can re-store it, and
  the repair round-trips byte-identically;
* **no stray files** — the JSON layout's atomic-write temp names are
  unique per (process, thread, attempt) and cleaned up on every path; the
  SQLite layout leaves nothing but the database (plus its WAL/shm);
* the trace checker itself **rejects fabricated inconsistent histories**
  (it must be able to fail, or passing it proves nothing).
"""

from __future__ import annotations

import json
import pathlib
import sqlite3
import threading

import pytest

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import RESNET18
from repro.sim.sweep import SweepPoint, SweepRunner
from repro.store import (
    StoreTraceEvent,
    SweepStore,
    merge_store_traces,
    verify_store_trace,
)

SCALE = 1 / 500.0

BACKENDS = ("json", "sqlite")


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def location(tmp_path, backend) -> str:
    if backend == "sqlite":
        return f"sqlite://{tmp_path / 'store.db'}"
    return str(tmp_path / "store")


def _write_raw(store: SweepStore, key: str, data: bytes) -> None:
    """Overwrite ``key``'s stored bytes in place, bypassing the backend.

    Opens its own connection for SQLite, so it is safe from any thread.
    """
    if store.backend.kind == "json":
        store.entry_path(key).write_bytes(data)
        return
    con = sqlite3.connect(str(store.backend.path), timeout=30.0)
    try:
        con.execute("UPDATE entries SET payload = ? WHERE key = ?",
                    (data, key))
        con.commit()
    finally:
        con.close()


def _read_raw(store: SweepStore, key: str) -> bytes:
    if store.backend.kind == "json":
        return store.entry_path(key).read_bytes()
    con = sqlite3.connect(str(store.backend.path), timeout=30.0)
    try:
        row = con.execute("SELECT payload FROM entries WHERE key = ?",
                          (key,)).fetchone()
        assert row is not None, f"no stored entry for {key}"
        return bytes(row[0])
    finally:
        con.close()


def _runner() -> SweepRunner:
    return SweepRunner(config_ssd_v100, scale=SCALE, seed=0)


def _point(fraction: float = 0.5) -> SweepPoint:
    return SweepPoint(model=RESNET18, loader="coordl", dataset="openimages",
                      cache_fraction=fraction)


def _simulate(runner: SweepRunner, point: SweepPoint):
    return runner.run([point]).records[0]


def _run_threads(workers):
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    assert not any(thread.is_alive() for thread in threads)


class TestConcurrentWriters:
    def test_same_key_put_race_is_write_once(self, location):
        runner, point = _runner(), _point()
        record = _simulate(runner, point)
        store = SweepStore(location)
        key = store.key_for(runner, point)
        barrier = threading.Barrier(8)

        def writer():
            barrier.wait()
            store.put(key, record)

        _run_threads([writer] * 8)
        assert store.puts + store.redundant_puts == 8
        assert store.puts >= 1
        # Exactly one valid entry stored, rehydrating byte-identically.
        assert store.stats().entries == 1
        rehydrated = SweepStore(location).get(key, point)
        assert (rehydrated.snapshot(include_timeline=True)
                == record.snapshot(include_timeline=True))

    def test_racing_past_the_existence_check_converges(self, location):
        """Four stores (no shared lock or counters) writing the same key:
        both may store, but the surviving bytes are valid and identical."""
        runner, point = _runner(), _point()
        record = _simulate(runner, point)
        stores = [SweepStore(location) for _ in range(4)]
        key = stores[0].key_for(runner, point)
        barrier = threading.Barrier(4)

        def writer(store):
            barrier.wait()
            store.put(key, record)

        _run_threads([lambda s=s: writer(s) for s in stores])
        assert stores[0].backend.entries() == [key]
        if stores[0].backend.kind == "json":
            entry = stores[0].entry_path(key)
            assert json.loads(entry.read_text())["key"] == key
        rehydrated = SweepStore(location).get(key, point)
        assert (rehydrated.snapshot(include_timeline=True)
                == record.snapshot(include_timeline=True))

    def test_no_stray_files(self, location, tmp_path, backend):
        runner, point = _runner(), _point()
        record = _simulate(runner, point)
        store = SweepStore(location)
        key = store.key_for(runner, point)

        def writer():
            for _ in range(5):
                store.put(key, record)

        _run_threads([writer] * 6)
        if backend == "json":
            strays = [p for p in (tmp_path / "store").rglob("*")
                      if p.is_file() and not p.name.endswith(".json")]
            assert strays == []
        else:
            allowed = {"store.db", "store.db-wal", "store.db-shm"}
            present = {p.name for p in tmp_path.iterdir() if p.is_file()}
            assert present <= allowed


class TestTraceConsistency:
    def test_concurrent_readers_and_writers_trace_verifies(self, location):
        """8 threads mixing gets and puts over overlapping keys: the store's
        own read/write trace satisfies the write-once contract."""
        runner = _runner()
        points = [_point(fraction) for fraction in (0.3, 0.5, 0.7)]
        records = {p.cache_fraction: _simulate(runner, p) for p in points}
        store = SweepStore(location, trace=True)
        keys = {p.cache_fraction: store.key_for(runner, p) for p in points}
        barrier = threading.Barrier(8)

        def reader():
            barrier.wait()
            for _ in range(10):
                for point in points:
                    store.get(keys[point.cache_fraction], point)

        def writer():
            barrier.wait()
            for _ in range(5):
                for point in points:
                    store.put(keys[point.cache_fraction],
                              records[point.cache_fraction])

        _run_threads([reader] * 4 + [writer] * 4)
        assert store.trace_events, "tracing was on but recorded nothing"
        assert verify_store_trace(store.trace_events) == []
        # Sanity over the counters the trace is built from.  Writers racing
        # past the existence check may all store (identical bytes), so puts
        # is bounded by the writer count, not pinned to one per key (the
        # SQLite backend's conflict-free INSERT pins it to one, which sits
        # inside the same bound).
        assert len(points) <= store.puts <= 4 * len(points)
        assert store.puts + store.redundant_puts == 4 * 5 * len(points)
        assert store.hits + store.misses == 4 * 10 * len(points)

    def test_verifier_rejects_conflicting_writes(self):
        events = [
            StoreTraceEvent(seq=0, op="put", key="k1", outcome="stored",
                            digest="aaaa", thread=1),
            StoreTraceEvent(seq=1, op="put", key="k1", outcome="stored",
                            digest="bbbb", thread=2),
        ]
        violations = verify_store_trace(events)
        assert len(violations) == 1
        assert "write-once violated" in violations[0]

    def test_verifier_rejects_reads_of_unwritten_bytes(self):
        events = [
            StoreTraceEvent(seq=0, op="put", key="k1", outcome="stored",
                            digest="aaaa", thread=1),
            StoreTraceEvent(seq=1, op="get", key="k1", outcome="hit",
                            digest="cccc", thread=2),
        ]
        violations = verify_store_trace(events)
        assert len(violations) == 1
        assert "no put of that key wrote" in violations[0]

    def test_verifier_rejects_disagreeing_preexisting_hits(self):
        events = [
            StoreTraceEvent(seq=0, op="get", key="k2", outcome="hit",
                            digest="aaaa", thread=1),
            StoreTraceEvent(seq=1, op="get", key="k2", outcome="hit",
                            digest="bbbb", thread=2),
        ]
        violations = verify_store_trace(events)
        assert len(violations) == 1
        assert "disagree" in violations[0]

    def test_verifier_accepts_consistent_history(self):
        events = [
            StoreTraceEvent(seq=0, op="get", key="k1", outcome="miss",
                            digest=None, thread=1),
            StoreTraceEvent(seq=1, op="put", key="k1", outcome="stored",
                            digest="aaaa", thread=1),
            StoreTraceEvent(seq=2, op="put", key="k1", outcome="redundant",
                            digest=None, thread=2),
            StoreTraceEvent(seq=3, op="get", key="k1", outcome="hit",
                            digest="aaaa", thread=2),
        ]
        assert verify_store_trace(events) == []


class TestCorruptionRepair:
    def test_truncated_entry_is_invalid_miss_then_repaired(self, location):
        runner, point = _runner(), _point()
        record = _simulate(runner, point)
        store = SweepStore(location, trace=True)
        key = store.key_for(runner, point)
        store.put(key, record)
        _write_raw(store, key, _read_raw(store, key)[:25])  # torn write
        assert store.get(key, point) is None
        assert store.invalid == 1 and store.misses == 1
        # Deleted, re-opening the write-once key for the repairing put.
        assert key not in store.backend.entries()
        # The repairing put stores (not redundant), and the entry serves.
        store.put(key, record)
        assert store.puts == 2 and store.redundant_puts == 0
        rehydrated = store.get(key, point)
        assert (rehydrated.snapshot(include_timeline=True)
                == record.snapshot(include_timeline=True))
        assert verify_store_trace(store.trace_events) == []

    def test_concurrent_truncation_and_reads_never_serve_wrong_bytes(
            self, location):
        """Readers racing a corrupter and a repairer: every hit served the
        one true content (checked over the recorded trace)."""
        runner, point = _runner(), _point()
        record = _simulate(runner, point)
        store = SweepStore(location, trace=True)
        key = store.key_for(runner, point)
        store.put(key, record)
        payload = _read_raw(store, key)
        barrier = threading.Barrier(6)
        stop = threading.Event()

        def reader():
            barrier.wait()
            while not stop.is_set():
                result = store.get(key, point)
                if result is not None:
                    assert (result.snapshot(include_timeline=True)
                            == record.snapshot(include_timeline=True))

        def corrupter():
            barrier.wait()
            for _ in range(10):
                try:
                    _write_raw(store, key, payload[:30])
                except (OSError, sqlite3.Error):
                    pass

        def repairer():
            barrier.wait()
            for _ in range(20):
                store.put(key, record)
            stop.set()

        _run_threads([reader] * 4 + [corrupter, repairer])
        stop.set()
        # Write-once + reads-serve-writes must hold over the whole ordeal;
        # corrupted reads appear as invalid (not hit) events and pass.
        assert verify_store_trace(store.trace_events) == []


class TestMultiWriterTraces:
    """Several concurrent writer processes/drivers (the multi-host fabric's
    shape) each record their own trace; merged into one globally-sequenced
    history, the write-once contract still holds — and a fabricated
    conflicting multi-writer history is still caught."""

    def test_concurrent_writers_merge_to_a_consistent_trace(self, location):
        runner = _runner()
        points = [_point(fraction) for fraction in (0.3, 0.5, 0.7)]
        records = {p.cache_fraction: _simulate(runner, p) for p in points}
        writers = {
            name: SweepStore(location, trace=True, trace_writer=name)
            for name in ("driver-a", "driver-b", "driver-c")}
        keys = {p.cache_fraction:
                next(iter(writers.values())).key_for(runner, p)
                for p in points}
        barrier = threading.Barrier(len(writers) * 2)

        def churn(store):
            barrier.wait()
            for _ in range(5):
                for point in points:
                    store.put(keys[point.cache_fraction],
                              records[point.cache_fraction])
                    store.get(keys[point.cache_fraction], point)

        _run_threads([lambda s=s: churn(s)
                      for s in writers.values() for _ in range(2)])
        merged = merge_store_traces(
            {name: store.trace_events for name, store in writers.items()})
        assert merged, "tracing was on but recorded nothing"
        # Stamped, re-sequenced, and contract-clean as one history.
        assert [event.seq for event in merged] == list(range(len(merged)))
        assert {event.writer for event in merged} == set(writers)
        assert sum(len(s.trace_events) for s in writers.values()) == len(merged)
        assert verify_store_trace(merged) == []

    def test_merge_is_deterministic_and_keeps_local_order(self):
        a = [StoreTraceEvent(seq=0, op="put", key="k", outcome="stored",
                             digest="aaaa", thread=1),
             StoreTraceEvent(seq=1, op="get", key="k", outcome="hit",
                             digest="aaaa", thread=1)]
        b = [StoreTraceEvent(seq=0, op="get", key="k", outcome="hit",
                             digest="aaaa", thread=2)]
        merged = merge_store_traces({"b": b, "a": a})
        assert merged == merge_store_traces({"a": a, "b": b})
        # Ties on local seq break on the writer id; each writer's own
        # events keep their relative order.
        assert [(e.writer, e.op) for e in merged] == [
            ("a", "put"), ("b", "get"), ("a", "get")]
        assert [e.seq for e in merged] == [0, 1, 2]

    def test_merged_conflicting_writers_are_caught(self):
        """Two drivers claiming to have stored different bytes under one
        key: invisible inside either single-writer trace, a write-once
        violation in the merged one."""
        a = [StoreTraceEvent(seq=0, op="put", key="k1", outcome="stored",
                             digest="aaaa", thread=1)]
        b = [StoreTraceEvent(seq=0, op="put", key="k1", outcome="stored",
                             digest="bbbb", thread=1)]
        assert verify_store_trace(a) == []
        assert verify_store_trace(b) == []
        violations = verify_store_trace(
            merge_store_traces({"driver-a": a, "driver-b": b}))
        assert len(violations) == 1
        assert "write-once violated" in violations[0]

    def test_merged_cross_writer_stale_read_is_caught(self):
        """A reader on one host seeing bytes no writer anywhere put."""
        a = [StoreTraceEvent(seq=0, op="put", key="k1", outcome="stored",
                             digest="aaaa", thread=1)]
        b = [StoreTraceEvent(seq=0, op="get", key="k1", outcome="hit",
                             digest="cccc", thread=1)]
        violations = verify_store_trace(
            merge_store_traces({"driver-a": a, "driver-b": b}))
        assert len(violations) == 1
        assert "no put of that key wrote" in violations[0]
