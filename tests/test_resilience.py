"""Chaos suite for the runtime resilience layer (``repro.resilience``).

What this file pins, end to end:

* **fault plans are declarative and reproducible** — JSON round-trips,
  environment activation (inline or file), strict validation, and the
  injector's counter-machine semantics (per-op store fault counts,
  once-per-threshold kill schedules, exact-match batch stalls);
* **retry discipline** — transient errors are retried under a
  deterministic backoff policy, non-transient errors propagate from the
  first attempt, exhaustion re-raises the last transient error;
* **supervised pools survive murder** — a SIGKILLed worker mid-grid is
  detected, the pool rebuilt, lost chunks re-run *byte-identically*
  (per-point seeding makes retry exact), and an exhausted respawn budget
  escalates to the ordinary labelled ``SweepPointError`` protocol;
* **golden grids are chaos-proof** — under a plan injecting worker kills
  and transient store faults, committed golden snapshots reproduce
  bit-for-bit at ``workers=0/1/4`` on both store backends, with the
  store's own read/write trace still satisfying the write-once contract
  (``verify_store_trace``), including Hypothesis-generated fault
  schedules;
* **the store degrades, never corrupts** — permanent put failures step
  the ladder to ``read-only`` (skipped puts are counted), exhausted get
  retries step to ``no-store`` (compute-through), and degraded runs
  still produce byte-identical results;
* **the serve layer sheds and drains** — over-capacity sweep POSTs get
  ``503`` + ``Retry-After`` instead of queueing, a draining daemon
  rejects new sweeps while finishing admitted ones, ``/v1/health``
  reports per-subsystem degradation, and the client transparently
  retries refused/reset connections and 503 rejections.

Worker kills are delivered parent-side, so they need a live pool: on
machines whose core count clamps every sweep to serial, the kill tests
drive an explicit :class:`~repro.store.PersistentPool` (the pool path
bypasses the serial fallback), which is also what ``make chaos-check``
does — the byte-identity contract is the same either way.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import socket
import tempfile
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import RESNET18
from repro.exceptions import (
    ConfigurationError,
    PermanentFaultError,
    SweepPointError,
    TransientFaultError,
)
from repro.resilience import (
    FAULT_PLAN_ENV_VAR,
    NO_RETRY,
    FaultInjector,
    FaultPlan,
    KillSchedule,
    RetryPolicy,
    ServeStall,
    StoreFault,
    SupervisedExecutor,
    active_injector,
    call_with_retry,
    clear_installed,
    install_plan,
    is_transient,
)
from repro.serve import ServeClient, ServeDaemon, ServeError
from repro.sim.harness import GOLDEN_GRIDS, load_golden, snapshot_diff
from repro.sim.sweep import SweepPoint, SweepRunner, clamp_workers
from repro.store import PersistentPool, SweepStore, verify_store_trace

SCALE = 1 / 500.0

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """No test may leak a process-wide injector into its neighbours."""
    clear_installed()
    yield
    clear_installed()


def _runner() -> SweepRunner:
    return SweepRunner(config_ssd_v100, scale=SCALE, seed=0)


def _grid(n_fractions: int = 4):
    fractions = tuple(0.2 + 0.6 * i / max(1, n_fractions - 1)
                      for i in range(n_fractions))
    return SweepRunner.grid(models=[RESNET18],
                            loaders=["coordl", "dali-shuffle"],
                            cache_fractions=fractions, dataset="openimages")


def _point(fraction: float = 0.5) -> SweepPoint:
    return SweepPoint(model=RESNET18, loader="coordl", dataset="openimages",
                      cache_fraction=fraction)


# -- fault plans and the injector ---------------------------------------------


class TestFaultPlan:
    def test_round_trips_through_dict_and_json(self):
        plan = FaultPlan(
            seed=7, worker_kills=(2, 5),
            store_faults=(StoreFault(op="get", at=3, kind="transient",
                                     times=2),
                          StoreFault(op="put", at=1, kind="permanent")),
            serve_stalls=(ServeStall(at=2, stall_s=0.25),))
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert FaultPlan.from_json(json.dumps(plan.to_dict())) == plan

    def test_env_activation_inline_and_file(self, monkeypatch, tmp_path):
        plan = FaultPlan(worker_kills=(3,),
                         store_faults=(StoreFault(op="put", at=2),))
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, json.dumps(plan.to_dict()))
        clear_installed()  # forget the cached (empty) env resolution
        injector = active_injector()
        assert injector is not None and injector.plan == plan

        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(plan.to_dict()), encoding="utf-8")
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, str(plan_file))
        clear_installed()
        injector = active_injector()
        assert injector is not None and injector.plan == plan

    def test_unset_env_means_no_injector(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV_VAR, raising=False)
        clear_installed()
        assert active_injector() is None

    def test_installed_plan_beats_the_environment(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR,
                           json.dumps(FaultPlan(seed=1).to_dict()))
        clear_installed()
        installed = install_plan(FaultPlan(seed=99))
        assert active_injector() is installed
        assert active_injector().plan.seed == 99

    @pytest.mark.parametrize("payload", [
        {"store_faults": [{"op": "frobnicate"}]},
        {"store_faults": [{"kind": "sometimes"}]},
        {"store_faults": [{"at": 0}]},
        {"store_faults": [{"times": 0}]},
        {"worker_kills": [0]},
        {"serve_stalls": [{"at": 0}]},
        {"serve_stalls": [{"stall_s": -1}]},
        {"unknown_field": 1},
        [],
    ])
    def test_invalid_plans_are_rejected(self, payload):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict(payload)

    def test_unreadable_plan_file_fails_loudly(self, monkeypatch, tmp_path):
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, str(tmp_path / "missing.json"))
        with pytest.raises(ConfigurationError):
            FaultPlan.from_env()


class TestInjector:
    def test_kill_schedule_fires_once_per_threshold(self):
        schedule = KillSchedule((2, 2, 5))
        assert not schedule.due(1)
        assert schedule.due(2)       # first threshold at 2
        assert schedule.due(2)       # second threshold at 2
        assert not schedule.due(3)
        assert schedule.due(6)       # crossing 5 late still fires
        assert not schedule.due(100)  # schedule exhausted

    def test_store_faults_fire_by_per_op_call_count(self):
        injector = FaultInjector(FaultPlan(store_faults=(
            StoreFault(op="get", at=2, kind="transient", times=2),
            StoreFault(op="put", at=1, kind="permanent"))))
        injector.store_fault("get")  # get #1: clean
        with pytest.raises(TransientFaultError):
            injector.store_fault("get")  # get #2
        with pytest.raises(TransientFaultError):
            injector.store_fault("get")  # get #3 (times=2)
        injector.store_fault("get")  # get #4: clean again
        with pytest.raises(PermanentFaultError):
            injector.store_fault("put")  # put #1
        injector.store_fault("put")  # put #2: clean
        counters = injector.snapshot()
        assert counters["store_faults"] == 3
        assert counters["transient_store_faults"] == 2
        assert counters["permanent_store_faults"] == 1

    def test_any_op_faults_share_one_counter_per_op(self):
        injector = FaultInjector(FaultPlan(store_faults=(
            StoreFault(op="any", at=1),)))
        with pytest.raises(TransientFaultError):
            injector.store_fault("get")
        with pytest.raises(TransientFaultError):
            injector.store_fault("put")  # put count is independent of get's

    def test_batch_stalls_match_exact_batch_numbers(self):
        injector = FaultInjector(FaultPlan(serve_stalls=(
            ServeStall(at=2, stall_s=0.125),)))
        assert injector.batch_stall() == 0.0
        assert injector.batch_stall() == 0.125
        assert injector.batch_stall() == 0.0
        assert injector.snapshot()["batch_stalls"] == 1


# -- retry policy -------------------------------------------------------------


class TestRetry:
    def test_transient_errors_are_absorbed(self):
        attempts = []
        retried = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientFaultError("blip")
            return "done"

        result = call_with_retry(flaky, policy=RetryPolicy(max_attempts=4),
                                 on_retry=retried.append,
                                 sleep=lambda _s: None)
        assert result == "done"
        assert len(attempts) == 3 and len(retried) == 2

    def test_non_transient_errors_propagate_immediately(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise ValueError("real bug")

        with pytest.raises(ValueError):
            call_with_retry(broken, sleep=lambda _s: None)
        assert len(attempts) == 1

    def test_exhaustion_reraises_the_last_transient_error(self):
        attempts = []

        def always():
            attempts.append(1)
            raise TransientFaultError(f"blip #{len(attempts)}")

        with pytest.raises(TransientFaultError, match="#3"):
            call_with_retry(always, policy=RetryPolicy(max_attempts=3),
                            sleep=lambda _s: None)
        assert len(attempts) == 3

    def test_no_retry_policy_is_single_attempt(self):
        attempts = []

        def always():
            attempts.append(1)
            raise TransientFaultError("blip")

        with pytest.raises(TransientFaultError):
            call_with_retry(always, policy=NO_RETRY, sleep=lambda _s: None)
        assert len(attempts) == 1

    def test_backoff_delays_are_deterministic_and_capped(self):
        policy = RetryPolicy(max_attempts=5, backoff_s=0.01, multiplier=3.0,
                             max_backoff_s=0.05)
        assert list(policy.delays()) == [0.01, 0.03, 0.05, 0.05]

    def test_transient_classifier(self):
        import sqlite3
        assert is_transient(TransientFaultError("x"))
        assert is_transient(sqlite3.OperationalError("database is locked"))
        assert is_transient(OSError(11, "try again"))  # EAGAIN
        assert not is_transient(sqlite3.OperationalError("no such table"))
        assert not is_transient(PermanentFaultError("x"))
        assert not is_transient(ValueError("x"))


# -- supervised pool recovery -------------------------------------------------


class TestSupervisedPoolRecovery:
    def test_killed_worker_is_respawned_and_results_stay_exact(self):
        serial = _runner().run(_grid(), workers=0, store=False).snapshot()
        injector = FaultInjector(FaultPlan(worker_kills=(2,)))
        with PersistentPool(2, chunksize=1,
                            fault_injector=injector) as pool:
            chaotic = _runner().run(_grid(), pool=pool,
                                    store=False).snapshot()
        assert chaotic == serial
        assert injector.snapshot()["worker_kills"] >= 1
        assert pool.respawns >= 1
        assert pool.reruns >= 1

    def test_pool_remains_usable_after_recovery(self):
        injector = FaultInjector(FaultPlan(worker_kills=(1,)))
        points = _grid(2)
        with PersistentPool(1, chunksize=1, fault_injector=injector) as pool:
            first = _runner().run(points, pool=pool, store=False).snapshot()
            respawns_after_first = pool.respawns
            # The kill schedule restarts per run but the pool's budget is
            # per-run too, so a second run over the rebuilt pool also
            # recovers — and stays byte-identical.
            second = _runner().run(points, pool=pool, store=False).snapshot()
        assert first == second
        assert respawns_after_first >= 1
        assert pool.respawns >= respawns_after_first

    def test_exhausted_respawn_budget_escalates_to_sweep_point_error(self):
        injector = FaultInjector(FaultPlan(worker_kills=(1,)))
        with PersistentPool(2, chunksize=1, max_respawns=0,
                            fault_injector=injector) as pool:
            with pytest.raises(SweepPointError, match="kept dying"):
                _runner().run(_grid(), pool=pool, store=False)
        assert injector.snapshot()["worker_kills"] == 1

    def test_supervised_executor_rejects_bad_budget(self):
        with pytest.raises(ConfigurationError):
            SupervisedExecutor(2, max_respawns=-1)
        with pytest.raises(ConfigurationError):
            SupervisedExecutor(0)


# -- golden grids under chaos -------------------------------------------------

#: The deterministic chaos schedule the golden tests run under: one worker
#: kill after the second received result, plus two transient store faults
#: (the first get and the second put fail once each).
CHAOS_PLAN = FaultPlan(
    seed=9,
    worker_kills=(2,),
    store_faults=(StoreFault(op="get", at=1, kind="transient"),
                  StoreFault(op="put", at=2, kind="transient")),
)


def _store_location(backend: str, root: pathlib.Path) -> str:
    return (f"sqlite://{root / 'store.db'}" if backend == "sqlite"
            else str(root / "store"))


class TestChaosGoldenGrids:
    @pytest.mark.parametrize("backend", ["json", "sqlite"])
    @pytest.mark.parametrize("workers", [0, 1, 4])
    def test_fig3_grid_is_byte_identical_under_chaos(self, workers, backend,
                                                     tmp_path):
        expected = load_golden("fig3_small", GOLDEN_DIR)
        injector = install_plan(CHAOS_PLAN)
        store = SweepStore(_store_location(backend, tmp_path), trace=True)
        grid = GOLDEN_GRIDS["fig3_small"]
        actual = grid.build_runner().run(grid.points(), workers=workers,
                                         store=store).snapshot()
        assert not snapshot_diff(expected, actual)
        assert verify_store_trace(store.trace_events) == []
        counters = injector.snapshot()
        assert counters["transient_store_faults"] >= 2
        assert store.retries >= 2 and store.mode == "ok"
        if clamp_workers(workers) > 1:
            # The sweep went through a real pool: the planned kill landed.
            assert counters["worker_kills"] >= 1
        else:
            # Serial (or clamped-serial) runs have no workers to kill —
            # the byte-identity-across-worker-counts contract.
            assert counters["worker_kills"] == 0

    @pytest.mark.parametrize("backend", ["json", "sqlite"])
    def test_failure_grid_survives_kills_through_explicit_pool(self, backend,
                                                               tmp_path):
        """Kills are guaranteed to fire by driving the pool path directly
        (``pool=`` bypasses the clamped-serial fallback), over a grid whose
        committed bytes include deterministic failure-event traces."""
        expected = load_golden("fig_crash_small", GOLDEN_DIR)
        injector = install_plan(CHAOS_PLAN)
        store = SweepStore(_store_location(backend, tmp_path), trace=True)
        grid = GOLDEN_GRIDS["fig_crash_small"]
        with PersistentPool(2, chunksize=1) as pool:  # adopts the injector
            actual = grid.build_runner().run(grid.points(), pool=pool,
                                             store=store).snapshot()
        assert not snapshot_diff(expected, actual)
        assert verify_store_trace(store.trace_events) == []
        counters = injector.snapshot()
        assert counters["worker_kills"] >= 1
        assert counters["transient_store_faults"] >= 2
        assert store.mode == "ok"

    def test_chaos_run_warms_the_store_for_a_fault_free_reread(self, tmp_path):
        """Whatever chaos the cold run survived, the warm pass rehydrates
        the same bytes without simulating."""
        injector = install_plan(CHAOS_PLAN)
        store_dir = str(tmp_path / "store")
        grid = GOLDEN_GRIDS["fig3_small"]
        cold = grid.build_runner().run(grid.points(),
                                       store=store_dir).snapshot()
        assert injector.snapshot()["transient_store_faults"] >= 2
        clear_installed()
        warm_store = SweepStore(store_dir, trace=True)
        warm = grid.build_runner().run(grid.points(),
                                       store=warm_store).snapshot()
        assert not snapshot_diff(cold, warm)
        assert warm_store.hits == len(grid.points())
        assert warm_store.misses == 0


_store_fault_strategy = st.builds(
    StoreFault,
    op=st.sampled_from(["get", "put", "any"]),
    at=st.integers(min_value=1, max_value=12),
    kind=st.sampled_from(["transient", "permanent"]),
    times=st.integers(min_value=1, max_value=5),
)


class TestHypothesisChaosPlans:
    @given(faults=st.lists(_store_fault_strategy, min_size=1, max_size=4),
           seed=st.integers(0, 2**16))
    @settings(max_examples=8, deadline=None)
    def test_any_store_fault_schedule_keeps_the_grid_byte_identical(
            self, faults, seed):
        """Property: *no* store-fault schedule — transient, permanent, or
        a mix dense enough to exhaust retries and degrade the store — can
        change a single bit of the grid or corrupt the stored trace."""
        expected = load_golden("fig3_small", GOLDEN_DIR)
        grid = GOLDEN_GRIDS["fig3_small"]
        root = pathlib.Path(tempfile.mkdtemp(prefix="repro-chaos-"))
        try:
            install_plan(FaultPlan(seed=seed, store_faults=tuple(faults)))
            store = SweepStore(root / "store", trace=True)
            actual = grid.build_runner().run(grid.points(),
                                             store=store).snapshot()
            assert not snapshot_diff(expected, actual)
            assert verify_store_trace(store.trace_events) == []
            assert store.mode in SweepStore.MODES
        finally:
            clear_installed()
            shutil.rmtree(root, ignore_errors=True)

    @given(kills=st.lists(st.integers(min_value=1, max_value=8),
                          min_size=1, max_size=2))
    @settings(max_examples=3, deadline=None)
    def test_any_kill_schedule_keeps_the_grid_byte_identical(self, kills):
        expected = load_golden("fig3_small", GOLDEN_DIR)
        grid = GOLDEN_GRIDS["fig3_small"]
        injector = FaultInjector(FaultPlan(worker_kills=tuple(kills)))
        try:
            with PersistentPool(2, chunksize=1,
                                fault_injector=injector) as pool:
                actual = grid.build_runner().run(grid.points(), pool=pool,
                                                 store=False).snapshot()
            assert not snapshot_diff(expected, actual)
        finally:
            clear_installed()


# -- store degradation ladder -------------------------------------------------


class TestStoreDegradation:
    @pytest.mark.parametrize("backend", ["json", "sqlite"])
    def test_permanent_put_failure_degrades_to_read_only(self, backend,
                                                         tmp_path):
        injector = FaultInjector(FaultPlan(store_faults=(
            StoreFault(op="put", at=1, kind="permanent"),)))
        store = SweepStore(_store_location(backend, tmp_path), trace=True,
                           fault_injector=injector)
        runner, point = _runner(), _point()
        record = runner.run([point], store=False).records[0]
        key = store.key_for(runner, point)

        store.put(key, record)  # injected permanent failure
        assert store.mode == "read-only" and store.degraded
        assert "PermanentFaultError" in store.degraded_reason
        assert store.skipped_puts == 1

        store.put(key, record)  # short-circuits without touching the backend
        assert store.skipped_puts == 2
        # Reads still work in read-only mode (nothing stored here: miss).
        assert store.get(key, point) is None
        assert verify_store_trace(store.trace_events) == []
        stats = store.stats().to_dict()
        assert stats["mode"] == "read-only" and stats["degraded"]
        assert stats["skipped_puts"] == 2

    @pytest.mark.parametrize("backend", ["json", "sqlite"])
    def test_exhausted_get_retries_degrade_to_no_store(self, backend,
                                                       tmp_path):
        policy = RetryPolicy(max_attempts=3, backoff_s=0.0)
        injector = FaultInjector(FaultPlan(store_faults=(
            StoreFault(op="get", at=1, kind="transient", times=10),)))
        store = SweepStore(_store_location(backend, tmp_path), trace=True,
                           retry_policy=policy, fault_injector=injector)
        runner, point = _runner(), _point()
        key = store.key_for(runner, point)

        assert store.get(key, point) is None
        assert store.mode == "no-store" and store.degraded
        assert store.retries == 2  # max_attempts - 1
        # Further gets (and puts) never consult the backend again.
        assert store.get(key, point) is None
        assert injector.snapshot()["store_faults"] == 3
        assert store.misses == 2
        record = runner.run([point], store=False).records[0]
        store.put(key, record)
        assert store.skipped_puts == 1
        assert verify_store_trace(store.trace_events) == []

    def test_transient_faults_within_budget_leave_the_store_healthy(
            self, tmp_path):
        injector = FaultInjector(FaultPlan(store_faults=(
            StoreFault(op="any", at=1, kind="transient"),)))
        store = SweepStore(tmp_path / "store", trace=True,
                           fault_injector=injector)
        runner, point = _runner(), _point()
        record = runner.run([point], store=False).records[0]
        key = store.key_for(runner, point)
        assert store.get(key, point) is None  # retried miss
        store.put(key, record)                # retried store
        rehydrated = store.get(key, point)
        assert (rehydrated.snapshot(include_timeline=True)
                == record.snapshot(include_timeline=True))
        assert store.mode == "ok" and not store.degraded
        assert store.retries == 2
        assert verify_store_trace(store.trace_events) == []

    def test_degraded_runner_run_still_matches_serial(self, tmp_path):
        """A store degraded from the first put changes timings, never bytes."""
        serial = _runner().run(_grid(2), store=False).snapshot()
        injector = FaultInjector(FaultPlan(store_faults=(
            StoreFault(op="put", at=1, kind="permanent"),)))
        store = SweepStore(tmp_path / "store", fault_injector=injector)
        degraded = _runner().run(_grid(2), store=store).snapshot()
        assert degraded == serial
        assert store.mode == "read-only"
        assert store.skipped_puts == len(_grid(2))


# -- serve-layer resilience ---------------------------------------------------


class TestServeDaemonResilience:
    def test_point_retries_configures_the_batcher_budget(self):
        with ServeDaemon(port=0, store=False, point_retries=2) as daemon:
            assert daemon.batcher._max_attempts == 3

    def test_conflicting_and_invalid_retry_knobs_are_rejected(self):
        with pytest.raises(ConfigurationError):
            ServeDaemon(port=0, store=False, max_attempts=2, point_retries=1)
        with pytest.raises(ConfigurationError):
            ServeDaemon(port=0, store=False, point_retries=-1)
        with pytest.raises(ConfigurationError):
            ServeDaemon(port=0, store=False, max_inflight=0)

    def test_over_capacity_requests_get_503_with_retry_after(self, tmp_path):
        injector = FaultInjector(FaultPlan(serve_stalls=(
            ServeStall(at=1, stall_s=1.0),)))
        with ServeDaemon(port=0, store=tmp_path / "store", max_inflight=1,
                         fault_injector=injector) as daemon:
            runner, points = _runner(), [_point()]
            first_results = []

            def admitted():
                client = ServeClient(daemon.url)
                first_results.extend(client.whatif(runner, points))

            thread = threading.Thread(target=admitted, daemon=True)
            thread.start()
            deadline = time.monotonic() + 5.0
            while daemon._inflight == 0 and time.monotonic() < deadline:
                time.sleep(0.01)

            impatient = ServeClient(daemon.url, retries=0)
            with pytest.raises(ServeError) as excinfo:
                impatient.whatif(runner, points)
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after == 1.0
            assert "over_capacity" in str(excinfo.value)

            thread.join(30.0)
            assert first_results and first_results[0].status == "ok"
            assert daemon.rejected >= 1
            stats = ServeClient(daemon.url).stats()
            assert stats["rejected"] >= 1
            assert stats["admission"]["max_inflight"] == 1
            assert "pool" not in stats  # workers=0: no pool subsystem

    def test_draining_daemon_rejects_new_sweeps_and_reports_it(self, tmp_path):
        with ServeDaemon(port=0, store=tmp_path / "store") as daemon:
            with daemon._lock:
                daemon._draining = True
            client = ServeClient(daemon.url, retries=0)
            with pytest.raises(ServeError) as excinfo:
                client.whatif(_runner(), [_point()])
            assert excinfo.value.status == 503
            assert "draining" in str(excinfo.value)
            health = client.health()
            assert health["status"] == "draining"
            assert health["subsystems"]["admission"]["draining"]
            with daemon._lock:
                daemon._draining = False
            results = client.whatif(_runner(), [_point()])
            assert results[0].status == "ok"

    def test_close_drains_inflight_requests(self, tmp_path):
        injector = FaultInjector(FaultPlan(serve_stalls=(
            ServeStall(at=1, stall_s=0.5),)))
        daemon = ServeDaemon(port=0, store=tmp_path / "store",
                             fault_injector=injector).start()
        results = []

        def query():
            results.extend(ServeClient(daemon.url).whatif(_runner(),
                                                          [_point()]))

        thread = threading.Thread(target=query, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5.0
        while daemon._inflight == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        daemon.close()
        thread.join(10.0)
        assert results and results[0].status == "ok"

    def test_health_reports_store_degradation_and_fault_counters(
            self, tmp_path):
        injector = FaultInjector(FaultPlan(store_faults=(
            StoreFault(op="put", at=1, kind="permanent"),)))
        with ServeDaemon(port=0, store=tmp_path / "store",
                         fault_injector=injector) as daemon:
            client = ServeClient(daemon.url)
            results = client.whatif(_runner(), [_point()])
            assert results[0].status == "ok"  # degraded store, healthy answer
            health = client.health()
            assert health["status"] == "degraded"
            assert health["subsystems"]["store"]["mode"] == "read-only"
            assert health["subsystems"]["store"]["skipped_puts"] >= 1
            assert health["faults"]["permanent_store_faults"] >= 1
            assert "batcher" in health["subsystems"]
            stats = client.stats()
            assert stats["store"]["mode"] == "read-only"
            assert "point_retries" in stats["batcher"]

    def test_healthy_daemon_health_shape(self, tmp_path):
        with ServeDaemon(port=0, store=tmp_path / "store") as daemon:
            health = ServeClient(daemon.url).health()
            assert health["status"] == "ok"
            admission = health["subsystems"]["admission"]
            assert admission["rejected"] == 0 and not admission["draining"]
            assert "faults" not in health  # no injector, no fault report


class TestServeClientRetry:
    def test_refused_connections_are_retried_then_surface(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        client = ServeClient(f"http://127.0.0.1:{port}", retries=2,
                             backoff_s=0.0)
        with pytest.raises(ConfigurationError, match="cannot reach"):
            client.health()
        assert client.retries_used == 2

    def test_503_honours_retry_after_then_succeeds(self, monkeypatch):
        from repro.serve import client as client_module
        calls = []
        sleeps = []

        def fake_request_once(self, method, path, data):
            calls.append(path)
            if len(calls) < 3:
                raise ServeError(503, "busy: over_capacity",
                                 retry_after=0.02)
            return {"status": "ok"}

        monkeypatch.setattr(ServeClient, "_request_once", fake_request_once)
        monkeypatch.setattr(client_module.time, "sleep", sleeps.append)
        client = ServeClient("http://127.0.0.1:1")
        assert client.health() == {"status": "ok"}
        assert len(calls) == 3 and client.retries_used == 2
        assert sleeps == [0.02, 0.02]

    def test_503_without_retry_after_uses_capped_backoff(self, monkeypatch):
        from repro.serve import client as client_module
        sleeps = []

        def always_busy(self, method, path, data):
            raise ServeError(503, "busy")

        monkeypatch.setattr(ServeClient, "_request_once", always_busy)
        monkeypatch.setattr(client_module.time, "sleep", sleeps.append)
        client = ServeClient("http://127.0.0.1:1", retries=3, backoff_s=0.1)
        with pytest.raises(ServeError):
            client.health()
        assert sleeps == [0.1, 0.2, 0.4]

    def test_connection_reset_is_retried(self, monkeypatch):
        calls = []

        def flaky(self, method, path, data):
            calls.append(1)
            if len(calls) == 1:
                error = ConfigurationError("cannot reach serve daemon")
                error._retryable = True
                raise error
            return {"ok": True}

        monkeypatch.setattr(ServeClient, "_request_once", flaky)
        client = ServeClient("http://127.0.0.1:1", backoff_s=0.0)
        assert client.health() == {"ok": True}
        assert client.retries_used == 1

    def test_non_retryable_errors_fail_fast(self, monkeypatch):
        calls = []

        def hopeless(self, method, path, data):
            calls.append(1)
            raise ConfigurationError("cannot reach serve daemon: bad DNS")

        monkeypatch.setattr(ServeClient, "_request_once", hopeless)
        client = ServeClient("http://127.0.0.1:1")
        with pytest.raises(ConfigurationError):
            client.health()
        assert len(calls) == 1 and client.retries_used == 0

    def test_non_503_http_errors_are_not_retried(self, monkeypatch):
        calls = []

        def not_found(self, method, path, data):
            calls.append(1)
            raise ServeError(404, "no such endpoint")

        monkeypatch.setattr(ServeClient, "_request_once", not_found)
        client = ServeClient("http://127.0.0.1:1")
        with pytest.raises(ServeError):
            client.health()
        assert len(calls) == 1

    def test_invalid_retry_knobs_are_rejected(self):
        with pytest.raises(ConfigurationError):
            ServeClient("http://127.0.0.1:1", retries=-1)
        with pytest.raises(ConfigurationError):
            ServeClient("http://127.0.0.1:1", backoff_s=-0.1)
