"""Data-loader layer: the shared abstraction and the DALI/PyTorch baselines."""

from repro.pipeline.base import BatchFetchResult, DataLoader
from repro.pipeline.dali import DALILoader, best_dali_loader
from repro.pipeline.pytorch_native import PyTorchNativeLoader
from repro.pipeline.stats import EpochStats, TrainingRunStats

__all__ = [
    "DataLoader",
    "BatchFetchResult",
    "DALILoader",
    "best_dali_loader",
    "PyTorchNativeLoader",
    "EpochStats",
    "TrainingRunStats",
]
