"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming errors
such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or out-of-range values."""


class CacheError(ReproError):
    """Base class for cache-related failures."""


class CacheCapacityError(CacheError):
    """An item larger than the total cache capacity was offered to the cache."""


class UnknownItemError(ReproError):
    """A dataset item id was requested that does not exist in the dataset."""


class StagingTimeoutError(ReproError):
    """A job timed out waiting for a minibatch in the cross-job staging area."""


class JobFailedError(ReproError):
    """A coordinated-prep job died and could not be recovered."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class ProfilingError(ReproError):
    """DS-Analyzer could not complete a measurement phase."""
