"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.experiments import registry


class TestCLI:
    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(registry.experiment_ids())

    def test_run_experiment_prints_table(self, capsys):
        assert main(["run-experiment", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "MinIO" in out and "page cache" in out

    def test_run_experiment_with_scale(self, capsys):
        assert main(["run-experiment", "fig1", "--scale", "0.002"]) == 0
        assert "ResNet18" in capsys.readouterr().out

    def test_profile_command(self, capsys):
        code = main(["profile", "resnet18", "openimages", "config-ssd-v100",
                     "--cache", "0.5", "--scale", "0.002", "--gpu-prep"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GPU ingestion rate" in out
        assert "Recommended cache" in out

    def test_report_command_writes_file(self, tmp_path, capsys):
        # Use a large scale divisor to keep the full report generation fast.
        output = tmp_path / "EXPERIMENTS_test.md"
        assert main(["report", "-o", str(output), "--scale", "0.002"]) == 0
        text = output.read_text()
        assert "# EXPERIMENTS" in text
        assert "Fig. 9" in text

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fly-to-the-moon"])

    def test_unknown_experiment_raises_library_error(self):
        from repro.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError):
            main(["run-experiment", "fig99"])
