"""Simulation drivers: pipelined epoch engine and the three training scenarios."""

from repro.sim.accuracy import (
    AccuracyCurve,
    TimeToAccuracyResult,
    resnet50_imagenet_curve,
    time_to_accuracy,
)
from repro.sim.distributed import DistributedEpoch, DistributedResult, DistributedTraining
from repro.sim.failures import (
    FailureEpoch,
    FailureScenario,
    FailureScenarioResult,
)
from repro.sim.engine import (
    BatchTimes,
    PipelineSimulator,
    pipeline_makespan,
    pipeline_makespan_reference,
)
from repro.sim.hp_search import HPSearchResult, HPSearchScenario
from repro.sim.single_server import (
    LOADER_KINDS,
    SingleServerResult,
    SingleServerTraining,
    build_loader,
)
from repro.sim.sweep import (
    DISTRIBUTED_KINDS,
    FAILURE_KINDS,
    HP_SEARCH_KINDS,
    SweepPoint,
    SweepRecord,
    SweepResult,
    SweepRunner,
)

__all__ = [
    "PipelineSimulator",
    "BatchTimes",
    "pipeline_makespan",
    "pipeline_makespan_reference",
    "SweepRunner",
    "SweepPoint",
    "SweepRecord",
    "SweepResult",
    "HP_SEARCH_KINDS",
    "DISTRIBUTED_KINDS",
    "FAILURE_KINDS",
    "FailureScenario",
    "FailureScenarioResult",
    "FailureEpoch",
    "SingleServerTraining",
    "SingleServerResult",
    "build_loader",
    "LOADER_KINDS",
    "DistributedTraining",
    "DistributedResult",
    "DistributedEpoch",
    "HPSearchScenario",
    "HPSearchResult",
    "AccuracyCurve",
    "resnet50_imagenet_curve",
    "time_to_accuracy",
    "TimeToAccuracyResult",
]
