"""Unit tests for the data loaders (base, PyTorch DL, DALI, CoorDL variants)."""

import numpy as np
import pytest

from repro.cache.minio import MinIOCache
from repro.cache.page_cache import PageCache
from repro.coordl.minio_loader import CoorDLLoader, best_coordl_loader
from repro.coordl.partitioned_loader import PartitionedCoorDLLoader
from repro.exceptions import ConfigurationError
from repro.pipeline.dali import DALILoader, best_dali_loader
from repro.pipeline.pytorch_native import PyTorchNativeLoader


def _batch_size(server):
    return 64


class TestPyTorchNativeLoader:
    def test_build_uses_page_cache_and_pillow_prep(self, tiny_dataset, ssd_server):
        loader = PyTorchNativeLoader.build(tiny_dataset, ssd_server, _batch_size(ssd_server))
        assert isinstance(loader.cache, PageCache)
        assert not loader.uses_gpu_prep
        dali = DALILoader.build(tiny_dataset, ssd_server, _batch_size(ssd_server))
        assert loader.prep_rate() < dali.prep_rate()

    def test_fetch_batch_accounts_io(self, tiny_dataset, ssd_server):
        loader = PyTorchNativeLoader.build(tiny_dataset, ssd_server, 32)
        batch = loader.batches(0)[0]
        result = loader.fetch_batch(batch)
        assert result.misses == len(batch)           # cold cache
        assert result.disk_bytes == pytest.approx(tiny_dataset.items_size(batch))
        assert loader.io.disk_requests == len(batch)
        # Second fetch of the same batch now hits the cache.
        again = loader.fetch_batch(batch)
        assert again.hits == len(batch)


class TestDALILoader:
    def test_mode_validation(self, tiny_dataset, ssd_server):
        with pytest.raises(ConfigurationError):
            DALILoader.build(tiny_dataset, ssd_server, 32, mode="zigzag")

    def test_seq_mode_scans_files_in_storage_order(self, tiny_dataset, hdd_server):
        seq = DALILoader.build(tiny_dataset, hdd_server, 32, mode="seq")
        shuffle = DALILoader.build(tiny_dataset, hdd_server, 32, mode="shuffle")
        # The storage-visible order of DALI-seq is (windowed) file order: the
        # first batch only draws from the head of the file list.
        first_batch = seq.batches(0)[0]
        assert first_batch.max() < 32 + 4 * 32
        # Per-file reads are still charged at random-read rates, so fetch
        # costs are comparable to DALI-shuffle (Sec. 5.1's observation that
        # seq is not faster once the dataset exceeds the cache).
        batch = np.arange(32)
        seq_t = seq.fetch_batch(batch).duration_s
        shuffle_t = shuffle.fetch_batch(batch).duration_s
        assert seq_t == pytest.approx(shuffle_t, rel=0.01)

    def test_epoch_order_covers_dataset_once(self, tiny_dataset, ssd_server):
        for mode in ("seq", "shuffle"):
            loader = DALILoader.build(tiny_dataset, ssd_server, 32, mode=mode)
            items = np.concatenate(loader.batches(0))
            assert sorted(items.tolist()) == list(range(len(tiny_dataset)))

    def test_gpu_prep_raises_prep_rate(self, tiny_dataset, ssd_server):
        cpu = DALILoader.build(tiny_dataset, ssd_server, 32, gpu_prep=False, cores=3)
        gpu = DALILoader.build(tiny_dataset, ssd_server, 32, gpu_prep=True, cores=3)
        assert gpu.prep_rate() > cpu.prep_rate()
        assert gpu.uses_gpu_prep

    def test_best_dali_loader_respects_interference(self, tiny_dataset, ssd_server):
        light = best_dali_loader(tiny_dataset, ssd_server, 32,
                                 model_gpu_prep_interference=0.0, cores=3)
        heavy = best_dali_loader(tiny_dataset, ssd_server, 32,
                                 model_gpu_prep_interference=0.95, cores=3)
        assert light.uses_gpu_prep
        assert not heavy.uses_gpu_prep


class TestCoorDLLoader:
    def test_uses_minio_cache(self, tiny_dataset, ssd_server):
        loader = CoorDLLoader.build(tiny_dataset, ssd_server, 32)
        assert isinstance(loader.cache, MinIOCache)

    def test_no_evictions_across_epochs(self, tiny_dataset, ssd_server):
        server = ssd_server.with_cache_bytes(tiny_dataset.total_bytes * 0.5)
        loader = CoorDLLoader.build(tiny_dataset, server, 32)
        for epoch in range(2):
            for batch in loader.batches(epoch):
                loader.fetch_batch(batch)
        assert loader.cache.stats.evictions == 0

    def test_best_coordl_loader_picks_faster_prep(self, tiny_dataset, ssd_server):
        loader = best_coordl_loader(tiny_dataset, ssd_server, 32,
                                    model_gpu_prep_interference=0.0)
        assert loader.uses_gpu_prep

    def test_cached_fetch_time_much_smaller_than_storage_fetch(self, tiny_dataset,
                                                               hdd_server):
        loader = CoorDLLoader.build(tiny_dataset, hdd_server, 32)
        batch = loader.batches(0)[0]
        cold = loader.fetch_batch(batch).duration_s
        assert loader.cached_fetch_time(batch) < cold / 100


class TestPartitionedCoorDLLoader:
    def test_group_builds_one_loader_per_server(self, small_dataset, hdd_server):
        servers = [hdd_server.with_cache_bytes(small_dataset.total_bytes * 0.6)] * 2
        loaders = PartitionedCoorDLLoader.build_group(small_dataset, servers, 64)
        assert len(loaders) == 2
        assert loaders[0].group is loaders[1].group

    def test_remote_hits_replace_disk_reads_when_dataset_fits(self, small_dataset,
                                                              hdd_server):
        servers = [hdd_server.with_cache_bytes(small_dataset.total_bytes * 0.6)] * 2
        loaders = PartitionedCoorDLLoader.build_group(small_dataset, servers, 64)
        loader = loaders[0]
        total_disk = 0.0
        total_remote = 0.0
        for batch in loader.batches(1):
            result = loader.fetch_batch(batch)
            total_disk += result.disk_bytes
            total_remote += result.remote_bytes
        assert total_disk == 0.0
        assert total_remote > 0.0

    def test_falls_back_to_storage_when_aggregate_cache_too_small(self, small_dataset,
                                                                  hdd_server):
        servers = [hdd_server.with_cache_bytes(small_dataset.total_bytes * 0.2)] * 2
        loaders = PartitionedCoorDLLoader.build_group(small_dataset, servers, 64)
        loader = loaders[0]
        disk = sum(loader.fetch_batch(b).disk_bytes for b in loader.batches(1))
        assert disk > 0.0
