"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables or figures via the
experiment registry, prints the resulting table (so ``pytest benchmarks/
--benchmark-only -s`` reproduces the paper's numbers), asserts the
qualitative shape, and reports its wall-clock cost through pytest-benchmark.

The experiments are full simulations, so each one is run exactly once
(``pedantic(rounds=1, iterations=1)``) rather than letting pytest-benchmark
calibrate with many repetitions.

The sweep-speed gates additionally record machine-readable results through
the :func:`bench_report` fixture; at session end they are written to
``BENCH_sweep.json`` in the repository root (per-grid wall-clock, speedup
and point counts) so the performance trajectory is tracked across PRs the
same way locally and in CI — CI uploads the file as a build artifact, and
``make bench`` / ``make bench-json`` leave it next to the Makefile.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
from typing import Any, Callable, Dict, List, Optional

import pytest

from repro.experiments.base import ExperimentResult

#: Where the machine-readable sweep benchmark results land: the repository
#: root, both locally and in CI (gitignored; uploaded as a CI artifact).
BENCH_REPORT_PATH = (pathlib.Path(__file__).resolve().parent.parent
                     / "BENCH_sweep.json")


class BenchReport:
    """Collects per-grid wall-clock results from the sweep benchmarks."""

    def __init__(self) -> None:
        self.grids: List[Dict[str, Any]] = []

    def record(self, name: str, *, points: int,
               reference_s: Optional[float] = None,
               fast_s: Optional[float] = None,
               **extra: Any) -> None:
        """Record one grid's timings; ``speedup`` derives when both sides ran."""
        entry: Dict[str, Any] = {"name": name, "points": points}
        if reference_s is not None:
            entry["reference_s"] = round(reference_s, 6)
        if fast_s is not None:
            entry["fast_s"] = round(fast_s, 6)
        if reference_s is not None and fast_s is not None and fast_s > 0:
            entry["speedup"] = round(reference_s / fast_s, 3)
        entry.update(extra)
        self.grids.append(entry)

    def write(self, path: pathlib.Path = BENCH_REPORT_PATH) -> pathlib.Path:
        # Merge with whatever an earlier pytest session in the same build
        # wrote (`make bench-smoke bench-parallel` is two sessions): grids
        # re-measured in this session replace their previous entry, the
        # rest are kept, so the uploaded artifact always carries every gate.
        grids = list(self.grids)
        measured = {entry["name"] for entry in grids}
        try:
            previous = json.loads(path.read_text(encoding="utf-8"))
            grids.extend(entry for entry in previous.get("grids", ())
                         if entry.get("name") not in measured)
        except (OSError, ValueError):
            pass
        payload = {
            "schema": "repro-bench-sweep/1",
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "grids": sorted(grids, key=lambda entry: entry.get("name", "")),
        }
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n",
                        encoding="utf-8")
        return path


_REPORT = BenchReport()


@pytest.fixture(scope="session")
def bench_report() -> BenchReport:
    """Session-wide collector for the sweep benchmarks' timing results."""
    return _REPORT


def pytest_sessionfinish(session, exitstatus):
    """Persist whatever the sweep benchmarks recorded, even on failure."""
    if _REPORT.grids:
        _REPORT.write()


def run_experiment_once(benchmark, run: Callable[..., ExperimentResult],
                        **kwargs: Any) -> ExperimentResult:
    """Run one experiment exactly once under pytest-benchmark and print it."""
    result = benchmark.pedantic(lambda: run(**kwargs), rounds=1, iterations=1)
    print()
    print(result.format_table())
    return result


@pytest.fixture
def run_once(benchmark):
    """Fixture-form of :func:`run_experiment_once`."""
    def _runner(run: Callable[..., ExperimentResult], **kwargs: Any) -> ExperimentResult:
        return run_experiment_once(benchmark, run, **kwargs)
    return _runner
