"""Equivalence and regression tests for the distributed / HP-search fast paths.

The vectorised epoch paths added for Figs. 9(b)/9(d)/9(e) are numerical fast
paths, not approximations: every test here pins them to their per-item
reference implementations, including the edge cases the fast paths exposed
(partial final batches, mid-run fallbacks, seed plumbing in sweeps).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.configs import config_hdd_1080ti, config_ssd_v100
from repro.compute.model_zoo import ALEXNET, RESNET18
from repro.coordl.partitioned_loader import PartitionedCoorDLLoader
from repro.datasets.catalog import get_dataset_spec
from repro.datasets.dataset import SyntheticDataset
from repro.datasets.sampler import Sampler
from repro.sim.distributed import DistributedTraining
from repro.sim.hp_search import HPSearchScenario
from repro.sim.sweep import SweepRunner

SCALE = 1 / 500.0


@pytest.fixture
def dataset():
    return SyntheticDataset(get_dataset_spec("openimages"), seed=0, scale=SCALE)


def _servers(dataset, fraction, n=2, factory=config_hdd_1080ti):
    return [factory(cache_bytes=dataset.total_bytes * fraction) for _ in range(n)]


def _assert_epochs_equal(slow, fast):
    """Epoch-by-epoch, server-by-server equality of two distributed results."""
    for slow_epoch, fast_epoch in zip(slow.epochs, fast.epochs):
        assert fast_epoch.epoch_time_s == pytest.approx(
            slow_epoch.epoch_time_s, abs=1e-9)
        for ss, sf in zip(slow_epoch.per_server, fast_epoch.per_server):
            assert sf.samples == ss.samples
            assert sf.cache_hits == ss.cache_hits
            assert sf.cache_misses == ss.cache_misses
            assert sf.io.disk_requests == ss.io.disk_requests
            assert sf.io.cache_requests == ss.io.cache_requests
            assert sf.io.remote_requests == ss.io.remote_requests
            assert sf.io.disk_bytes == pytest.approx(ss.io.disk_bytes, rel=1e-12)
            assert sf.io.remote_bytes == pytest.approx(ss.io.remote_bytes, rel=1e-12)
            slow_tl, fast_tl = ss.io.timeline, sf.io.timeline
            assert len(slow_tl) == len(fast_tl)
            if slow_tl:
                assert np.allclose([t for t, _ in slow_tl], [t for t, _ in fast_tl],
                                   atol=1e-9)
                assert np.allclose([b for _, b in slow_tl], [b for _, b in fast_tl],
                                   rtol=1e-12)


class TestDistributedFastPathEquivalence:
    """The bulk partitioned/distributed epochs must match the per-item walk."""

    @pytest.mark.parametrize("fraction", [0.2, 0.65, 1.1])
    def test_coordl_fast_and_slow_paths_agree(self, dataset, fraction):
        servers = _servers(dataset, fraction)
        results = {}
        for fast in (False, True):
            training = DistributedTraining(RESNET18, dataset, servers,
                                           num_epochs=3, fast_path=fast)
            results[fast] = training.run_coordl(seed=0)
        _assert_epochs_equal(results[False], results[True])

    def test_baseline_fast_and_slow_paths_agree(self, dataset):
        servers = _servers(dataset, 0.5)
        results = {}
        for fast in (False, True):
            training = DistributedTraining(RESNET18, dataset, servers,
                                           num_epochs=3, fast_path=fast)
            results[fast] = training.run_baseline(seed=0)
        _assert_epochs_equal(results[False], results[True])

    def test_agreement_on_partial_final_batches(self, dataset):
        """Shard length % batch size != 0: the short batch is simulated once.

        Regression for the partial-batch satellite: the shard of each rank
        (dataset size not divisible by the replica count or batch size) ends
        in a short batch, and fast and reference paths must agree on it.
        """
        loaders = {}
        for fast in (False, True):
            group = PartitionedCoorDLLoader.build_group(
                dataset, _servers(dataset, 0.6), batch_size=7, seed=0)
            loaders[fast] = group
        assert len(dataset) % 7 != 0
        for rank in range(2):
            slow, fast = loaders[False][rank], loaders[True][rank]
            sampler = slow.batch_sampler
            assert len(sampler.epoch(0)) == sampler.batches_per_epoch()
            arrays = fast.batch_time_arrays(0)
            assert arrays is not None
            fetch_s, _, _, batch_sizes = arrays
            clock = 0.0
            durations = []
            for batch in slow.batches(0):
                result = slow.fetch_batch(batch, at_time=clock)
                durations.append(result.duration_s)
                clock += result.duration_s
            assert len(durations) == len(fetch_s)
            assert int(batch_sizes[-1]) == len(slow.batches(0)[-1])
            assert np.allclose(fetch_s, durations, atol=1e-9)


class TestFallbackBoundary:
    """Mid-run fallbacks must apply I/O counters and timelines exactly once."""

    def test_custom_fetch_policy_declines_without_side_effects(self, dataset):
        class AuditedLoader(PartitionedCoorDLLoader):
            def fetch_batch(self, batch, at_time=0.0):  # custom fetch policy
                return super().fetch_batch(batch, at_time=at_time)

        group = AuditedLoader.build_group(dataset, _servers(dataset, 0.6),
                                          batch_size=16, seed=0)
        loader = group[0]
        assert loader.batch_time_arrays(0) is None
        # Declining must leave no trace: no cache stats, no I/O accounting.
        assert loader.cache.stats.accesses == 0
        assert loader.io.disk_requests == 0
        assert loader.store.stats.disk_requests == 0

    def test_repeated_item_epoch_declines_without_side_effects(self, dataset):
        class RepeatingSampler(Sampler):
            def epoch(self, epoch_index):
                order = np.arange(self.num_items, dtype=np.int64)
                order[-1] = order[0]  # one repeat: not a single-pass epoch
                return order

        group = PartitionedCoorDLLoader.build_group(
            dataset, _servers(dataset, 0.6), batch_size=16, seed=0)
        loader = group[0]
        loader._batch_sampler._sampler = RepeatingSampler(len(dataset))
        assert loader.batch_time_arrays(0) is None
        assert loader.cache.stats.accesses == 0
        assert loader.io.disk_requests == 0

    def test_fallback_run_counts_io_exactly_once(self, dataset):
        """A run forced down the per-item path books each read exactly once."""
        class AuditedLoader(PartitionedCoorDLLoader):
            def fetch_batch(self, batch, at_time=0.0):
                return super().fetch_batch(batch, at_time=at_time)

        from repro.sim.engine import PipelineSimulator
        servers = _servers(dataset, 0.6)
        reference = PartitionedCoorDLLoader.build_group(dataset, servers,
                                                        batch_size=16, seed=0)
        audited = AuditedLoader.build_group(dataset, servers, batch_size=16, seed=0)
        for rank in (0, 1):
            for loaders in (reference, audited):
                sim = PipelineSimulator(RESNET18, servers[rank].gpu, fast_path=True)
                sim.run_epoch(loaders[rank], 0)
            ref, aud = reference[rank], audited[rank]
            assert aud.io.disk_requests == ref.io.disk_requests
            assert aud.io.cache_requests == ref.io.cache_requests
            assert aud.io.remote_requests == ref.io.remote_requests
            # Every shard item was read exactly once — no double counting.
            assert aud.io.total_requests == len(aud.batch_sampler.sampler.epoch(0))
            assert aud.store.stats.disk_requests == ref.store.stats.disk_requests


class TestHPSearchFastPathEquivalence:
    """Analytic interleaving vs the per-item shared-page-cache reference."""

    @pytest.mark.parametrize("fraction", [1.5, 0.6, 0.15])
    def test_baseline_and_coordl_agree(self, dataset, fraction):
        server = config_ssd_v100(cache_bytes=dataset.total_bytes * fraction)
        results = {}
        for fast in (False, True):
            scenario = HPSearchScenario(ALEXNET, dataset, server, num_jobs=4,
                                        gpus_per_job=1, seed=0, fast_path=fast)
            results[fast] = (scenario.run_baseline(), scenario.run_coordl())
        for slow, fast in zip(results[False], results[True]):
            assert fast.epoch_time_s == pytest.approx(slow.epoch_time_s, rel=1e-9)
            assert fast.disk_bytes_per_epoch == pytest.approx(
                slow.disk_bytes_per_epoch, rel=1e-9)
            assert fast.cache_miss_ratio == pytest.approx(
                slow.cache_miss_ratio, abs=1e-12)
            assert fast.per_job_throughput == pytest.approx(
                slow.per_job_throughput, rel=1e-9)
            assert (fast.prep_bound, fast.fetch_bound, fast.gpu_bound) == (
                slow.prep_bound, slow.fetch_bound, slow.gpu_bound)

    def test_interleaved_order_matches_reference_nesting(self, dataset):
        """The bulk-built interleaving equals the nested lockstep loops."""
        server = config_ssd_v100()
        scenario = HPSearchScenario(ALEXNET, dataset, server, num_jobs=3,
                                    gpus_per_job=1, seed=3)
        from repro.datasets.sampler import RandomSampler
        num_items = len(dataset)
        orders = [RandomSampler(num_items, seed=(3, job)).epoch(1)
                  for job in range(3)]
        batch = scenario._batch_size()
        expected = []
        for start in range(0, num_items, batch):
            for job in range(3):
                expected.extend(orders[job][start:start + batch].tolist())
        assert scenario._interleaved_order(1).tolist() == expected


class TestSweepSeedPlumbing:
    """Distributed sweep points must derive their sampling from the runner seed."""

    def _sweep(self, seed):
        runner = SweepRunner(config_hdd_1080ti, scale=SCALE, seed=seed)
        return runner.run(SweepRunner.grid(
            models=[RESNET18], loaders=["dist-coordl"], cache_fractions=(0.6,),
            dataset="openimages", num_servers=2, num_epochs=3))

    def test_repeated_sweeps_are_bitwise_reproducible(self):
        first, second = self._sweep(7), self._sweep(7)
        for a, b in zip(first.records, second.records):
            for ea, eb in zip(a.dist.epochs, b.dist.epochs):
                assert ea.epoch_time_s == eb.epoch_time_s
                for sa, sb in zip(ea.per_server, eb.per_server):
                    assert sa.io.disk_bytes == sb.io.disk_bytes
                    assert sa.io.remote_bytes == sb.io.remote_bytes
                    assert sa.cache_hits == sb.cache_hits

    def test_runner_seed_reaches_the_distributed_samplers(self):
        """Different runner seeds draw different shards (not the rank default).

        If the sweep dropped its seed on the floor (every run falling back to
        the scenario's seed=0 default), both sweeps below would be identical.
        """
        base, other = self._sweep(0), self._sweep(11)
        base_hits = [s.cache_hits
                     for e in base.records[0].dist.epochs for s in e.per_server]
        other_hits = [s.cache_hits
                      for e in other.records[0].dist.epochs for s in e.per_server]
        assert base_hits != other_hits

    def test_ranks_never_draw_identical_permutations(self, dataset):
        """Per-rank shards of a swept point partition each epoch disjointly."""
        group = PartitionedCoorDLLoader.build_group(
            dataset, _servers(dataset, 0.6), batch_size=16, seed=5)
        for epoch in range(3):
            orders = [np.concatenate(loader.batches(epoch)) for loader in group]
            assert not np.array_equal(orders[0], orders[1])
            combined = np.sort(np.concatenate(orders))
            assert np.array_equal(combined, np.arange(len(dataset)))
