"""Hit/miss/eviction counters shared by every cache implementation."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Counters accumulated by a cache across lookups and admissions."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected: int = 0
    hit_bytes: float = 0.0
    miss_bytes: float = 0.0

    @property
    def accesses(self) -> int:
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups that hit.  Zero when no lookups happened."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_ratio(self) -> float:
        """Fraction of lookups that missed."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def record_hit(self, nbytes: float = 0.0) -> None:
        """Account a hit (optionally with the item's size)."""
        self.hits += 1
        self.hit_bytes += nbytes

    def record_miss(self, nbytes: float = 0.0) -> None:
        """Account a miss (optionally with the item's size)."""
        self.misses += 1
        self.miss_bytes += nbytes
