"""Storage substrate: device models, file store, and I/O accounting."""

from repro.storage.device import StorageDevice, dram, hdd, sata_ssd
from repro.storage.filestore import FileStore
from repro.storage.iostats import IOStats

__all__ = ["StorageDevice", "FileStore", "IOStats", "sata_ssd", "hdd", "dram"]
