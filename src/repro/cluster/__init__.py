"""Cluster substrate: server SKUs and the network model."""

from repro.cluster.configs import (
    config_hdd_1080ti,
    config_high_cpu_v100,
    config_ssd_v100,
    get_server_config,
)
from repro.cluster.network import NetworkLink, forty_gbps_ethernet, ten_gbps_ethernet
from repro.cluster.server import ServerConfig

__all__ = [
    "ServerConfig",
    "NetworkLink",
    "forty_gbps_ethernet",
    "ten_gbps_ethernet",
    "config_ssd_v100",
    "config_hdd_1080ti",
    "config_high_cpu_v100",
    "get_server_config",
]
