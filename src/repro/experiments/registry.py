"""Registry mapping experiment ids to their ``run`` callables.

Used by the benchmark harness, the examples, and the command line to
enumerate every reproduced figure/table without importing each module by
hand::

    from repro.experiments import registry
    result = registry.run_experiment("fig2")
    print(result.format_table())
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List

from repro.exceptions import ConfigurationError
from repro.experiments import (
    appendix_analysis,
    appendix_coordl,
    failures,
    fig1_pipeline,
    fig2_fetch_stalls,
    fig3_cache_sweep,
    fig4_cpu_sweep,
    fig5_dali_prep,
    fig6_prep_stalls,
    fig8_minio_toy,
    fig9a_single_server,
    fig9b_distributed,
    fig9d_hp_search,
    fig9e_hp_multigpu,
    fig10_accuracy,
    fig11_io_pattern,
    fig16_whatif,
    tab3_tfrecord,
    tab5_predictor,
    tab6_cache_miss,
    tab7_hp_cached,
)
from repro.experiments.base import ExperimentResult

_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig1_pipeline.run,
    "fig2": fig2_fetch_stalls.run,
    "fig3": fig3_cache_sweep.run,
    "fig4": fig4_cpu_sweep.run,
    "fig5": fig5_dali_prep.run,
    "fig6": fig6_prep_stalls.run,
    "tab3": tab3_tfrecord.run,
    "fig8": fig8_minio_toy.run,
    "fig9a": fig9a_single_server.run,
    "fig9b": fig9b_distributed.run,
    "fig9d": fig9d_hp_search.run,
    "fig9e": fig9e_hp_multigpu.run,
    "fig10": fig10_accuracy.run,
    "fig11": fig11_io_pattern.run,
    "tab5": tab5_predictor.run,
    "fig16": fig16_whatif.run,
    "tab6": tab6_cache_miss.run,
    "tab7": tab7_hp_cached.run,
    "fig12": appendix_analysis.run_fig12,
    "fig13": appendix_analysis.run_fig13,
    "fig14": appendix_analysis.run_fig14,
    "fig17": appendix_coordl.run_fig17,
    "fig18": appendix_coordl.run_fig18,
    "fig19_20": appendix_coordl.run_fig19_20,
    "fig21": appendix_coordl.run_fig21,
    "fig22": appendix_coordl.run_fig22,
    "fig23": appendix_coordl.run_fig23,
    "fig_crash": failures.run_crash,
    "fig_elastic": failures.run_elastic,
    "fig_straggler": failures.run_straggler,
    "fig_multitenant": failures.run_multitenant,
}


def experiment_ids() -> List[str]:
    """All registered experiment ids, in registration order."""
    return list(_REGISTRY)


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up an experiment's ``run`` callable by id."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(experiment_ids())
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {known}") from None


def accepts_kwarg(experiment_id: str, name: str) -> bool:
    """Whether an experiment's ``run`` callable takes the given keyword.

    Used by the CLI and the report generator to thread optional knobs
    (``workers=`` for the sweep-backed experiments) without forcing every
    experiment to grow them: toy experiments like ``fig8`` take neither
    ``scale`` nor ``workers``.
    """
    parameters = inspect.signature(get_experiment(experiment_id)).parameters
    return name in parameters


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id, forwarding keyword overrides."""
    return get_experiment(experiment_id)(**kwargs)
