"""Benchmark: vectorised Fig. 9(b) distributed sweep vs the per-item reference.

Runs the identical Fig. 9(b) grid (the HDD models, dist-baseline +
dist-coordl, 65 % per-server caches, two epochs each) twice through
:class:`~repro.sim.sweep.SweepRunner` — once with the vectorised partitioned
epoch fast path, once forced onto the per-item ``fetch_batch`` loop — and
asserts that

* every simulated job epoch time agrees within 1e-9 (the fast path is a
  numerical fast path, not an approximation), and
* the vectorised sweep is at least 3x faster end to end.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Tuple

from repro.cluster.configs import config_hdd_1080ti
from repro.experiments.base import SWEEP_SCALE
from repro.experiments.fig9b_distributed import DEFAULT_HDD_MODELS
from repro.sim.sweep import SweepRunner

#: Wall-clock advantage the vectorised sweep must demonstrate.  Overridable
#: so shared CI runners (noisy neighbours, throttled cores) can keep the
#: exactness gate hard while softening the timing gate.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))

#: Best-of repetitions per path (damps scheduler noise in the ratio).
REPEATS = 2


def _fig9b_sweep(fast_path: bool) -> Tuple[float, Dict[tuple, List[float]]]:
    """Run the Fig. 9(b) grid; return (elapsed seconds, per-point epoch times)."""
    runner = SweepRunner(config_hdd_1080ti, scale=SWEEP_SCALE, seed=0,
                         fast_path=fast_path)
    points = SweepRunner.grid(models=list(DEFAULT_HDD_MODELS),
                              loaders=["dist-baseline", "dist-coordl"],
                              cache_fractions=(0.65,), num_servers=2,
                              num_epochs=2)
    start = time.perf_counter()
    # workers=0 pins the serial executor: this benchmark isolates the
    # vectorised-vs-reference ratio, even when REPRO_SWEEP_WORKERS is set.
    sweep = runner.run(points, workers=0)
    elapsed = time.perf_counter() - start
    epoch_times = {
        (record.point.model.name, record.point.loader):
            [epoch.epoch_time_s for epoch in record.dist.epochs]
        for record in sweep
    }
    return elapsed, epoch_times


def test_vectorized_fig9b_sweep_is_3x_faster_and_exact(bench_report):
    slow_elapsed = float("inf")
    for _ in range(REPEATS):
        elapsed, slow_times = _fig9b_sweep(fast_path=False)
        slow_elapsed = min(slow_elapsed, elapsed)

    fast_elapsed = float("inf")
    for _ in range(REPEATS):
        elapsed, fast_times = _fig9b_sweep(fast_path=True)
        fast_elapsed = min(fast_elapsed, elapsed)

    assert set(fast_times) == set(slow_times)
    worst = max(abs(a - b)
                for key in slow_times
                for a, b in zip(slow_times[key], fast_times[key]))
    assert worst <= 1e-9, f"fast path diverged from reference by {worst}"

    speedup = slow_elapsed / fast_elapsed
    print(f"\nFig. 9(b) sweep: per-item {slow_elapsed * 1e3:.0f} ms, "
          f"vectorized {fast_elapsed * 1e3:.0f} ms -> {speedup:.2f}x "
          f"(max epoch-time deviation {worst:.2e})")
    bench_report.record("fig9b_distributed", points=len(fast_times),
                        reference_s=slow_elapsed, fast_s=fast_elapsed)
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized sweep only {speedup:.2f}x faster (need {MIN_SPEEDUP}x)")
