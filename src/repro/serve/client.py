"""Thin stdlib HTTP client for the what-if sweep daemon.

:class:`ServeClient` wraps :mod:`urllib.request` around the endpoints of
:mod:`repro.serve.server` and decodes responses back into library types
where one exists — :meth:`ServeClient.whatif` rehydrates served records
into byte-identical :class:`~repro.sim.sweep.SweepRecord` objects via
:func:`repro.serve.protocol.record_from_wire`.  The golden round-trip
gate and ``repro query`` both drive the daemon through this client.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.serve.protocol import (
    point_to_wire,
    record_from_wire,
    runner_to_wire,
)
from repro.sim.sweep import SweepPoint, SweepRecord, SweepRunner


@dataclass
class WhatIfResult:
    """One point's answer from :meth:`ServeClient.whatif`.

    ``record`` is the rehydrated, byte-identical
    :class:`~repro.sim.sweep.SweepRecord` when ``status == "ok"``, else
    ``None``; ``error`` carries the daemon's failure text for ``status
    == "error"``; ``status == "timed_out"`` marks a point the request's
    deadline cut off (ask again — the simulation finished into the
    store).
    """

    status: str
    record: Optional[SweepRecord]
    error: Optional[str]


class ServeError(ConfigurationError):
    """An HTTP-level error response from the serve daemon."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"serve daemon returned {status}: {message}")
        self.status = status


class ServeClient:
    """Talk to one serve daemon at ``url`` (e.g. ``http://127.0.0.1:8421``)."""

    def __init__(self, url: str, timeout_s: float = 600.0) -> None:
        self._url = url.rstrip("/")
        self._timeout_s = timeout_s

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self._url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self._timeout_s) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get(
                    "error", exc.reason)
            except Exception:
                message = str(exc.reason)
            raise ServeError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ConfigurationError(
                f"cannot reach serve daemon at {self._url}: "
                f"{exc.reason}") from None
        return payload

    def health(self) -> Dict[str, Any]:
        """``GET /v1/health`` — liveness + configuration echo."""
        return self._request("GET", "/v1/health")

    def stats(self) -> Dict[str, Any]:
        """``GET /v1/stats`` — store / batcher / latency statistics."""
        return self._request("GET", "/v1/stats")

    def whatif(self, runner: SweepRunner, points: Sequence[SweepPoint],
               deadline_s: Optional[float] = None) -> List[WhatIfResult]:
        """Query the daemon for ``points`` under ``runner``'s configuration.

        Returns one :class:`WhatIfResult` per point, in input order.
        ``deadline_s`` bounds this request only (the daemon's default
        applies when ``None``); late points come back ``timed_out``.
        """
        body: Dict[str, Any] = {
            "runner": runner_to_wire(runner),
            "points": [point_to_wire(point) for point in points],
        }
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        payload = self._request("POST", "/v1/whatif", body)
        results = []
        for item in payload.get("results", []):
            record = item.get("record")
            results.append(WhatIfResult(
                status=item.get("status", "error"),
                record=None if record is None else record_from_wire(record),
                error=item.get("error")))
        return results

    def experiment(self, experiment_id: str,
                   scale: Optional[float] = None) -> Dict[str, Any]:
        """``POST /v1/experiment`` — run a registered experiment by id."""
        body: Dict[str, Any] = {"id": experiment_id}
        if scale is not None:
            body["scale"] = scale
        return self._request("POST", "/v1/experiment", body)

    def report(self, scale: Optional[float] = None,
               only: Optional[Sequence[str]] = None) -> str:
        """``POST /v1/report`` — EXPERIMENTS.md markdown for the grid."""
        body: Dict[str, Any] = {}
        if scale is not None:
            body["scale"] = scale
        if only is not None:
            body["only"] = list(only)
        return self._request("POST", "/v1/report", body)["markdown"]
