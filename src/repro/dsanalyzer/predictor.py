"""DS-Analyzer's predictive model (Sec. 3.4, Appendix C).

Given the component rates measured by the profiler — GPU ingestion rate G,
prep rate P, cache fetch rate C and storage fetch rate S — the predictor
answers what-if questions without re-running experiments:

* the effective fetch rate F for a cache holding ``x`` of the dataset
  (Appendix C.2, Eqs. 3–4)::

      T_f = D*x / C + D*(1-x) / S          F = D / T_f

* the bottleneck classification ``min(F, P, G)`` (IO-, CPU- or GPU-bound);
* the predicted training speed ``min(F, P, G)`` in samples/s;
* stall fractions implied by the rates.

The predictions assume an efficient cache (MinIO: a cache holding x of the
dataset gives at least x hits per epoch); for the page-cache baselines the
empirical thrashing penalty can be layered on via ``thrashing_factor``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dsanalyzer.profiler import PipelineProfile
from repro.exceptions import ConfigurationError
from repro.units import safe_div


class Bottleneck(enum.Enum):
    """Which pipeline component limits training throughput."""

    GPU = "gpu-bound"
    PREP = "cpu-bound"
    FETCH = "io-bound"


@dataclass(frozen=True)
class Prediction:
    """Predicted steady-state behaviour for one configuration."""

    cache_fraction: float
    fetch_rate: float
    prep_rate: float
    gpu_rate: float
    training_speed: float
    bottleneck: Bottleneck

    @property
    def fetch_stall_fraction(self) -> float:
        """Fraction of epoch time spent stalled on I/O."""
        limit = min(self.prep_rate, self.gpu_rate)
        if self.fetch_rate >= limit:
            return 0.0
        return 1.0 - self.fetch_rate / limit

    @property
    def prep_stall_fraction(self) -> float:
        """Fraction of epoch time spent stalled on prep (when not IO-bound)."""
        if self.prep_rate >= self.gpu_rate:
            return 0.0
        if self.fetch_rate < self.prep_rate:
            return 0.0  # IO hides the prep stall
        return 1.0 - self.prep_rate / self.gpu_rate


class DataStallPredictor:
    """What-if predictions from a measured :class:`PipelineProfile`."""

    def __init__(self, profile: PipelineProfile, thrashing_factor: float = 0.0) -> None:
        if not 0.0 <= thrashing_factor < 1.0:
            raise ConfigurationError("thrashing factor must be in [0, 1)")
        self._profile = profile
        self._thrashing_factor = thrashing_factor

    @property
    def profile(self) -> PipelineProfile:
        """The measured component rates."""
        return self._profile

    def effective_fetch_rate(self, cache_fraction: float) -> float:
        """Effective fetch rate F for a given cached fraction (Eq. 4).

        With an efficient (MinIO-like) cache, a fraction ``x`` of each
        epoch's requests is served from DRAM at rate C and the rest from
        storage at rate S.  A non-zero ``thrashing_factor`` models a page
        cache that loses that share of its hits to thrashing.
        """
        if not 0.0 <= cache_fraction <= 1.0:
            raise ConfigurationError("cache fraction must be within [0, 1]")
        x = cache_fraction * (1.0 - self._thrashing_factor)
        cache_rate = self._profile.cache_rate
        storage_rate = self._profile.storage_rate
        # Per-sample fetch time is the weighted mean of cache and storage times.
        time_per_sample = safe_div(x, cache_rate) + safe_div(1.0 - x, storage_rate)
        if time_per_sample == 0.0:
            return float("inf")
        return 1.0 / time_per_sample

    def predict(self, cache_fraction: float) -> Prediction:
        """Predict training speed and bottleneck for a cache size."""
        fetch = self.effective_fetch_rate(cache_fraction)
        prep = self._profile.prep_rate
        gpu = self._profile.gpu_rate
        speed = min(fetch, prep, gpu)
        if speed == gpu:
            bottleneck = Bottleneck.GPU
        elif speed == prep:
            bottleneck = Bottleneck.PREP
        else:
            bottleneck = Bottleneck.FETCH
        return Prediction(
            cache_fraction=cache_fraction,
            fetch_rate=fetch,
            prep_rate=prep,
            gpu_rate=gpu,
            training_speed=speed,
            bottleneck=bottleneck,
        )

    def predict_training_speed(self, cache_fraction: float) -> float:
        """Predicted samples/second for a cache size (Table 5)."""
        return self.predict(cache_fraction).training_speed

    def epoch_time(self, cache_fraction: float, num_samples: int) -> float:
        """Predicted epoch duration in seconds."""
        return safe_div(num_samples, self.predict_training_speed(cache_fraction))
