"""Integration tests: end-to-end scenarios crossing several subsystems."""

from __future__ import annotations

import pytest

from repro.cluster.configs import config_hdd_1080ti, config_ssd_v100
from repro.compute.model_zoo import ALEXNET, BERT_LARGE, RESNET18, RESNET50
from repro.coordl.loader import CoorDL
from repro.datasets.catalog import DatasetSpec
from repro.datasets.dataset import SyntheticDataset
from repro.dsanalyzer.predictor import Bottleneck, DataStallPredictor
from repro.dsanalyzer.profiler import DSAnalyzerProfiler
from repro.dsanalyzer.whatif import optimal_cache_fraction
from repro.sim.distributed import DistributedTraining
from repro.sim.engine import PipelineSimulator
from repro.sim.hp_search import HPSearchScenario
from repro.sim.single_server import SingleServerTraining


@pytest.fixture
def dataset():
    spec = DatasetSpec("integration", "image_classification", 3_000, 150_000.0,
                       item_size_cv=0.5)
    return SyntheticDataset(spec, seed=7)


class TestEndToEndSingleServer:
    def test_paper_finding_stack_for_one_model(self, dataset):
        """Walk one model through analysis -> prediction -> mitigation."""
        server = config_ssd_v100(cache_bytes=dataset.total_bytes * 0.35)

        # 1. DS-Analyzer finds the job is IO-bound at a 35% cache (the DALI
        # pipeline uses GPU-assisted prep for AlexNet, so prep is not the
        # limit; the SSD is).
        profile = DSAnalyzerProfiler(ALEXNET, dataset, server, gpu_prep=True).profile()
        predictor = DataStallPredictor(profile)
        assert predictor.predict(0.35).bottleneck is Bottleneck.FETCH

        # 2. The full simulation agrees: DALI has a large fetch stall.
        training = SingleServerTraining(ALEXNET, dataset, server, num_epochs=3)
        dali = training.run("dali-shuffle").run.steady_epoch()
        assert dali.fetch_stall_fraction > 0.2

        # 3. CoorDL's MinIO cache removes the thrashing share of that stall.
        coordl = training.run("coordl").run.steady_epoch()
        assert coordl.io.disk_bytes < dali.io.disk_bytes
        assert coordl.epoch_time_s <= dali.epoch_time_s

        # 4. The predictor's recommended cache size removes the fetch stall.
        recommendation = optimal_cache_fraction(predictor, dataset)
        big_server = server.with_cache_bytes(recommendation.optimal_cache_bytes * 1.05)
        resized = SingleServerTraining(ALEXNET, dataset, big_server, num_epochs=3)
        assert resized.run("coordl").run.steady_epoch().fetch_stall_fraction < 0.1

    def test_language_models_show_no_data_stalls(self, dataset):
        """Sec. 3.1: BERT-Large is GPU bound, so CoorDL has nothing to fix."""
        server = config_ssd_v100(cache_bytes=dataset.total_bytes * 0.35)
        training = SingleServerTraining(BERT_LARGE, dataset, server, num_epochs=2)
        epoch = training.run("dali-shuffle").run.steady_epoch()
        assert epoch.data_stall_fraction < 0.05


class TestEndToEndDistributed:
    def test_two_server_jobs_match_table4_findings(self, dataset):
        servers = [config_hdd_1080ti(cache_bytes=dataset.total_bytes * 0.55)
                   for _ in range(2)]
        training = DistributedTraining(RESNET18, dataset, servers, num_epochs=3)
        baseline = training.run_baseline()
        coordl = training.run_coordl()
        # Lack of cache coordination leaves the baseline reading from disk
        # every epoch even though the aggregate DRAM covers the dataset.
        assert baseline.steady_epochs()[-1].total_disk_bytes > 0
        assert coordl.steady_epochs()[-1].total_disk_bytes == 0
        assert coordl.steady_epoch_time_s < baseline.steady_epoch_time_s

    def test_coordl_facade_builds_consistent_group(self, dataset):
        servers = [config_hdd_1080ti(cache_bytes=dataset.total_bytes * 0.6)
                   for _ in range(2)]
        loaders = CoorDL.for_distributed(dataset, servers, batch_size_per_server=256)
        assert loaders[0].group.covers_dataset()
        sim = PipelineSimulator(RESNET18, servers[0].gpu)
        warm = sim.run_epoch(loaders[0], 0)
        steady = sim.run_epoch(loaders[0], 1)
        assert steady.io.disk_bytes <= warm.io.disk_bytes


class TestEndToEndHPSearch:
    def test_hp_search_workflow(self, dataset):
        server = config_ssd_v100(cache_bytes=dataset.total_bytes * 0.5)
        session = CoorDL.for_hp_search(dataset, server, num_jobs=4, batch_size=64)
        consumed = session.runner.run_epoch_in_lockstep()
        assert all(len(batches) == session.plan.total_batches()
                   for batches in consumed.values())
        scenario = HPSearchScenario(ALEXNET, dataset, server, num_jobs=4,
                                    gpus_per_job=2)
        assert scenario.speedup() >= 1.0

    def test_speedup_ordering_between_storage_types(self, dataset):
        """HP-search gains are larger on slow storage (paper Sec. 5.3)."""
        ssd = config_ssd_v100(cache_bytes=dataset.total_bytes * 0.35)
        hdd = config_hdd_1080ti(cache_bytes=dataset.total_bytes * 0.35)
        ssd_speedup = HPSearchScenario(RESNET50, dataset, ssd, num_jobs=8).speedup()
        hdd_speedup = HPSearchScenario(RESNET50, dataset, hdd, num_jobs=8).speedup()
        assert hdd_speedup >= ssd_speedup >= 1.0
