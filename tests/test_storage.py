"""Unit tests for storage devices, the file store, and I/O accounting."""

import pytest

from repro import units
from repro.exceptions import ConfigurationError
from repro.storage.device import StorageDevice, dram, hdd, sata_ssd
from repro.storage.filestore import FileStore
from repro.storage.iostats import IOStats


class TestStorageDevice:
    def test_read_time_scales_with_size(self):
        ssd = sata_ssd()
        assert ssd.read_time(units.MBps(530)) == pytest.approx(1.0, rel=0.01)
        assert ssd.read_time(0.0) == pytest.approx(ssd.request_overhead_s)

    def test_sequential_reads_use_sequential_bandwidth(self):
        disk = hdd()
        random_t = disk.read_time(10e6, sequential=False)
        seq_t = disk.read_time(10e6, sequential=True)
        assert seq_t < random_t

    def test_effective_rate_below_nominal_for_small_requests(self):
        disk = hdd()
        # An 8 ms seek dominates a 100 KB read: effective rate << 15 MB/s.
        assert disk.effective_rate(100_000) < disk.random_read_bw

    def test_paper_rates(self):
        assert sata_ssd().random_read_bw == units.MBps(530)
        assert hdd().random_read_bw == units.MBps(15)
        assert dram().random_read_bw > units.GBps(10)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            StorageDevice("bad", random_read_bw=0, sequential_read_bw=1)
        with pytest.raises(ConfigurationError):
            StorageDevice("bad", random_read_bw=1, sequential_read_bw=1,
                          request_overhead_s=-1)

    def test_negative_read_rejected(self):
        with pytest.raises(ConfigurationError):
            sata_ssd().read_time(-1)


class TestIOStats:
    def test_counters_accumulate_by_source(self):
        stats = IOStats()
        stats.record_disk(100.0)
        stats.record_disk(200.0, at_time=1.0)
        stats.record_cache(50.0)
        stats.record_remote(25.0)
        assert stats.disk_bytes == 300.0
        assert stats.disk_requests == 2
        assert stats.cache_requests == 1
        assert stats.remote_requests == 1
        assert stats.total_bytes == 375.0
        assert stats.total_requests == 4
        assert stats.timeline == [(1.0, 300.0)]

    def test_hit_ratio(self):
        stats = IOStats()
        assert stats.cache_hit_ratio == 0.0
        stats.record_cache(1.0)
        stats.record_disk(1.0)
        assert stats.cache_hit_ratio == pytest.approx(0.5)
        assert stats.miss_ratio == pytest.approx(0.5)

    def test_merge_and_reset(self):
        a, b = IOStats(), IOStats()
        a.record_disk(10.0, at_time=0.5)
        b.record_cache(5.0)
        merged = a.merged_with(b)
        assert merged.disk_bytes == 10.0
        assert merged.cache_bytes == 5.0
        a.reset()
        assert a.disk_bytes == 0.0
        assert a.timeline == []


class TestFileStore:
    def test_reads_account_bytes_and_return_durations(self, tiny_dataset):
        store = FileStore(tiny_dataset, sata_ssd())
        duration = store.read_item(0)
        assert duration > 0
        assert store.stats.disk_bytes == pytest.approx(tiny_dataset.item_size(0))
        assert store.stats.disk_requests == 1

    def test_sequential_hint_changes_duration(self, tiny_dataset):
        random_store = FileStore(tiny_dataset, hdd(), sequential_hint=False)
        seq_store = FileStore(tiny_dataset, hdd(), sequential_hint=True)
        assert seq_store.read_item(0) < random_store.read_item(0)

    def test_reset_stats(self, tiny_dataset):
        store = FileStore(tiny_dataset, sata_ssd())
        store.read_item(1)
        store.reset_stats()
        assert store.stats.disk_requests == 0
