"""Table 5 — DS-Analyzer's predicted versus empirical training speed.

DS-Analyzer predicts the training speed for a hypothetical cache size from
four measured rates (G, P, C, S) using Eq. 4; the paper validates the
prediction against real runs of AlexNet on Config-SSD-V100 at 25/35/50 %
cache and finds at most 4 % error.  Here the "empirical" values come from the
full pipelined simulation with a MinIO cache of the same size (a cache-size
sweep through :class:`~repro.sim.sweep.SweepRunner`), and the predictions
from the closed-form model — the two paths share no code, so the comparison
is meaningful.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import ALEXNET, ModelSpec
from repro.dsanalyzer.predictor import DataStallPredictor
from repro.dsanalyzer.profiler import DSAnalyzerProfiler
from repro.experiments.base import DEFAULT_SCALE, ExperimentResult
from repro.sim.sweep import SweepRunner
from repro.store import PersistentPool, StoreArg

DEFAULT_FRACTIONS = (0.25, 0.35, 0.5)


def run(scale: float = DEFAULT_SCALE, model: ModelSpec = ALEXNET,
        dataset_name: str = "imagenet-1k",
        fractions: Sequence[float] = DEFAULT_FRACTIONS,
        seed: int = 0, workers: Optional[int] = None,
        store: StoreArg = None,
        pool: Optional[PersistentPool] = None) -> ExperimentResult:
    """Reproduce the predicted-vs-empirical comparison of Table 5."""
    runner = SweepRunner(config_ssd_v100, scale=scale, seed=seed)
    dataset = runner.dataset(dataset_name)
    profiler = DSAnalyzerProfiler(model, dataset, config_ssd_v100(), gpu_prep=False)
    predictor = DataStallPredictor(profiler.profile())
    sweep = runner.run(SweepRunner.grid(
        models=[model], loaders=["coordl"], cache_fractions=fractions,
        dataset=dataset_name, gpu_prep=False), workers=workers, store=store, pool=pool)

    result = ExperimentResult(
        experiment_id="tab5",
        title="Table 5 — DS-Analyzer predicted vs empirical training speed "
              f"({model.name}, Config-SSD-V100)",
        columns=["cache_pct", "predicted_samples_per_s", "empirical_samples_per_s",
                 "error_pct"],
        notes=["paper: predictions within 4% of the empirical values"],
    )
    for fraction in fractions:
        predicted = predictor.predict_training_speed(fraction)
        empirical = sweep.one(cache_fraction=fraction).steady.throughput
        error = abs(predicted - empirical) / empirical * 100.0
        result.add_row(
            cache_pct=100.0 * fraction,
            predicted_samples_per_s=predicted,
            empirical_samples_per_s=empirical,
            error_pct=error,
        )
    return result
