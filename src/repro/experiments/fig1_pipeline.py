"""Figure 1 — component rates of the ResNet18 data pipeline.

The paper opens with the ResNet18 pipeline on an 8xV100 / 24-core server:
HDD 15 MB/s, SSD 530 MB/s, effective storage+cache rate 802 MB/s at a 35 %
cache, CPU prep 735 MB/s (1062 MB/s with GPU offload), versus a GPU demand of
2283 MB/s — so the pipeline cannot keep the GPUs busy.  This experiment
reproduces those component rates from the profiler and the predictor.
"""

from __future__ import annotations

from repro.cluster.configs import config_ssd_v100
from repro.compute.model_zoo import RESNET18
from repro.dsanalyzer.predictor import DataStallPredictor
from repro.dsanalyzer.profiler import DSAnalyzerProfiler
from repro.experiments.base import DEFAULT_SCALE, ExperimentResult, scaled_dataset
from repro.storage.device import hdd


def run(scale: float = DEFAULT_SCALE, cache_fraction: float = 0.35,
        dataset_name: str = "imagenet-1k", seed: int = 0) -> ExperimentResult:
    """Reproduce the Fig. 1 rate table for ResNet18 on Config-SSD-V100."""
    dataset = scaled_dataset(dataset_name, scale, seed)
    server = config_ssd_v100()
    model = RESNET18

    cpu_profiler = DSAnalyzerProfiler(model, dataset, server, gpu_prep=False)
    gpu_profiler = DSAnalyzerProfiler(model, dataset, server, gpu_prep=True)
    cpu_profile = cpu_profiler.profile()
    gpu_profile = gpu_profiler.profile()
    predictor = DataStallPredictor(cpu_profile)
    effective_fetch = predictor.effective_fetch_rate(cache_fraction)

    hdd_rate_mbps = hdd().random_read_bw / 1e6
    result = ExperimentResult(
        experiment_id="fig1",
        title="Fig. 1 — ResNet18 data-pipeline component rates (8xV100, 24 cores)",
        columns=["component", "rate_mbps", "rate_samples_per_s"],
        notes=[
            f"dataset={dataset.name}, cache fraction={cache_fraction:.0%}",
            "paper anchors: HDD 15 MB/s, SSD 530 MB/s, effective fetch 802 MB/s, "
            "CPU prep 735 MB/s, GPU-assisted prep 1062 MB/s, GPU demand 2283 MB/s",
        ],
    )
    rows = [
        ("HDD random read", hdd_rate_mbps, hdd_rate_mbps * 1e6 / dataset.mean_item_bytes),
        ("SSD random read", cpu_profile.rate_to_mbps(cpu_profile.storage_rate),
         cpu_profile.storage_rate),
        (f"effective fetch ({cache_fraction:.0%} cached)",
         cpu_profile.rate_to_mbps(effective_fetch), effective_fetch),
        ("prep, 24 CPU cores", cpu_profile.rate_to_mbps(cpu_profile.prep_rate),
         cpu_profile.prep_rate),
        ("prep, 24 cores + GPU offload", gpu_profile.rate_to_mbps(gpu_profile.prep_rate),
         gpu_profile.prep_rate),
        ("GPU ingestion demand (8xV100)", cpu_profile.rate_to_mbps(cpu_profile.gpu_rate),
         cpu_profile.gpu_rate),
    ]
    for component, mbps, samples in rows:
        result.add_row(component=component, rate_mbps=mbps, rate_samples_per_s=samples)
    return result
